// WalShipper: the leader half of WAL replication.
//
// Track() attaches the shipper to a leader wal::Log via its append observer,
// so every durable append is immediately shipped — as a (log_id, index,
// payload) frame — to each registered follower over the sim network. A
// follower that falls behind (joined late, restarted, dropped frames across
// a partition) requests a catch-up stream: the shipper opens a pinned
// LogReader at the follower's cursor (pinning is what keeps prefix GC from
// reclaiming the segment mid-stream) and pumps bounded bursts of frames
// until the reader reaches the log's end, at which point live-tail shipping
// resumes seamlessly. If the requested cursor is already below the leader's
// oldest retained record — GC outran the follower — the shipper answers with
// a force-resync snapshot of the whole segment directory instead.
//
// Ack accounting: followers ack their durable cursor after each applied
// frame. QuorumAckedNext() reports the highest index durable on a majority
// of the replication_factor copies (leader included) — the prefix a
// quorum-mode failover must preserve. Acks are accounting only; the leader
// never blocks an append on them (publishes stay fire-and-forget, matching
// the broker's model).
//
// Lifetimes: followers must outlive the shipper or have their node taken
// down first (in-flight frame closures hold follower pointers; the network
// drops deliveries to down nodes). The shipper must be destroyed — or
// Detach()ed — before the leader logs it tracks.
#ifndef SRC_WAL_REPLICATION_WAL_SHIPPER_H_
#define SRC_WAL_REPLICATION_WAL_SHIPPER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "sim/network.h"
#include "wal/log.h"
#include "wal/replication/options.h"

namespace wal {
namespace replication {

class CatchUpSyncer;

class WalShipper {
 public:
  WalShipper(sim::Simulator* sim, sim::Network* net, sim::NodeId node,
             common::MetricsRegistry* metrics, ReplicationOptions options);
  ~WalShipper();

  WalShipper(const WalShipper&) = delete;
  WalShipper& operator=(const WalShipper&) = delete;

  // Starts replicating `log` (which must already be durable through
  // sync_every_append) under the stable id `log_id`, and brings every
  // registered follower's copy up to date.
  void Track(const std::string& log_id, Log* log);

  // Registers a follower and syncs each tracked log to it.
  void AddFollower(CatchUpSyncer* follower);

  // Compares the follower's durable cursor against the leader for every
  // tracked log: behind → catch-up stream; ahead (it outlived a previous
  // leader that acked more) → force-resync. Also used on Restart().
  void SyncFollower(CatchUpSyncer* follower);

  // Detaches from all tracked logs and closes catch-up streams. Must run
  // before the tracked logs are destroyed; the destructor calls it.
  void Detach();

  // -- Transport entry points (run as delivered network closures) --------------

  void OnAck(const sim::NodeId& follower, const std::string& log_id, std::uint64_t next);
  void OnCatchUpRequest(const sim::NodeId& follower, const std::string& log_id,
                        std::uint64_t from);

  // -- Accounting --------------------------------------------------------------

  // Highest index durable on a majority of replication_factor copies for one
  // log (the leader's own next_index when quorum is 1).
  std::uint64_t QuorumAckedNext(const std::string& log_id) const;
  // Same, for every tracked log.
  std::map<std::string, std::uint64_t> QuorumAckedNextAll() const;

  const sim::NodeId& node() const { return node_; }
  std::vector<std::string> log_ids() const;

 private:
  struct FollowerState {
    CatchUpSyncer* syncer = nullptr;
    std::map<std::string, std::uint64_t> acked;  // Durable cursor per log id.
  };

  struct Stream {
    std::unique_ptr<LogReader> reader;  // Pins leader segments while open.
  };

  void ShipFrame(const std::string& log_id, std::uint64_t index, std::string_view payload);
  void SendFrame(CatchUpSyncer* follower, const std::string& log_id, std::uint64_t index,
                 std::string payload);
  void SyncLog(FollowerState* follower, const std::string& log_id, Log* log);
  void StartStream(const sim::NodeId& follower, const std::string& log_id, Log* log,
                   std::uint64_t from);
  void PumpStream(const sim::NodeId& follower, const std::string& log_id);
  void ForceResync(CatchUpSyncer* follower, const std::string& log_id, Log* log);
  void Count(const char* name, std::int64_t delta = 1);

  sim::Simulator* sim_;
  sim::Network* net_;
  sim::NodeId node_;
  common::MetricsRegistry* metrics_;
  ReplicationOptions options_;

  std::map<std::string, Log*> logs_;
  std::map<sim::NodeId, FollowerState> followers_;
  // Open catch-up streams by (follower node, log id). While a stream is
  // open, live-tail frames for that pair are suppressed — the stream's
  // reader will deliver them in order.
  std::map<std::pair<sim::NodeId, std::string>, Stream> streams_;
  // Guards self-scheduled pump events across destruction.
  std::shared_ptr<bool> alive_;
};

}  // namespace replication
}  // namespace wal

#endif  // SRC_WAL_REPLICATION_WAL_SHIPPER_H_
