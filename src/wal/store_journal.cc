#include "wal/store_journal.h"

#include <utility>

#include "wal/record_codec.h"

namespace wal {

namespace {

constexpr std::uint8_t kCommitTag = 1;

common::Status BadRecord(const char* what) {
  return common::Status::Internal(std::string("malformed store journal record: ") + what);
}

}  // namespace

StoreJournal::StoreJournal(common::MetricsRegistry* metrics, storage::MvccStore* store)
    : metrics_(metrics), store_(store), alive_(std::make_shared<bool>(true)) {}

StoreJournal::~StoreJournal() { *alive_ = false; }

common::Result<std::unique_ptr<StoreJournal>> StoreJournal::Open(Vfs* vfs, std::string dir,
                                                                 LogOptions options,
                                                                 common::MetricsRegistry* metrics,
                                                                 storage::MvccStore* store) {
  std::unique_ptr<StoreJournal> journal(new StoreJournal(metrics, store));
  auto opened = Log::Open(
      vfs, std::move(dir), options, metrics,
      [&journal](std::uint64_t, std::string_view payload) { return journal->Replay(payload); },
      &journal->recovery_stats_);
  if (!opened.ok()) {
    return opened.status();
  }
  journal->wal_ = std::move(opened.value());

  store->AddCommitObserver(
      [j = journal.get(), alive = journal->alive_](const storage::CommitRecord& record) {
        if (*alive) {
          j->OnCommit(record);
        }
      });
  return journal;
}

common::Status StoreJournal::Replay(std::string_view payload) {
  RecordReader reader(payload);
  std::uint8_t tag = 0;
  if (!reader.ReadU8(&tag) || tag != kCommitTag) {
    return BadRecord("unknown tag");
  }
  storage::CommitRecord record;
  std::uint32_t changes = 0;
  if (!reader.ReadU64(&record.version) || !reader.ReadU32(&changes)) {
    return BadRecord("commit header");
  }
  record.changes.reserve(changes);
  for (std::uint32_t i = 0; i < changes; ++i) {
    common::ChangeEvent event;
    std::uint8_t kind = 0;
    std::uint8_t txn_last = 0;
    std::string value;
    if (!reader.ReadBytes(&event.key) || !reader.ReadU8(&kind) || !reader.ReadBytes(&value) ||
        !reader.ReadU8(&txn_last)) {
      return BadRecord("change event");
    }
    event.mutation = kind == 0 ? common::Mutation::Put(std::move(value))
                               : common::Mutation::Delete();
    event.version = record.version;
    event.txn_last = txn_last != 0;
    record.changes.push_back(std::move(event));
  }
  if (!reader.Done()) {
    return BadRecord("trailing bytes");
  }
  store_->RestoreCommit(record);
  return common::Status::Ok();
}

void StoreJournal::OnCommit(const storage::CommitRecord& record) {
  std::string payload;
  PutU8(&payload, kCommitTag);
  PutU64(&payload, record.version);
  PutU32(&payload, static_cast<std::uint32_t>(record.changes.size()));
  for (const common::ChangeEvent& event : record.changes) {
    PutBytes(&payload, event.key);
    PutU8(&payload, event.mutation.kind == common::MutationKind::kPut ? 0 : 1);
    PutBytes(&payload, event.mutation.value);
    PutU8(&payload, event.txn_last ? 1 : 0);
  }
  auto appended = wal_->Append(payload);
  if (!appended.ok()) {
    if (status_.ok()) {
      status_ = appended.status();
    }
    if (metrics_ != nullptr) {
      metrics_->counter("wal.journal.append_errors").Increment();
    }
  }
}

}  // namespace wal
