// StoreJournal: WAL-backed durability for storage::MvccStore commit records.
//
// Every CommitRecord the store emits (via its CDC observer hook) is encoded
// as one journaled record; recovery replays them through
// MvccStore::RestoreCommit, which re-applies the cells at their original
// versions (without re-notifying observers) and fast-forwards the timestamp
// oracle past replayed history.
//
// MvccStore observers cannot be detached, so the journal hands the store a
// callback guarded by a shared liveness flag; destroying the journal flips
// the flag and the callback becomes a no-op.
#ifndef SRC_WAL_STORE_JOURNAL_H_
#define SRC_WAL_STORE_JOURNAL_H_

#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "storage/mvcc_store.h"
#include "wal/log.h"

namespace wal {

class StoreJournal {
 public:
  // Opens the journal at `dir`, replays history into `store` (which must be
  // freshly constructed), then subscribes to its commits.
  static common::Result<std::unique_ptr<StoreJournal>> Open(Vfs* vfs, std::string dir,
                                                            LogOptions options,
                                                            common::MetricsRegistry* metrics,
                                                            storage::MvccStore* store);

  ~StoreJournal();

  StoreJournal(const StoreJournal&) = delete;
  StoreJournal& operator=(const StoreJournal&) = delete;

  // Sticky first write failure (Ok while healthy).
  common::Status status() const { return status_; }

  const RecoveryStats& recovery_stats() const { return recovery_stats_; }
  Log& wal_log() { return *wal_; }

 private:
  StoreJournal(common::MetricsRegistry* metrics, storage::MvccStore* store);

  common::Status Replay(std::string_view payload);
  void OnCommit(const storage::CommitRecord& record);

  common::MetricsRegistry* metrics_;
  storage::MvccStore* store_;
  std::unique_ptr<Log> wal_;
  common::Status status_;
  RecoveryStats recovery_stats_;
  std::shared_ptr<bool> alive_;
};

}  // namespace wal

#endif  // SRC_WAL_STORE_JOURNAL_H_
