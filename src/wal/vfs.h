// Vfs: the pluggable filesystem boundary under the write-ahead log. Two
// implementations ship with the library: PosixVfs (real files, real fsync)
// and FaultVfs (deterministic in-memory files with seeded fault injection —
// torn writes, failed fsyncs, short reads, crash-at-write-N). Everything
// above this interface — framing, segmentation, recovery — is identical
// against both, which is what lets the crash sweeps prove the recovery path
// rather than a test double of it.
//
// Contract notes:
//  * Append is the only write primitive; a crashing append may persist any
//    byte prefix of the data (a torn write). Recovery must tolerate that.
//  * Sync makes every previously appended byte durable; until then a crash
//    may drop un-synced bytes (FaultVfs models this behind an option).
//  * Read may return fewer bytes than requested ("short read") even away
//    from EOF; callers must loop. 0 bytes means EOF.
#ifndef SRC_WAL_VFS_H_
#define SRC_WAL_VFS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace wal {

class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual common::Status Append(std::string_view data) = 0;
  // Durability point: all previously appended bytes survive a crash.
  virtual common::Status Sync() = 0;
  virtual common::Status Close() = 0;
};

class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  // Reads up to `n` bytes at `offset` into `scratch`. Returns the number of
  // bytes read, which may be short of `n`; 0 means EOF. Callers loop.
  virtual common::Result<std::size_t> Read(std::uint64_t offset, std::size_t n,
                                           char* scratch) const = 0;
  virtual common::Result<std::uint64_t> Size() const = 0;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  // Opens (creating if absent) for appending.
  virtual common::Result<std::unique_ptr<WritableFile>> OpenAppend(const std::string& path) = 0;
  virtual common::Result<std::unique_ptr<RandomAccessFile>> OpenRead(
      const std::string& path) const = 0;
  // mkdir -p. Creating an existing directory is OK.
  virtual common::Status CreateDirs(const std::string& path) = 0;
  // Names (not paths) of regular files directly under `path`, sorted.
  virtual common::Result<std::vector<std::string>> ListDir(const std::string& path) const = 0;
  virtual common::Status Remove(const std::string& path) = 0;
  virtual common::Status Truncate(const std::string& path, std::uint64_t size) = 0;
  virtual bool Exists(const std::string& path) const = 0;
};

// Whole-file read through the short-read-tolerant Read loop.
inline common::Result<std::string> ReadFileToString(const Vfs& vfs, const std::string& path) {
  auto file = vfs.OpenRead(path);
  if (!file.ok()) {
    return file.status();
  }
  auto size = (*file)->Size();
  if (!size.ok()) {
    return size.status();
  }
  std::string out;
  out.resize(static_cast<std::size_t>(*size));
  std::size_t at = 0;
  while (at < out.size()) {
    auto n = (*file)->Read(at, out.size() - at, out.data() + at);
    if (!n.ok()) {
      return n.status();
    }
    if (*n == 0) {
      out.resize(at);  // File shrank under us; return what exists.
      break;
    }
    at += *n;
  }
  return out;
}

}  // namespace wal

#endif  // SRC_WAL_VFS_H_
