// The watch API from Section 4.2 of the paper, faithfully reproduced (modulo
// naming style):
//
//   class Watchable {
//     Cancellable watch(Key low, Key high, Version version, WatchCallback cb);
//   }
//   class WatchCallback {
//     void onEvent(ChangeEvent event);
//     void onProgress(ProgressEvent event);
//     void onResync();
//   }
//   class Ingester {
//     void append(ChangeEvent event);
//     void progress(ProgressEvent event);
//   }
//
// A *watcher* requests state for a key range starting at a transaction
// version. The stream carries: change events (what changed after the
// requested version), range-scoped progress events (everything affecting
// [low, high) has been supplied up to some version), and resync events (the
// requested/known version is no longer retained — read a fresh snapshot from
// the store and watch again from the snapshot version).
//
// The Ingester contract lets any store convey its change feed and range
// progress to an external watch system ("Snappy"-style), with each layer free
// to define its own partition boundaries (Section 4.2.2).
#ifndef SRC_WATCH_API_H_
#define SRC_WATCH_API_H_

#include <memory>

#include "common/types.h"

namespace watch {

using common::ChangeEvent;
using common::ProgressEvent;

// Receiver half of a watch stream. Implementations must be cheap: callbacks
// run on the delivery path.
class WatchCallback {
 public:
  virtual ~WatchCallback() = default;

  // A change to a watched key at `event.version` (> the watch version).
  virtual void OnEvent(const ChangeEvent& event) = 0;

  // All change events affecting `event.range` have been supplied up to and
  // including `event.version`.
  virtual void OnProgress(const ProgressEvent& event) = 0;

  // The version known to this watcher is no longer retained. The watcher must
  // read a recent snapshot from the (possibly replicated) store and re-watch
  // from the snapshot version.
  virtual void OnResync() = 0;
};

// The paper's `Cancellable`: owning handle for an active watch; destroying or
// Cancel()ing it detaches the callback.
class WatchHandle {
 public:
  virtual ~WatchHandle() = default;
  virtual void Cancel() = 0;
  virtual bool active() const = 0;
};

class Watchable {
 public:
  virtual ~Watchable() = default;

  // Requests change events for keys in [low, high) with versions strictly
  // greater than `version`. The callback must outlive the returned handle.
  virtual std::unique_ptr<WatchHandle> Watch(common::Key low, common::Key high,
                                             common::Version version,
                                             WatchCallback* callback) = 0;
};

// Extension used by the simulated deployments: watchers identify the network
// node they live on so delivery is subject to reachability. The paper's API
// (Watch) is the node-less special case.
class NodeAwareWatchable : public Watchable {
 public:
  virtual std::unique_ptr<WatchHandle> WatchFrom(common::Key low, common::Key high,
                                                 common::Version version,
                                                 WatchCallback* callback,
                                                 std::string watcher_node) = 0;
};

// The ingestion half: a store (or CDC pipeline) feeds change events and
// range-scoped progress into the watch system through this contract.
class Ingester {
 public:
  virtual ~Ingester() = default;
  virtual void Append(const ChangeEvent& event) = 0;
  virtual void Progress(const ProgressEvent& event) = 0;
};

}  // namespace watch

#endif  // SRC_WATCH_API_H_
