// watch::Filter: the watch layer's interest description. Watches and
// filtered pubsub subscriptions share one filter algebra (and one
// InterestIndex implementation), so the type is an alias rather than a
// sibling — a filter negotiated on the wire means the same thing to both
// subsystems. The one semantic difference: ChangeEvents carry no headers, so
// a watch filter must not use header predicates (the watch entry points
// reject them loudly instead of matching nothing silently).
#ifndef SRC_WATCH_FILTER_H_
#define SRC_WATCH_FILTER_H_

#include "pubsub/filter.h"

namespace watch {

using Filter = pubsub::Filter;
using HeaderPredicate = pubsub::HeaderPredicate;

}  // namespace watch

#endif  // SRC_WATCH_FILTER_H_
