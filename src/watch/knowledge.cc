#include "watch/knowledge.h"

#include <algorithm>

namespace watch {

WindowSet UnionWindow(const WindowSet& set, VersionWindow w) {
  if (w.Empty()) {
    return set;
  }
  WindowSet out;
  out.reserve(set.size() + 1);
  bool placed = false;
  for (const VersionWindow& existing : set) {
    if (placed) {
      out.push_back(existing);
      continue;
    }
    // Overlapping or adjacent (w.high + 1 >= existing.low handles adjacency;
    // guard against overflow at kMaxVersion).
    const bool mergeable =
        existing.low <= (w.high == common::kMaxVersion ? w.high : w.high + 1) &&
        w.low <= (existing.high == common::kMaxVersion ? existing.high : existing.high + 1);
    if (mergeable) {
      w.low = std::min(w.low, existing.low);
      w.high = std::max(w.high, existing.high);
      continue;  // Keep absorbing subsequent overlaps.
    }
    if (existing.high < w.low) {
      out.push_back(existing);
    } else {
      out.push_back(w);
      out.push_back(existing);
      placed = true;
    }
  }
  if (!placed) {
    out.push_back(w);
  }
  return out;
}

WindowSet IntersectSets(const WindowSet& a, const WindowSet& b) {
  WindowSet out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const common::Version lo = std::max(a[i].low, b[j].low);
    const common::Version hi = std::min(a[i].high, b[j].high);
    if (lo <= hi) {
      out.push_back(VersionWindow{lo, hi});
    }
    if (a[i].high < b[j].high) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

std::optional<common::Version> MaxOf(const WindowSet& set) {
  if (set.empty()) {
    return std::nullopt;
  }
  return set.back().high;
}

void KnowledgeMap::AddSnapshot(const common::KeyRange& range, common::Version version) {
  regions_.Transform(range, [version](const WindowSet& windows) {
    return UnionWindow(windows, VersionWindow{version, version});
  });
}

void KnowledgeMap::ExtendTo(const common::KeyRange& range, common::Version version) {
  regions_.Transform(range, [version](const WindowSet& windows) {
    if (windows.empty()) {
      return windows;  // No base snapshot: progress alone teaches nothing.
    }
    WindowSet out = windows;
    VersionWindow& last = out.back();
    if (version > last.high) {
      last.high = version;
    }
    // Growing the last window may swallow nothing (windows are sorted and the
    // last one only grew upward), so no re-merge is needed.
    return out;
  });
}

void KnowledgeMap::Forget(const common::KeyRange& range) {
  regions_.Assign(range, WindowSet{});
}

void KnowledgeMap::Clear() {
  regions_.Assign(common::KeyRange::All(), WindowSet{});
}

bool KnowledgeMap::ServableAt(const common::KeyRange& range, common::Version version) const {
  bool ok = true;
  regions_.Visit(range, [&ok, version](const common::KeyRange&, const WindowSet& windows) {
    if (!ok) {
      return;
    }
    for (const VersionWindow& w : windows) {
      if (w.Contains(version)) {
        return;
      }
    }
    ok = false;
  });
  return ok;
}

WindowSet KnowledgeMap::ServableWindows(const common::KeyRange& range) const {
  bool first = true;
  WindowSet acc;
  regions_.Visit(range, [&](const common::KeyRange&, const WindowSet& windows) {
    if (first) {
      acc = windows;
      first = false;
    } else {
      acc = IntersectSets(acc, windows);
    }
  });
  return acc;
}

std::optional<common::Version> KnowledgeMap::MaxServableVersion(
    const common::KeyRange& range) const {
  return MaxOf(ServableWindows(range));
}

std::vector<KnowledgeMap::Region> KnowledgeMap::Regions() const {
  std::vector<Region> out;
  for (const auto& seg : regions_.Segments()) {
    if (!seg.value.empty()) {
      out.push_back(Region{seg.range, seg.value});
    }
  }
  return out;
}

WindowSet KnowledgeMap::StitchableWindows(const std::vector<const KnowledgeMap*>& maps,
                                          const common::KeyRange& range) {
  // Per key segment, pool every map's windows (union), then intersect across
  // segments. Build the pooled map on a fresh IntervalMap so segment
  // boundaries from all maps refine each other.
  common::IntervalMap<WindowSet> pooled{WindowSet{}};
  for (const KnowledgeMap* map : maps) {
    map->regions_.Visit(range, [&pooled](const common::KeyRange& r, const WindowSet& windows) {
      for (const VersionWindow& w : windows) {
        pooled.Transform(r, [&w](const WindowSet& cur) { return UnionWindow(cur, w); });
      }
    });
  }
  bool first = true;
  WindowSet acc;
  pooled.Visit(range, [&](const common::KeyRange&, const WindowSet& windows) {
    if (first) {
      acc = windows;
      first = false;
    } else {
      acc = IntersectSets(acc, windows);
    }
  });
  return acc;
}

std::optional<common::Version> KnowledgeMap::MaxStitchableVersion(
    const std::vector<const KnowledgeMap*>& maps, const common::KeyRange& range) {
  return MaxOf(StitchableWindows(maps, range));
}

}  // namespace watch
