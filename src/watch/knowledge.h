// Knowledge regions (Figure 5 of the paper). A watcher's knowledge is a set
// of (key range × version window) rectangles: for that range, the watcher
// knows the exact versioned state at every version inside the window. A
// region is created by reading a snapshot ([v, v]) and grows as range-scoped
// progress confirms that all change events up to a later version have been
// applied ([v, v'] — the rectangle gets taller). A resync starts a new
// rectangle; old rectangles remain valid knowledge of historical state
// because each version of a value is immutable.
//
// Queries answer the paper's headline capability: can this watcher (or a
// group of watchers pooled together) serve a snapshot-consistent read of a
// key range at some version — the "green box" stitched across rectangles.
#ifndef SRC_WATCH_KNOWLEDGE_H_
#define SRC_WATCH_KNOWLEDGE_H_

#include <optional>
#include <vector>

#include "common/interval_map.h"
#include "common/types.h"

namespace watch {

// An inclusive version window [low, high].
struct VersionWindow {
  common::Version low = 0;
  common::Version high = 0;

  bool Contains(common::Version v) const { return v >= low && v <= high; }
  bool Empty() const { return high < low; }

  friend bool operator==(const VersionWindow&, const VersionWindow&) = default;
};

// Sorted, disjoint, non-adjacent window lists with set algebra.
using WindowSet = std::vector<VersionWindow>;

// Inserts `w` into `set`, merging overlapping or adjacent windows.
WindowSet UnionWindow(const WindowSet& set, VersionWindow w);
// Intersection of two window sets.
WindowSet IntersectSets(const WindowSet& a, const WindowSet& b);
// Highest version present in the set (nullopt if empty).
std::optional<common::Version> MaxOf(const WindowSet& set);

class KnowledgeMap {
 public:
  KnowledgeMap() : regions_(WindowSet{}) {}

  // Knowledge from a snapshot read of `range` at `version`: rectangle
  // [version, version].
  void AddSnapshot(const common::KeyRange& range, common::Version version);

  // Progress: all change events affecting `range` up to `version` have been
  // applied. Grows the *latest* window of every overlapping segment (earlier,
  // pre-resync rectangles cannot grow: events between them and the live
  // stream were never applied). Segments of `range` with no knowledge at all
  // are unaffected — progress without a base snapshot teaches nothing about
  // state.
  void ExtendTo(const common::KeyRange& range, common::Version version);

  // Forgets knowledge of `range` (e.g. shard handed away, cache eviction).
  void Forget(const common::KeyRange& range);

  // Drops everything.
  void Clear();

  // True iff every key in `range` has a window containing `version`.
  bool ServableAt(const common::KeyRange& range, common::Version version) const;

  // Versions at which ALL of `range` is servable (intersection across the
  // range's segments).
  WindowSet ServableWindows(const common::KeyRange& range) const;

  // The highest version at which all of `range` can be served
  // snapshot-consistently (nullopt if none).
  std::optional<common::Version> MaxServableVersion(const common::KeyRange& range) const;

  // The knowledge rectangles, for introspection/diagnostics.
  struct Region {
    common::KeyRange range;
    WindowSet windows;
  };
  std::vector<Region> Regions() const;

  // -- Stitching (the Figure 5 "green box" across watchers) --------------------

  // Versions at which `range` is fully covered by pooling the knowledge of
  // all `maps`: per key segment the *union* of every map's windows, then the
  // intersection across segments.
  static WindowSet StitchableWindows(const std::vector<const KnowledgeMap*>& maps,
                                     const common::KeyRange& range);
  static std::optional<common::Version> MaxStitchableVersion(
      const std::vector<const KnowledgeMap*>& maps, const common::KeyRange& range);

 private:
  common::IntervalMap<WindowSet> regions_;
};

}  // namespace watch

#endif  // SRC_WATCH_KNOWLEDGE_H_
