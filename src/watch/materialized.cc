#include "watch/materialized.h"

#include <algorithm>

namespace watch {

MaterializedRange::MaterializedRange(sim::Simulator* sim, NodeAwareWatchable* watchable,
                                     const SnapshotSource* source, common::KeyRange range,
                                     MaterializedOptions options)
    : sim_(sim),
      watchable_(watchable),
      source_(source),
      range_(std::move(range)),
      options_(options) {}

MaterializedRange::~MaterializedRange() = default;

void MaterializedRange::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  BeginSync(/*is_resync=*/false);
  if (options_.session_check_period > 0) {
    session_check_ = std::make_unique<sim::PeriodicTask>(
        sim_, options_.session_check_period, [this] { EnsureSession(); });
  }
}

void MaterializedRange::Stop() {
  started_ = false;
  ready_ = false;
  syncing_ = false;
  handle_.reset();
  session_check_.reset();
  data_.clear();
  knowledge_.Clear();
}

void MaterializedRange::CrashLocalState() {
  Stop();
  applied_frontier_ = common::kNoVersion;
  progress_frontier_ = common::kNoVersion;
}

void MaterializedRange::BeginSync(bool is_resync) {
  if (syncing_) {
    return;
  }
  syncing_ = true;
  ready_ = false;
  handle_.reset();
  if (is_resync) {
    ++resyncs_;
  }
  sim_->After(options_.resync_delay, [this] {
    syncing_ = false;
    if (!started_) {
      return;
    }
    auto snap = source_->ReadSnapshot(range_);
    if (!snap.ok()) {
      // Source unavailable; retry at the session-check cadence.
      sim_->After(options_.session_check_period, [this] {
        if (started_ && !ready_) {
          BeginSync(/*is_resync=*/false);
        }
      });
      return;
    }
    // Replace local state in the range with the snapshot.
    data_.clear();
    for (storage::Entry& e : snap->entries) {
      data_[e.key].push_back(Cell{snap->version, std::move(e.value)});
    }
    knowledge_.Forget(range_);
    knowledge_.AddSnapshot(range_, snap->version);
    applied_frontier_ = std::max(applied_frontier_, snap->version);
    progress_frontier_ = std::max(progress_frontier_, snap->version);
    if (snapshot_hook_) {
      snapshot_hook_(*snap);
    }
    handle_ = watchable_->WatchFrom(range_.low, range_.high, snap->version, this,
                                    options_.node);
    ready_ = true;
  });
}

bool MaterializedRange::NodeUp() const {
  return options_.net == nullptr || options_.node.empty() || options_.net->IsUp(options_.node);
}

void MaterializedRange::EnsureSession() {
  if (!started_ || syncing_ || !ready_ || !NodeUp()) {
    return;
  }
  if (handle_ != nullptr && handle_->active()) {
    return;
  }
  // Session broke (watcher was unreachable, or the system restarted). Resume
  // from the PROGRESS frontier — the highest version for which we have
  // confirmed complete delivery. The applied frontier would be wrong here:
  // events arrive in ingest order, which across independently-lagged CDC
  // shards is not version order, so the max applied version can be ahead of
  // undelivered events from a slower shard. Resuming from the progress
  // frontier replays a little (applies are idempotent) and skips nothing; if
  // the watch layer no longer retains that point it answers with OnResync and
  // we re-snapshot.
  ++session_repairs_;
  handle_ = watchable_->WatchFrom(range_.low, range_.high, progress_frontier_, this,
                                  options_.node);
}

void MaterializedRange::OnEvent(const ChangeEvent& event) {
  if (!started_) {
    return;
  }
  std::vector<Cell>& history = data_[event.key];
  if (!history.empty() && history.back().version >= event.version) {
    return;  // Replay duplicate (e.g. session repair overlap): idempotent.
  }
  if (event.mutation.kind == common::MutationKind::kPut) {
    history.push_back(Cell{event.version, event.mutation.value});
  } else {
    history.push_back(Cell{event.version, std::nullopt});
  }
  applied_frontier_ = std::max(applied_frontier_, event.version);
  ++events_applied_;
  if (apply_hook_) {
    apply_hook_(event);
  }
}

void MaterializedRange::OnProgress(const ProgressEvent& event) {
  if (!started_) {
    return;
  }
  // The watch stream delivers progress behind the events it covers, so all
  // change events in `event.range` up to `event.version` have been applied:
  // knowledge grows (the Figure 5 rectangle gets taller).
  knowledge_.ExtendTo(event.range.Intersect(range_), event.version);
  progress_frontier_ = std::max(progress_frontier_, event.version);
}

void MaterializedRange::OnResync() {
  if (!started_) {
    return;
  }
  BeginSync(/*is_resync=*/true);
}

common::Result<common::Value> MaterializedRange::Get(const common::Key& key) const {
  auto it = data_.find(key);
  if (it == data_.end() || it->second.empty() || !it->second.back().value.has_value()) {
    return common::Status::NotFound(key);
  }
  return *it->second.back().value;
}

common::Result<common::Value> MaterializedRange::GetAtLeast(
    const common::Key& key, common::Version min_version) const {
  if (progress_frontier_ < min_version) {
    return common::Status::Unavailable("materialization behind requested version");
  }
  return Get(key);
}

common::Result<common::Value> MaterializedRange::SnapshotGet(const common::Key& key,
                                                             common::Version version) const {
  if (!knowledge_.ServableAt(common::KeyRange::Single(key), version)) {
    return common::Status::FailedPrecondition("no knowledge of key at version");
  }
  auto it = data_.find(key);
  if (it == data_.end()) {
    return common::Status::NotFound(key);
  }
  const std::vector<Cell>& history = it->second;
  auto pos = std::upper_bound(history.begin(), history.end(), version,
                              [](common::Version v, const Cell& c) { return v < c.version; });
  if (pos == history.begin()) {
    return common::Status::NotFound("key absent at version");
  }
  --pos;
  if (!pos->value.has_value()) {
    return common::Status::NotFound("deleted at version");
  }
  return *pos->value;
}

std::vector<storage::Entry> MaterializedRange::LatestScan(const common::KeyRange& scan) const {
  const common::KeyRange effective = scan.Intersect(range_);
  std::vector<storage::Entry> out;
  auto it = data_.lower_bound(effective.low);
  for (; it != data_.end(); ++it) {
    if (!effective.unbounded_above() && it->first >= effective.high) {
      break;
    }
    const std::vector<Cell>& history = it->second;
    if (history.empty() || !history.back().value.has_value()) {
      continue;
    }
    out.push_back(storage::Entry{it->first, *history.back().value, history.back().version});
  }
  return out;
}

common::Result<std::vector<storage::Entry>> MaterializedRange::SnapshotScan(
    const common::KeyRange& scan, common::Version version) const {
  const common::KeyRange effective = scan.Intersect(range_);
  if (!knowledge_.ServableAt(effective, version)) {
    return common::Status::FailedPrecondition("no knowledge of range at version");
  }
  std::vector<storage::Entry> out;
  auto it = data_.lower_bound(effective.low);
  for (; it != data_.end(); ++it) {
    if (!effective.unbounded_above() && it->first >= effective.high) {
      break;
    }
    const std::vector<Cell>& history = it->second;
    auto pos = std::upper_bound(history.begin(), history.end(), version,
                                [](common::Version v, const Cell& c) { return v < c.version; });
    if (pos == history.begin()) {
      continue;
    }
    --pos;
    if (!pos->value.has_value()) {
      continue;
    }
    out.push_back(storage::Entry{it->first, *pos->value, pos->version});
  }
  return out;
}

}  // namespace watch
