// MaterializedRange: the canonical watcher. It maintains a local,
// multi-versioned materialization of one key range by running the full
// Section 4.2.1 client protocol:
//
//   1. read a snapshot of the range from a SnapshotSource (primary, view,
//      stale replica, or ingestion store);
//   2. watch from the snapshot version;
//   3. apply change events as they stream in;
//   4. grow knowledge regions (Figure 5) as range-scoped progress arrives;
//   5. on resync — or on a broken session whose resume point has aged out —
//      go back to step 1. Nothing is ever lost silently.
//
// Because it keeps bounded version history inside its knowledge window, it
// can serve *snapshot reads at any known version*, which is what lets
// dynamically sharded caches stitch consistent results (Section 4.3).
//
// Cache pods, replication appliers, and workers all reuse this type.
#ifndef SRC_WATCH_MATERIALIZED_H_
#define SRC_WATCH_MATERIALIZED_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "watch/api.h"
#include "watch/knowledge.h"
#include "watch/snapshot_source.h"

namespace watch {

struct MaterializedOptions {
  // Simulated time to read + apply a snapshot (the resync cost).
  common::TimeMicros resync_delay = 5 * common::kMicrosPerMilli;
  // How often to check for (and repair) a broken watch session.
  common::TimeMicros session_check_period = 100 * common::kMicrosPerMilli;
  // The node this watcher lives on ("" = co-located with the watch system).
  sim::NodeId node;
  // When set (with a non-empty node), sync and session-repair attempts are
  // suspended while the node is down — a crashed process does not retry.
  sim::Network* net = nullptr;
};

class MaterializedRange : public WatchCallback {
 public:
  MaterializedRange(sim::Simulator* sim, NodeAwareWatchable* watchable,
                    const SnapshotSource* source, common::KeyRange range,
                    MaterializedOptions options = {});
  ~MaterializedRange() override;

  MaterializedRange(const MaterializedRange&) = delete;
  MaterializedRange& operator=(const MaterializedRange&) = delete;

  // Begins the initial snapshot + watch. Idempotent.
  void Start();
  // Stops watching and drops all local state (e.g. shard handed away).
  void Stop();
  // Simulates a crash of this watcher: local data and knowledge are lost;
  // Start() must be called again (e.g. from a FailureInjector restart hook).
  void CrashLocalState();

  const common::KeyRange& range() const { return range_; }

  // True once the initial snapshot has been applied and a session is up.
  bool ready() const { return ready_; }

  // -- Reads ---------------------------------------------------------------------

  // Latest applied value (no snapshot guarantee).
  common::Result<common::Value> Get(const common::Key& key) const;

  // Read-your-writes support: the latest value, guaranteed to reflect every
  // commit up to `min_version`. A client that wrote at version v passes v as
  // its token; if this materialization has not yet confirmed completeness to
  // v (progress frontier < v) the read fails with kUnavailable instead of
  // returning a possibly pre-write value.
  common::Result<common::Value> GetAtLeast(const common::Key& key,
                                           common::Version min_version) const;

  // Value as of `version`; fails with kFailedPrecondition unless the key is
  // inside a knowledge window containing `version`.
  common::Result<common::Value> SnapshotGet(const common::Key& key,
                                            common::Version version) const;

  // All live entries of `scan` as of `version` (requires full knowledge of
  // `scan` at `version`).
  common::Result<std::vector<storage::Entry>> SnapshotScan(const common::KeyRange& scan,
                                                           common::Version version) const;

  // Latest applied values in `scan` — no snapshot guarantee (what a
  // level-triggered reconciliation loop reads).
  std::vector<storage::Entry> LatestScan(const common::KeyRange& scan) const;

  // The highest version at which `scan` is snapshot-servable locally.
  std::optional<common::Version> MaxServableVersion(const common::KeyRange& scan) const {
    return knowledge_.MaxServableVersion(scan.Intersect(range_));
  }

  const KnowledgeMap& knowledge() const { return knowledge_; }

  // Highest change-event version applied (the live frontier of local data).
  common::Version applied_frontier() const { return applied_frontier_; }
  // Version of the knowledge frontier confirmed by progress events.
  common::Version progress_frontier() const { return progress_frontier_; }

  // -- Hooks (for applications layered on top) --------------------------------------

  // Invoked for every applied change event (replication appliers, caches).
  void set_apply_hook(std::function<void(const ChangeEvent&)> hook) {
    apply_hook_ = std::move(hook);
  }
  // Invoked after each (re)sync snapshot is applied.
  void set_snapshot_hook(std::function<void(const Snapshot&)> hook) {
    snapshot_hook_ = std::move(hook);
  }

  // -- Metrics ------------------------------------------------------------------------

  std::uint64_t resyncs() const { return resyncs_; }
  std::uint64_t events_applied() const { return events_applied_; }
  std::uint64_t session_repairs() const { return session_repairs_; }

  // -- WatchCallback ---------------------------------------------------------------

  void OnEvent(const ChangeEvent& event) override;
  void OnProgress(const ProgressEvent& event) override;
  void OnResync() override;

 private:
  struct Cell {
    common::Version version;
    std::optional<common::Value> value;  // nullopt: tombstone.
  };

  void BeginSync(bool is_resync);
  void EnsureSession();
  bool NodeUp() const;

  sim::Simulator* sim_;
  NodeAwareWatchable* watchable_;
  const SnapshotSource* source_;
  common::KeyRange range_;
  MaterializedOptions options_;

  bool started_ = false;
  bool ready_ = false;
  bool syncing_ = false;
  std::map<common::Key, std::vector<Cell>> data_;  // Bounded version history.
  KnowledgeMap knowledge_;
  common::Version applied_frontier_ = common::kNoVersion;
  common::Version progress_frontier_ = common::kNoVersion;
  std::unique_ptr<WatchHandle> handle_;
  std::function<void(const ChangeEvent&)> apply_hook_;
  std::function<void(const Snapshot&)> snapshot_hook_;
  std::uint64_t resyncs_ = 0;
  std::uint64_t events_applied_ = 0;
  std::uint64_t session_repairs_ = 0;
  std::unique_ptr<sim::PeriodicTask> session_check_;
};

}  // namespace watch

#endif  // SRC_WATCH_MATERIALIZED_H_
