// ProgressTracker: the range-scoped progress frontier of the watch system.
// Each ingested ProgressEvent asserts "all changes to [low, high) up to
// version v have been supplied"; the tracker folds these into a per-range
// frontier and answers "up to what version is [low, high) complete?" —
// the minimum frontier across the range.
//
// Because progress is scoped to arbitrary key ranges (not global, not static
// partitions), each layer can define its own partition boundaries and evolve
// them independently (Section 4.2.2).
#ifndef SRC_WATCH_PROGRESS_TRACKER_H_
#define SRC_WATCH_PROGRESS_TRACKER_H_

#include <algorithm>

#include "common/interval_map.h"
#include "common/types.h"

namespace watch {

class ProgressTracker {
 public:
  ProgressTracker() : frontier_(common::kNoVersion) {}

  // Applies a progress assertion. Frontiers never regress: a stale or
  // re-delivered progress event is a no-op on already-ahead subranges.
  void Apply(const common::ProgressEvent& event) {
    frontier_.Transform(event.range, [&event](const common::Version& cur) {
      return std::max(cur, event.version);
    });
  }

  // The version up to which knowledge of `range` is complete: the minimum
  // frontier over all subranges.
  common::Version FrontierFor(const common::KeyRange& range) const {
    return frontier_.Fold<common::Version>(
        range, common::kMaxVersion,
        [](common::Version acc, const common::KeyRange&, const common::Version& v) {
          return std::min(acc, v);
        });
  }

  // Per-subrange frontier segments overlapping `range` (clipped), for
  // emitting fine-grained progress to watchers.
  void VisitSegments(const common::KeyRange& range,
                     const std::function<void(const common::KeyRange&, common::Version)>& fn)
      const {
    frontier_.Visit(range, [&fn](const common::KeyRange& r, const common::Version& v) {
      fn(r, v);
    });
  }

  // Drops all progress state (soft-state crash).
  void Clear() { frontier_ = common::IntervalMap<common::Version>(common::kNoVersion); }

 private:
  common::IntervalMap<common::Version> frontier_;
};

}  // namespace watch

#endif  // SRC_WATCH_PROGRESS_TRACKER_H_
