// WatchProxy: a fan-out tier for the watch contract — one answer to the
// paper's Section 5 research question of a standalone watch system scaled
// "to different scale points, e.g. degree of fan out".
//
// A proxy subscribes ONCE to an upstream Watchable for a covering range and
// re-serves any number of downstream watchers from its own soft state (a
// nested WatchSystem). Because the proxy is itself an ordinary watcher:
//   * its state is soft — on upstream resync it resyncs downstream watchers,
//     preserving the end-to-end guarantee against the authoritative store;
//   * proxies compose into trees: upstream load is one session per proxy
//     regardless of downstream fan-out;
//   * range-scoped progress flows through, so downstream knowledge regions
//     grow exactly as they would against the root.
#ifndef SRC_WATCH_PROXY_H_
#define SRC_WATCH_PROXY_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "common/types.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "watch/api.h"
#include "watch/watch_system.h"

namespace watch {

struct WatchProxyOptions {
  // Soft state of the proxy tier.
  WatchSystemOptions system;
  // How often to re-establish a broken upstream session.
  common::TimeMicros upstream_check_period = 100 * common::kMicrosPerMilli;
};

class WatchProxy : public NodeAwareWatchable, private WatchCallback {
 public:
  // Proxies `range` from `upstream`. `node` is the proxy's network identity
  // (used both as the upstream watcher node and the downstream server node).
  WatchProxy(sim::Simulator* sim, sim::Network* net, NodeAwareWatchable* upstream,
             common::KeyRange range, sim::NodeId node, WatchProxyOptions options = {})
      : sim_(sim),
        upstream_(upstream),
        range_(std::move(range)),
        node_(std::move(node)),
        options_(options),
        system_(sim, net, node_, options.system) {
    Connect(common::kNoVersion);
    check_task_ = std::make_unique<sim::PeriodicTask>(sim_, options_.upstream_check_period,
                                                      [this] { EnsureUpstream(); });
  }

  WatchProxy(const WatchProxy&) = delete;
  WatchProxy& operator=(const WatchProxy&) = delete;

  // -- Watchable (downstream) ---------------------------------------------------

  std::unique_ptr<WatchHandle> Watch(common::Key low, common::Key high,
                                     common::Version version, WatchCallback* callback) override {
    return system_.Watch(std::move(low), std::move(high), version, callback);
  }

  std::unique_ptr<WatchHandle> WatchFrom(common::Key low, common::Key high,
                                         common::Version version, WatchCallback* callback,
                                         sim::NodeId watcher_node) override {
    return system_.WatchFrom(std::move(low), std::move(high), version, callback,
                             std::move(watcher_node));
  }

  const common::KeyRange& range() const { return range_; }
  std::uint64_t upstream_reconnects() const { return reconnects_; }
  std::uint64_t upstream_resyncs() const { return upstream_resyncs_; }
  WatchSystem& system() { return system_; }

 private:
  // -- WatchCallback (upstream) ----------------------------------------------------

  void OnEvent(const ChangeEvent& event) override { system_.Append(event); }

  void OnProgress(const ProgressEvent& event) override {
    // Progress is the only safe resume point: events arrive in upstream
    // ingest order, which is not version order across CDC shards, so the max
    // event version seen may be ahead of still-undelivered earlier versions.
    last_progress_ = std::max(last_progress_, event.version);
    system_.Progress(event);
  }

  void OnResync() override {
    // The proxy's own position aged out upstream. It has no store of its
    // own; the honest move is to wipe the tier's soft state, which resyncs
    // every downstream watcher against the real store — end-to-end recovery
    // (the proxy adds no hard state and no new failure semantics).
    ++upstream_resyncs_;
    system_.CrashSoftState();
    Connect(common::kMaxVersion);  // Rejoin at the live edge.
  }

  void Connect(common::Version from) {
    // kMaxVersion passes through: the upstream interprets it as "live edge".
    upstream_handle_ = upstream_->WatchFrom(range_.low, range_.high, from, this, node_);
  }

  void EnsureUpstream() {
    if (upstream_handle_ != nullptr && upstream_handle_->active()) {
      return;
    }
    // Reconnect from the confirmed-complete frontier. The overlap
    // (last_progress_, last event seen] is re-appended to the proxy's window;
    // downstream appliers deduplicate by per-key version (at-least-once
    // across repairs, exactly-once in effect).
    ++reconnects_;
    Connect(last_progress_);
  }

  sim::Simulator* sim_;
  NodeAwareWatchable* upstream_;
  common::KeyRange range_;
  sim::NodeId node_;
  WatchProxyOptions options_;
  WatchSystem system_;
  std::unique_ptr<WatchHandle> upstream_handle_;
  common::Version last_progress_ = common::kNoVersion;
  std::uint64_t reconnects_ = 0;
  std::uint64_t upstream_resyncs_ = 0;
  std::unique_ptr<sim::PeriodicTask> check_task_;
};

}  // namespace watch

#endif  // SRC_WATCH_PROXY_H_
