// RetainedWindow: the watch system's bounded, soft-state buffer of recent
// change events, ordered by version. Unlike a pubsub log this is *not* hard
// state (Section 4.2.2): it can be dropped and rebuilt at any time — watchers
// whose position falls below the window simply resync from the store.
//
// The window supports trimming by event count and by age; MinRetainedVersion
// is the oldest version from which a watcher can be served without resync.
#ifndef SRC_WATCH_RETAINED_WINDOW_H_
#define SRC_WATCH_RETAINED_WINDOW_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"

namespace watch {

class RetainedWindow {
 public:
  struct Options {
    std::size_t max_events = 100000;     // 0: unbounded.
    // 0: no age limit. Otherwise every Append trims events ingested more
    // than max_age before `now` (callers can also trim on their own clock
    // via TrimOlderThan).
    common::TimeMicros max_age = 0;
  };

  RetainedWindow() = default;
  explicit RetainedWindow(Options options) : options_(options) {}

  struct StampedEvent {
    common::ChangeEvent event;
    common::TimeMicros ingest_time = 0;
  };

  // Adds an event (versions must be non-decreasing across Append calls for
  // events of the same key; cross-key interleaving at equal versions is
  // fine). Trims by count and — when Options::max_age is set — by age,
  // raising the serve-from floor so aged-out positions resync loudly.
  void Append(const common::ChangeEvent& event, common::TimeMicros now) {
    events_.push_back(StampedEvent{event, now});
    if (event.version > max_version_) {
      max_version_ = event.version;
    }
    if (options_.max_events > 0) {
      while (events_.size() > options_.max_events) {
        DropFront();
      }
    }
    if (options_.max_age > 0 && now >= options_.max_age) {
      TrimOlderThan(now - options_.max_age);
    }
  }

  // Trims events ingested before `horizon` (age-based policy).
  void TrimOlderThan(common::TimeMicros horizon) {
    while (!events_.empty() && events_.front().ingest_time < horizon) {
      DropFront();
    }
  }

  // Drops everything (e.g. simulated crash of the soft-state layer). The
  // floor rises to just above the highest version ever buffered, so every
  // watcher positioned below that resyncs.
  void Clear() {
    events_.clear();
    min_retained_ = max_version_ + 1;
  }

  // A watcher may start from `version` iff version + 1 >= MinRetainedVersion:
  // i.e. every event with version' > version is still buffered (or never
  // existed).
  common::Version MinRetainedVersion() const { return min_retained_; }
  common::Version MaxVersion() const { return max_version_; }
  bool CanServeFrom(common::Version version) const { return version + 1 >= min_retained_; }

  // Buffered events with key in `range` and version > `after`, in ingest
  // (hence version) order.
  std::vector<common::ChangeEvent> EventsAfter(const common::KeyRange& range,
                                               common::Version after) const {
    std::vector<common::ChangeEvent> out;
    for (const StampedEvent& se : events_) {
      if (se.event.version > after && range.Contains(se.event.key)) {
        out.push_back(se.event);
      }
    }
    return out;
  }

  std::size_t size() const { return events_.size(); }

 private:
  void DropFront() {
    const common::Version dropped = events_.front().event.version;
    events_.pop_front();
    if (dropped + 1 > min_retained_) {
      min_retained_ = dropped + 1;
    }
  }

  Options options_{};
  std::deque<StampedEvent> events_;
  common::Version min_retained_ = 0;  // Serve-from floor.
  common::Version max_version_ = 0;
};

}  // namespace watch

#endif  // SRC_WATCH_RETAINED_WINDOW_H_
