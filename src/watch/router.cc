#include "watch/router.h"

namespace watch {

// Per-downstream-session fan-in: receives the sub-watch streams from every
// overlapping partition and presents them as one stream with the single-
// system contract (min-progress, any-resync-resyncs-all, cancel-all).
class WatchRouter::FanIn {
 public:
  FanIn(WatchCallback* downstream, std::size_t legs)
      : downstream_(downstream), leg_progress_(legs, common::kNoVersion) {}

  // One leg (sub-watch) of the fan-in. Legs are owned by (and never outlive)
  // their FanIn, so the back-pointer is raw — a shared_ptr here would create
  // an ownership cycle.
  class Leg : public WatchCallback {
   public:
    Leg(FanIn* owner, std::size_t index) : owner_(owner), index_(index) {}

    void OnEvent(const ChangeEvent& event) override { owner_->Event(event); }
    void OnProgress(const ProgressEvent& event) override {
      owner_->ProgressFrom(index_, event);
    }
    void OnResync() override { owner_->Resync(); }

   private:
    FanIn* owner_;
    std::size_t index_;
  };

  void Event(const ChangeEvent& event) {
    if (!cancelled_ && !resynced_) {
      downstream_->OnEvent(event);
    }
  }

  void ProgressFrom(std::size_t leg, const ProgressEvent& event) {
    if (cancelled_ || resynced_) {
      return;
    }
    leg_progress_[leg] = std::max(leg_progress_[leg], event.version);
    // The composite frontier: every leg has confirmed completeness up to the
    // minimum. (Legs whose partition saw no progress yet hold it at 0.)
    const common::Version frontier =
        *std::min_element(leg_progress_.begin(), leg_progress_.end());
    if (frontier > reported_) {
      reported_ = frontier;
      downstream_->OnProgress(ProgressEvent{watched_range_, frontier});
    }
  }

  void Resync() {
    if (cancelled_ || resynced_) {
      return;
    }
    resynced_ = true;  // One loud signal; remaining legs are ignored.
    downstream_->OnResync();
  }

  void Cancel() { cancelled_ = true; }
  bool cancelled() const { return cancelled_; }
  bool resynced() const { return resynced_; }
  void set_watched_range(common::KeyRange range) { watched_range_ = std::move(range); }

  std::vector<std::unique_ptr<Leg>> legs;
  std::vector<std::unique_ptr<WatchHandle>> handles;

 private:
  WatchCallback* downstream_;
  std::vector<common::Version> leg_progress_;
  common::Version reported_ = common::kNoVersion;
  common::KeyRange watched_range_;
  bool cancelled_ = false;
  bool resynced_ = false;
};

class WatchRouter::FanInHandle : public WatchHandle {
 public:
  explicit FanInHandle(std::shared_ptr<FanIn> fan) : fan_(std::move(fan)) {}

  ~FanInHandle() override { Cancel(); }

  void Cancel() override {
    fan_->Cancel();
    for (auto& handle : fan_->handles) {
      handle->Cancel();
    }
  }

  bool active() const override {
    if (fan_->cancelled() || fan_->resynced()) {
      return false;
    }
    for (const auto& handle : fan_->handles) {
      if (!handle->active()) {
        return false;
      }
    }
    return !fan_->handles.empty();
  }

 private:
  std::shared_ptr<FanIn> fan_;
};

std::unique_ptr<WatchHandle> WatchRouter::WatchFrom(common::Key low, common::Key high,
                                                    common::Version version,
                                                    WatchCallback* callback,
                                                    sim::NodeId watcher_node) {
  const common::KeyRange requested{std::move(low), std::move(high)};
  std::vector<Partition*> overlapping;
  for (Partition& part : parts_) {
    if (part.range.Overlaps(requested)) {
      overlapping.push_back(&part);
    }
  }
  auto fan = std::make_shared<FanIn>(callback, overlapping.size());
  fan->set_watched_range(requested);
  for (std::size_t i = 0; i < overlapping.size(); ++i) {
    fan->legs.push_back(std::make_unique<FanIn::Leg>(fan.get(), i));
    const common::KeyRange clipped = requested.Intersect(overlapping[i]->range);
    fan->handles.push_back(overlapping[i]->system->WatchFrom(
        clipped.low, clipped.high, version, fan->legs.back().get(), watcher_node));
  }
  return std::make_unique<FanInHandle>(std::move(fan));
}

}  // namespace watch
