// WatchRouter: a horizontally partitioned watch layer — the other §5 scale
// axis (WatchProxy scales fan-out; WatchRouter scales ingest and session
// count). The key space is statically partitioned across N independent
// WatchSystem instances; the router implements:
//
//   * Ingester — appends route to the partition owning the key; progress
//     routes clipped to each overlapping partition;
//   * Watchable — a watch spanning multiple partitions becomes one sub-watch
//     per overlapping partition, fanned back into the caller's callback.
//     Progress surfaced to the caller is the MINIMUM frontier across its
//     sub-watches (so "complete up to v" stays true for the whole range), and
//     a resync on ANY sub-watch resyncs the whole watch — the composite keeps
//     exactly the single-system contract.
//
// Cross-partition event order is per-partition ingest order (not global
// version order) — the same property as sharded CDC pipelines, and the
// reason progress events exist. MaterializedRange and friends are built for
// that contract and work unchanged against a router.
#ifndef SRC_WATCH_ROUTER_H_
#define SRC_WATCH_ROUTER_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "watch/api.h"
#include "watch/watch_system.h"

namespace watch {

class WatchRouter : public NodeAwareWatchable, public Ingester {
 public:
  // `partitions` must tile the key space the router will serve (they are
  // used verbatim; keys outside every partition are dropped on Append).
  WatchRouter(sim::Simulator* sim, sim::Network* net, const std::string& name_prefix,
              std::vector<common::KeyRange> partitions, WatchSystemOptions options = {}) {
    for (std::size_t i = 0; i < partitions.size(); ++i) {
      parts_.push_back(Partition{
          partitions[i],
          std::make_unique<WatchSystem>(sim, net, name_prefix + "-" + std::to_string(i),
                                        options)});
    }
  }

  // -- Ingester -------------------------------------------------------------------

  void Append(const ChangeEvent& event) override {
    for (Partition& part : parts_) {
      if (part.range.Contains(event.key)) {
        part.system->Append(event);
        return;
      }
    }
  }

  void Progress(const ProgressEvent& event) override {
    for (Partition& part : parts_) {
      const common::KeyRange clipped = event.range.Intersect(part.range);
      if (!clipped.Empty()) {
        part.system->Progress(ProgressEvent{clipped, event.version});
      }
    }
  }

  // -- Watchable ---------------------------------------------------------------------

  std::unique_ptr<WatchHandle> Watch(common::Key low, common::Key high,
                                     common::Version version, WatchCallback* callback) override {
    return WatchFrom(std::move(low), std::move(high), version, callback, sim::NodeId());
  }

  std::unique_ptr<WatchHandle> WatchFrom(common::Key low, common::Key high,
                                         common::Version version, WatchCallback* callback,
                                         sim::NodeId watcher_node) override;

  WatchSystem& partition(std::size_t i) { return *parts_[i].system; }
  std::size_t partition_count() const { return parts_.size(); }

  // Aggregate metrics.
  std::uint64_t events_delivered() const {
    std::uint64_t total = 0;
    for (const Partition& part : parts_) {
      total += part.system->events_delivered();
    }
    return total;
  }

  // Wipes every partition's soft state.
  void CrashSoftState() {
    for (Partition& part : parts_) {
      part.system->CrashSoftState();
    }
  }

 private:
  struct Partition {
    common::KeyRange range;
    std::unique_ptr<WatchSystem> system;
  };

  class FanIn;
  class FanInHandle;

  std::vector<Partition> parts_;
};

}  // namespace watch

#endif  // SRC_WATCH_ROUTER_H_
