// SnapshotSource: where a watcher reads state when it (re)syncs — the store
// half of the paper's "read a recent snapshot of the state from the store,
// then catch up by issuing a watch request starting at the snapshot version"
// (Section 4.2.1). Adapters cover the primary store, a filtered view, a stale
// replica (the paper notes stale snapshots are acceptable and cheaper), and
// the ingestion store.
#ifndef SRC_WATCH_SNAPSHOT_SOURCE_H_
#define SRC_WATCH_SNAPSHOT_SOURCE_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/ingest_store.h"
#include "storage/mvcc_store.h"
#include "storage/replica.h"
#include "storage/view.h"

namespace watch {

struct Snapshot {
  std::vector<storage::Entry> entries;  // Live entries, key order.
  common::Version version = common::kNoVersion;
};

class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;
  virtual common::Result<Snapshot> ReadSnapshot(const common::KeyRange& range) const = 0;
};

// Reads from the authoritative MvccStore at its latest version.
class StoreSnapshotSource : public SnapshotSource {
 public:
  explicit StoreSnapshotSource(const storage::MvccStore* store) : store_(store) {}

  common::Result<Snapshot> ReadSnapshot(const common::KeyRange& range) const override {
    const common::Version version = store_->LatestVersion();
    auto entries = store_->Scan(range, version);
    if (!entries.ok()) {
      return entries.status();
    }
    return Snapshot{std::move(entries).value(), version};
  }

 private:
  const storage::MvccStore* store_;
};

// Reads through a FilteredView (Section 4.1): the consumer sees only the
// exposed derived values.
class ViewSnapshotSource : public SnapshotSource {
 public:
  explicit ViewSnapshotSource(const storage::FilteredView* view) : view_(view) {}

  common::Result<Snapshot> ReadSnapshot(const common::KeyRange& range) const override {
    const common::Version version = view_->LatestVersion();
    auto entries = view_->Scan(range, version);
    if (!entries.ok()) {
      return entries.status();
    }
    return Snapshot{std::move(entries).value(), version};
  }

 private:
  const storage::FilteredView* view_;
};

// Reads from a stale replica — acceptable for resync (the watch replays
// everything after the stale snapshot version) and offloads the primary.
class ReplicaSnapshotSource : public SnapshotSource {
 public:
  explicit ReplicaSnapshotSource(const storage::StaleReplica* replica) : replica_(replica) {}

  common::Result<Snapshot> ReadSnapshot(const common::KeyRange& range) const override {
    return Snapshot{replica_->Scan(range), replica_->AppliedVersion()};
  }

 private:
  const storage::StaleReplica* replica_;
};

// Reads the latest event per key from an ingestion store.
class IngestSnapshotSource : public SnapshotSource {
 public:
  explicit IngestSnapshotSource(const storage::IngestStore* store) : store_(store) {}

  common::Result<Snapshot> ReadSnapshot(const common::KeyRange& range) const override {
    Snapshot snap;
    snap.version = store_->LatestVersion();
    for (storage::IngestEvent& ev : store_->ScanLatest(range)) {
      snap.entries.push_back(
          storage::Entry{std::move(ev.key), std::move(ev.payload), ev.version});
    }
    return snap;
  }

 private:
  const storage::IngestStore* store_;
};

}  // namespace watch

#endif  // SRC_WATCH_SNAPSHOT_SOURCE_H_
