// Built-in watch (the left column of the paper's Figure 3): the storage
// system itself implements the watch contract, the way Spanner change streams
// or the Kubernetes API server / etcd do. Internally this is a WatchSystem
// fed directly from the store's commit (or append) stream — no external CDC
// pipeline, and progress is the store's own commit frontier.
//
// Together with the external layering (CdcIngesterFeed + WatchSystem) and the
// two store types (MvccStore producer storage, IngestStore ingestion
// storage), all four Figure 3 quadrants are expressible; bench_quadrants
// demonstrates that consumers get identical guarantees in each.
#ifndef SRC_WATCH_STORE_WATCH_H_
#define SRC_WATCH_STORE_WATCH_H_

#include <memory>
#include <utility>

#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/ingest_store.h"
#include "storage/mvcc_store.h"
#include "watch/api.h"
#include "watch/watch_system.h"

namespace watch {

// Built-in watch over producer storage (MvccStore).
class StoreWatch : public NodeAwareWatchable {
 public:
  StoreWatch(sim::Simulator* sim, sim::Network* net, storage::MvccStore* store,
             sim::NodeId node = "store-watch", WatchSystemOptions options = {})
      : system_(sim, net, std::move(node), options) {
    store->AddCommitObserver([this, store](const storage::CommitRecord& record) {
      for (const ChangeEvent& ev : record.changes) {
        system_.Append(ev);
      }
      // The store is the version authority: every commit is immediately
      // global progress.
      system_.Progress(ProgressEvent{common::KeyRange::All(), store->LatestVersion()});
    });
  }

  std::unique_ptr<WatchHandle> Watch(common::Key low, common::Key high,
                                     common::Version version, WatchCallback* callback) override {
    return system_.Watch(std::move(low), std::move(high), version, callback);
  }

  std::unique_ptr<WatchHandle> WatchFrom(common::Key low, common::Key high,
                                         common::Version version, WatchCallback* callback,
                                         sim::NodeId watcher_node) override {
    return system_.WatchFrom(std::move(low), std::move(high), version, callback,
                             std::move(watcher_node));
  }

  WatchSystem& system() { return system_; }

 private:
  WatchSystem system_;
};

// Built-in watch over ingestion storage (IngestStore): appended events become
// put-change events.
class IngestStoreWatch : public NodeAwareWatchable {
 public:
  IngestStoreWatch(sim::Simulator* sim, sim::Network* net, storage::IngestStore* store,
                   sim::NodeId node = "ingest-watch", WatchSystemOptions options = {})
      : system_(sim, net, std::move(node), options) {
    store->AddEventObserver([this](const storage::IngestEvent& ev) {
      system_.Append(
          ChangeEvent{ev.key, common::Mutation::Put(ev.payload), ev.version, true});
      system_.Progress(ProgressEvent{common::KeyRange::All(), ev.version});
    });
  }

  std::unique_ptr<WatchHandle> Watch(common::Key low, common::Key high,
                                     common::Version version, WatchCallback* callback) override {
    return system_.Watch(std::move(low), std::move(high), version, callback);
  }

  std::unique_ptr<WatchHandle> WatchFrom(common::Key low, common::Key high,
                                         common::Version version, WatchCallback* callback,
                                         sim::NodeId watcher_node) override {
    return system_.WatchFrom(std::move(low), std::move(high), version, callback,
                             std::move(watcher_node));
  }

  WatchSystem& system() { return system_; }

 private:
  WatchSystem system_;
};

}  // namespace watch

#endif  // SRC_WATCH_STORE_WATCH_H_
