#include "watch/watch_system.h"

#include <algorithm>
#include <cassert>

namespace watch {

// Owning handle for one session; cancellation marks the session dead so any
// in-flight deliveries are dropped at dispatch time.
class WatchSystem::Handle : public WatchHandle {
 public:
  explicit Handle(std::weak_ptr<Session> session) : session_(std::move(session)) {}

  ~Handle() override { Cancel(); }

  void Cancel() override {
    if (auto s = session_.lock()) {
      s->state = SessionState::kDead;
      s->callback = nullptr;
      s->in_flight = 0;  // Leaving kLive: pending deliveries drop at dispatch.
    }
  }

  bool active() const override {
    auto s = session_.lock();
    return s != nullptr && s->state == SessionState::kLive;
  }

 private:
  std::weak_ptr<Session> session_;
};

WatchSystem::WatchSystem(sim::Simulator* sim, sim::Network* net, sim::NodeId node,
                         WatchSystemOptions options)
    : sim_(sim), net_(net), node_(std::move(node)), options_(options), window_(options.window) {
  if (net_ != nullptr && !net_->IsUp(node_)) {
    net_->AddNode(node_);
  }
  if (options_.progress_period > 0) {
    progress_task_ = std::make_unique<sim::PeriodicTask>(sim_, options_.progress_period,
                                                         [this] { PumpProgress(); });
  }
}

WatchSystem::~WatchSystem() = default;

bool WatchSystem::Reachable(const Session& session) const {
  if (net_ == nullptr || session.watcher_node.empty()) {
    return true;
  }
  return net_->Reachable(node_, session.watcher_node);
}

void WatchSystem::Append(const ChangeEvent& raw) {
  // Traced events get the ingest stamp on a local copy so the window and all
  // downstream deliveries carry it; untraced events pass through unchanged.
  ChangeEvent event = raw;
  if (event.trace.active()) {
    event.trace.Stamp(obs::Stage::kAppend, obs::NowMicros());
  }
  window_.Append(event, sim_->Now());
  if (observer_ != nullptr) {
    observer_->OnIngest(event);
  }
  // Dispatch through the interest index: only sessions whose filters match
  // the key are visited, so a non-matching ingest costs O(index lookup), not
  // O(sessions). Version/liveness checks stay per-session.
  static const pubsub::Headers kNoHeaders;
  std::vector<std::uint64_t> stale;
  interest_.Match(event.key, kNoHeaders, [&](pubsub::InterestIndex::SubscriberId id) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      stale.push_back(id);  // Swept session: drop its index entry lazily.
      return;
    }
    const std::shared_ptr<Session>& session = it->second;
    if (session->state != SessionState::kLive) {
      return;
    }
    if (event.version <= session->start_version) {
      return;
    }
    if (options_.max_session_backlog > 0 &&
        session->in_flight >= options_.max_session_backlog) {
      // Lagging consumer: tell it to resync instead of queueing unboundedly —
      // the paper's "better treatment of backlogs" (Section 4.4).
      ForceResync(session, "backlog_overflow");
      return;
    }
    DeliverEvent(session, event);
  });
  for (const std::uint64_t id : stale) {
    interest_.Remove(id);
  }
}

void WatchSystem::DeliverEvent(const std::shared_ptr<Session>& session,
                               const ChangeEvent& event) {
  ++session->in_flight;
  // Init-capture: a plain by-value capture of a `const&` parameter yields a
  // const copy, and delivery-side stamping needs a mutable one.
  sim_->After(options_.delivery_latency, [this, session, event = event]() mutable {
    if (session->state != SessionState::kLive || session->callback == nullptr) {
      return;  // Cancelled or resynced while in flight; counter already reset.
    }
    // The counter is exact for live sessions: every scheduled delivery either
    // fires here or was discounted when the session left kLive.
    assert(session->in_flight > 0 && "in-flight delivery counter underflow");
    --session->in_flight;
    if (!Reachable(*session)) {
      // Stream broken: the watcher re-watches from its last applied version
      // when it recovers. Nothing is silently skipped.
      BreakSession(session);
      return;
    }
    ++events_delivered_;
    if (observer_ != nullptr) {
      observer_->OnDeliver(session->id, event);
    }
    if (event.trace.active()) {
      event.trace.Stamp(obs::Stage::kDeliver, obs::NowMicros());
    }
    session->callback->OnEvent(event);
    if (event.trace.active()) {
      event.trace.Stamp(obs::Stage::kAck, obs::NowMicros());  // Callback returned.
      if (obs_ != nullptr) {
        obs_->Complete(obs::Path::kWatch, event.trace, obs_shard_);
      }
    }
  });
}

void WatchSystem::BreakSession(const std::shared_ptr<Session>& session) {
  session->state = SessionState::kDead;
  session->in_flight = 0;
  interest_.Remove(session->id);
  ++sessions_broken_;
  if (obs_ != nullptr) {
    obs_->LogEvent(obs::EventKind::kSessionBreak, "unreachable",
                   "session=" + std::to_string(session->id), obs_shard_);
  }
}

void WatchSystem::ForceResync(const std::shared_ptr<Session>& session, const char* cause) {
  if (session->state != SessionState::kLive) {
    return;
  }
  if (obs_ != nullptr) {
    obs_->LogEvent(obs::EventKind::kResync, cause, "session=" + std::to_string(session->id),
                   obs_shard_);
  }
  session->state = SessionState::kResyncing;
  // Leaving kLive: in-flight deliveries will drop at dispatch, so they are
  // discounted now — otherwise the counter leaks and the session-table
  // hygiene sweep can never reclaim the session. The interest-index entry
  // goes with it: a resyncing session must stop costing match work.
  session->in_flight = 0;
  interest_.Remove(session->id);
  if (observer_ != nullptr) {
    observer_->OnResync(session->id);
  }
  sim_->After(options_.delivery_latency, [this, session] {
    session->state = SessionState::kDead;
    if (session->callback == nullptr || !Reachable(*session)) {
      ++sessions_broken_;
      return;
    }
    ++resyncs_sent_;
    session->callback->OnResync();
  });
}

void WatchSystem::Progress(const ProgressEvent& event) {
  tracker_.Apply(event);
}

void WatchSystem::PumpProgress() {
  for (auto& [id, session] : sessions_) {
    if (session->state != SessionState::kLive) {
      continue;
    }
    const common::Version frontier = tracker_.FrontierFor(session->range);
    if (frontier <= session->last_progress || frontier < session->start_version) {
      continue;
    }
    session->last_progress = frontier;
    const ProgressEvent event{session->range, frontier};
    sim_->After(options_.delivery_latency, [this, session, event] {
      if (session->state != SessionState::kLive || session->callback == nullptr) {
        return;
      }
      if (!Reachable(*session)) {
        BreakSession(session);
        return;
      }
      session->callback->OnProgress(event);
    });
  }
}

std::unique_ptr<WatchHandle> WatchSystem::Watch(common::Key low, common::Key high,
                                                common::Version version,
                                                WatchCallback* callback) {
  return WatchFrom(std::move(low), std::move(high), version, callback, sim::NodeId());
}

std::unique_ptr<WatchHandle> WatchSystem::WatchFrom(common::Key low, common::Key high,
                                                    common::Version version,
                                                    WatchCallback* callback,
                                                    sim::NodeId watcher_node) {
  Filter filter;
  filter.range = common::KeyRange{std::move(low), std::move(high)};
  return WatchFilteredFrom(std::move(filter), version, callback, std::move(watcher_node));
}

std::unique_ptr<WatchHandle> WatchSystem::WatchFiltered(Filter filter, common::Version version,
                                                        WatchCallback* callback) {
  return WatchFilteredFrom(std::move(filter), version, callback, sim::NodeId());
}

std::unique_ptr<WatchHandle> WatchSystem::WatchFilteredFrom(Filter filter,
                                                            common::Version version,
                                                            WatchCallback* callback,
                                                            sim::NodeId watcher_node) {
  if (!filter.headers.empty()) {
    // ChangeEvents carry no headers: a header predicate could only ever
    // match nothing. Fail loudly instead of opening a silently-empty stream.
    return nullptr;
  }
  filter.Canonicalize();
  // version == kMaxVersion means "join at the live edge": no replay, no
  // resync — used by store-less intermediaries (e.g. WatchProxy) that have no
  // snapshot to recover from and only need a valid forward stream.
  if (version == common::kMaxVersion) {
    version = window_.MaxVersion();
  }
  auto session = std::make_shared<Session>();
  session->id = next_session_id_++;
  session->range = filter.range;
  session->filter = std::move(filter);
  session->start_version = version;
  session->callback = callback;
  session->watcher_node = std::move(watcher_node);
  session->last_progress = version;
  sessions_.emplace(session->id, session);
  interest_.Add(session->id, session->filter);
  if (observer_ != nullptr) {
    observer_->OnSessionStart(session->id, session->range, session->start_version);
  }

  // Opportunistic session-table hygiene: drop dead sessions. Dead sessions
  // always have in_flight == 0 (reset on leaving kLive); any pending delivery
  // closures hold their own shared_ptr, so erasure is safe. Index entries go
  // with them (sessions cancelled via their handle never told us directly).
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second->state == SessionState::kDead) {
      interest_.Remove(it->first);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }

  // Enforce the age bound at join time too: Append only trims when events
  // arrive, so on a quiescent window an aged-out position could otherwise
  // replay stale history instead of resyncing.
  if (options_.window.max_age > 0) {
    window_.TrimOlderThan(sim_->Now() - options_.window.max_age);
  }
  if (!window_.CanServeFrom(version)) {
    // The requested version predates retained history: resync, loudly.
    ForceResync(session, "window_floor");
    return std::make_unique<Handle>(session);
  }
  // Replay buffered events the watcher has not seen, then go live. Replay and
  // live dispatch share the fixed delivery latency, so ordering holds. The
  // window query is range-scoped; the filter's residual (prefix) constraint
  // applies on top.
  for (const ChangeEvent& event : window_.EventsAfter(session->range, version)) {
    if (!session->filter.MatchesKey(event.key)) {
      continue;
    }
    DeliverEvent(session, event);
  }
  return std::make_unique<Handle>(session);
}

void WatchSystem::CrashSoftState() {
  window_.Clear();
  tracker_.Clear();
  if (observer_ != nullptr) {
    observer_->OnSoftStateCrash();
  }
  if (obs_ != nullptr) {
    obs_->LogEvent(obs::EventKind::kSoftStateCrash, "crash",
                   "sessions=" + std::to_string(sessions_.size()), obs_shard_);
  }
  for (auto& [id, session] : sessions_) {
    if (session->state == SessionState::kLive) {
      ForceResync(session, "soft_state_crash");
    }
  }
}

void WatchSystem::VisitSessions(const std::function<void(const SessionInfo&)>& fn) const {
  for (const auto& [id, session] : sessions_) {
    fn(SessionInfo{session->id, session->range, session->start_version,
                   session->state == SessionState::kLive, session->in_flight,
                   session->last_progress});
  }
}

std::size_t WatchSystem::active_sessions() const {
  std::size_t n = 0;
  for (const auto& [id, session] : sessions_) {
    if (session->state == SessionState::kLive) {
      ++n;
    }
  }
  return n;
}

}  // namespace watch
