// WatchSystem: a standalone watch layer in the spirit of the paper's Snappy
// (Section 5, "Standalone watch system"). It implements both halves of the
// Section 4.2 contract:
//
//   * Ingester — a store / CDC pipeline appends change events and
//     range-scoped progress;
//   * Watchable — watchers subscribe to key ranges from a version.
//
// All state here is SOFT state (Section 4.2.2): a bounded retained window of
// recent events plus a progress frontier. Deleting it loses no data — the
// system simply forces watchers to resync from the authoritative store. This
// is the architectural difference from pubsub, whose log is hard state whose
// garbage collection silently destroys unconsumed messages.
//
// Delivery guarantees (tested as properties in tests/watch):
//   * No gaps: a live session delivers every ingested event in its range with
//     version > the watch version, in ingest order.
//   * Loud fallback: when the system cannot honor that guarantee (watch
//     version below the retained window, session backlog overflow, soft-state
//     crash), the watcher receives OnResync — never a silent skip.
#ifndef SRC_WATCH_WATCH_SYSTEM_H_
#define SRC_WATCH_WATCH_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/collector.h"
#include "pubsub/interest_index.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "watch/api.h"
#include "watch/filter.h"
#include "watch/progress_tracker.h"
#include "watch/retained_window.h"

namespace watch {

// Harness-side observer of the watch system's ingest/delivery plane, used by
// the invariant oracle to replicate the no-gap contract independently.
// Callbacks run synchronously on the ingest/dispatch path; they must not
// re-enter the watch system.
class WatchSystemObserver {
 public:
  virtual ~WatchSystemObserver() = default;

  // An event entered the retained window (before any session dispatch).
  virtual void OnIngest(const ChangeEvent& event) = 0;
  // A session was created (before replay begins).
  virtual void OnSessionStart(std::uint64_t session_id, const common::KeyRange& range,
                              common::Version start_version) = 0;
  // An event reached a session's callback.
  virtual void OnDeliver(std::uint64_t session_id, const ChangeEvent& event) = 0;
  // A session left the live state because a resync was initiated; no further
  // events will be delivered on it.
  virtual void OnResync(std::uint64_t session_id) = 0;
  // All soft state (window + progress frontier) was dropped.
  virtual void OnSoftStateCrash() = 0;
};

struct WatchSystemOptions {
  RetainedWindow::Options window;
  // One-way latency for event/progress/resync delivery to a watcher. Fixed
  // (not jittered) per system so in-order delivery within a session holds.
  common::TimeMicros delivery_latency = 1 * common::kMicrosPerMilli;
  // Cadence at which sessions receive progress notifications.
  common::TimeMicros progress_period = 100 * common::kMicrosPerMilli;
  // A session with more than this many undelivered events is judged lagging:
  // it receives OnResync and is terminated (the watcher re-snapshots). 0
  // disables the check.
  std::size_t max_session_backlog = 0;
};

class WatchSystem : public NodeAwareWatchable, public Ingester {
 public:
  // `net`/`node` give the system a network identity; watchers registered with
  // a node id are subject to reachability. Pass net == nullptr for a fully
  // local (always-reachable) system.
  WatchSystem(sim::Simulator* sim, sim::Network* net, sim::NodeId node,
              WatchSystemOptions options = {});
  ~WatchSystem() override;

  WatchSystem(const WatchSystem&) = delete;
  WatchSystem& operator=(const WatchSystem&) = delete;

  // -- Ingester ---------------------------------------------------------------

  void Append(const ChangeEvent& event) override;
  void Progress(const ProgressEvent& event) override;

  // -- Watchable ----------------------------------------------------------------

  // Local watcher (co-located; always reachable). Passing
  // version == common::kMaxVersion joins at the live edge (no replay).
  std::unique_ptr<WatchHandle> Watch(common::Key low, common::Key high,
                                     common::Version version, WatchCallback* callback) override;

  // Watcher living on `watcher_node`: deliveries stop if the node becomes
  // unreachable (the session breaks; the watcher re-watches on recovery).
  std::unique_ptr<WatchHandle> WatchFrom(common::Key low, common::Key high,
                                         common::Version version, WatchCallback* callback,
                                         sim::NodeId watcher_node) override;

  // Filtered watches: the filter's key range plays the session-range role,
  // and the prefix constraint is evaluated ingest-side through the interest
  // index — a non-matching ingest touches no session state. Header
  // predicates are rejected (nullptr): ChangeEvents carry no headers, so
  // such a filter could only ever match nothing, silently.
  std::unique_ptr<WatchHandle> WatchFiltered(Filter filter, common::Version version,
                                             WatchCallback* callback);
  std::unique_ptr<WatchHandle> WatchFilteredFrom(Filter filter, common::Version version,
                                                 WatchCallback* callback,
                                                 sim::NodeId watcher_node);

  // -- Soft-state lifecycle ------------------------------------------------------

  // Simulates losing the watch system's soft state (process restart, cache
  // wipe). Every active session receives OnResync; the retained window and
  // progress frontier restart empty. No data is lost end-to-end: watchers
  // recover from the store.
  void CrashSoftState();

  // The oldest version a new watch can start from without resync.
  common::Version MinRetainedVersion() const { return window_.MinRetainedVersion(); }
  common::Version MaxIngestedVersion() const { return window_.MaxVersion(); }
  const ProgressTracker& progress_tracker() const { return tracker_; }

  // -- Metrics --------------------------------------------------------------------

  std::uint64_t events_delivered() const { return events_delivered_; }
  std::uint64_t resyncs_sent() const { return resyncs_sent_; }
  std::uint64_t sessions_broken() const { return sessions_broken_; }
  std::size_t active_sessions() const;
  std::size_t retained_events() const { return window_.size(); }
  // Interest-index occupancy (leak checks: must drop back as sessions die).
  std::size_t interest_count() const { return interest_.subscriber_count(); }
  std::size_t interest_lanes() const { return interest_.lane_count(); }
  const pubsub::InterestIndex& interests() const { return interest_; }

  // -- Oracle introspection --------------------------------------------------------

  void set_observer(WatchSystemObserver* observer) { observer_ = observer; }

  // Attaches the observability collector (nullptr detaches). The system
  // stamps ingest/deliver/ack trace stages on events and logs resyncs,
  // session breaks, and soft-state crashes with their causes. `shard` tags
  // the collector's per-shard histogram family when this system runs inside
  // a ShardPool core.
  void set_obs(obs::Collector* obs, std::size_t shard = 0) {
    obs_ = obs;
    obs_shard_ = shard;
  }

  // Read-only view of one session's bookkeeping state.
  struct SessionInfo {
    std::uint64_t id = 0;
    common::KeyRange range;
    common::Version start_version = 0;
    bool live = false;
    std::size_t in_flight = 0;
    // Highest progress frontier notified to the session; with
    // MaxIngestedVersion() this gives the session's delivery-lag watermark.
    common::Version last_progress = 0;
  };
  void VisitSessions(const std::function<void(const SessionInfo&)>& fn) const;

 private:
  enum class SessionState : std::uint8_t { kLive, kResyncing, kDead };

  struct Session {
    std::uint64_t id = 0;
    common::KeyRange range;  // == filter.range (kept for range-scoped paths).
    Filter filter;
    common::Version start_version = 0;
    WatchCallback* callback = nullptr;
    sim::NodeId watcher_node;  // Empty: local.
    SessionState state = SessionState::kLive;
    // Scheduled-but-undelivered events. Exact while the session is kLive;
    // reset to zero the moment the session leaves kLive (pending deliveries
    // are then unaccounted and drop at dispatch time).
    std::size_t in_flight = 0;
    common::Version last_progress = 0;
  };

  class Handle;

  bool Reachable(const Session& session) const;
  void DeliverEvent(const std::shared_ptr<Session>& session, const ChangeEvent& event);
  // `cause` feeds the obs event log: "backlog_overflow", "window_floor",
  // "window_age", "soft_state_crash".
  void ForceResync(const std::shared_ptr<Session>& session, const char* cause);
  void BreakSession(const std::shared_ptr<Session>& session);
  void PumpProgress();

  sim::Simulator* sim_;
  sim::Network* net_;
  sim::NodeId node_;
  WatchSystemOptions options_;
  RetainedWindow window_;
  ProgressTracker tracker_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  // Ingest-side fanout index over every session's filter (session id =
  // subscriber id): Append touches O(matching sessions), not all of them.
  // Entries are removed when a session leaves kLive (resync/break) or is
  // swept, so index occupancy tracks live sessions.
  pubsub::InterestIndex interest_;
  std::uint64_t next_session_id_ = 1;
  std::uint64_t events_delivered_ = 0;
  std::uint64_t resyncs_sent_ = 0;
  std::uint64_t sessions_broken_ = 0;
  WatchSystemObserver* observer_ = nullptr;
  obs::Collector* obs_ = nullptr;
  std::size_t obs_shard_ = 0;
  std::unique_ptr<sim::PeriodicTask> progress_task_;
};

}  // namespace watch

#endif  // SRC_WATCH_WATCH_SYSTEM_H_
