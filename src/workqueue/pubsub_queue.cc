#include "workqueue/pubsub_queue.h"

namespace workqueue {

PubsubWorkQueue::PubsubWorkQueue(sim::Simulator* sim, sim::Network* net,
                                 pubsub::Broker* broker, std::string topic,
                                 pubsub::GroupId group, storage::MvccStore* store,
                                 PubsubQueueOptions options)
    : sim_(sim),
      net_(net),
      broker_(broker),
      topic_(std::move(topic)),
      store_(store),
      options_(options) {
  // Enqueue a task for every desired-state commit: message key = entity key
  // (per-entity ordering via key-hash partitioning), value = desired state at
  // enqueue time (event-carried state).
  store_->AddCommitObserver([this](const storage::CommitRecord& record) {
    for (const common::ChangeEvent& ev : record.changes) {
      if (ev.mutation.kind != common::MutationKind::kPut || !IsDesiredKey(ev.key)) {
        continue;
      }
      ++tasks_enqueued_;
      (void)broker_->Publish(topic_, pubsub::Message{ev.key, ev.mutation.value, 0});
    }
  });

  for (std::uint32_t i = 0; i < options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->node = options_.worker_prefix + std::to_string(i);
    Worker* raw = worker.get();
    worker->consumer = std::make_unique<pubsub::GroupConsumer>(
        sim_, net_, broker_, group, topic_, worker->node,
        [this, raw](pubsub::PartitionId, const pubsub::StoredMessage& m) {
          return HandleTask(raw, m);
        },
        options_.consumer);
    worker->consumer->Start();
    workers_.push_back(std::move(worker));
  }
}

PubsubWorkQueue::~PubsubWorkQueue() = default;

bool PubsubWorkQueue::HandleTask(Worker* worker, const pubsub::StoredMessage& message) {
  if (worker->busy) {
    // Still processing the previous task: nack. The partition's entire
    // backlog — including urgent tasks — waits behind this head (FIFO).
    return false;
  }
  auto id = EntityIdOf(message.message.key);
  auto desired = DecodeDesired(message.message.value);
  if (!id.has_value() || !desired.has_value()) {
    return true;  // Malformed task: drop.
  }
  const bool warm = worker->warm_entities.count(*id) > 0;
  if (warm) {
    ++warm_hits_;
  } else {
    ++cold_misses_;
    worker->warm_entities.insert(*id);
  }
  const common::TimeMicros cost = warm ? options_.costs.warm : options_.costs.cold;
  worker->busy = true;
  // The task is acknowledged now (at-least-once, early ack) and the effect
  // lands after the processing time — executing the config the task CARRIED,
  // which may no longer be what is desired.
  const std::string config = desired->config;
  const std::uint64_t entity = *id;
  sim_->After(cost, [this, worker, entity, config] {
    worker->busy = false;
    if (!net_->IsUp(worker->node)) {
      return;  // Crashed mid-task: the acked task's effect is lost.
    }
    store_->Apply(ActualKey(entity), common::Mutation::Put(config));
    ++tasks_completed_;
  });
  return true;
}

std::vector<sim::NodeId> PubsubWorkQueue::WorkerNodes() const {
  std::vector<sim::NodeId> out;
  for (const auto& w : workers_) {
    out.push_back(w->node);
  }
  return out;
}

}  // namespace workqueue
