// PubsubWorkQueue: the task-queue architecture of Section 3.2.4. Every
// desired-state change is published as a task message (carrying the desired
// state *as of enqueue time*); a consumer group of workers processes tasks.
//
// Reproduced pathologies:
//   * event-carried state goes stale: workers execute the enqueued config
//     even if the desired state has changed since (wasted/incorrect work);
//   * a lost task (retention GC during a backlog, crash after ack) leaves the
//     entity permanently unreconciled — a stuck workflow;
//   * FIFO partitions can't prioritize: urgent tasks queue behind bulk ones
//     (head-of-line blocking);
//   * consumer-group reassignment wipes worker affinity (cold caches).
#ifndef SRC_WORKQUEUE_PUBSUB_QUEUE_H_
#define SRC_WORKQUEUE_PUBSUB_QUEUE_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "pubsub/broker.h"
#include "pubsub/consumer.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "workqueue/types.h"

namespace workqueue {

struct WorkerCosts {
  // Processing time when the worker has the entity's context cached locally.
  common::TimeMicros warm = 1 * common::kMicrosPerMilli;
  // Processing time when it must load context cold.
  common::TimeMicros cold = 10 * common::kMicrosPerMilli;
};

struct PubsubQueueOptions {
  std::uint32_t workers = 4;
  std::string worker_prefix = "psq-worker-";
  WorkerCosts costs;
  pubsub::ConsumerOptions consumer;
};

class PubsubWorkQueue {
 public:
  // `topic` must exist on the broker. Desired-state changes committed to
  // `store` are auto-enqueued as tasks (keyed by entity, so one entity's
  // tasks stay ordered within a partition).
  PubsubWorkQueue(sim::Simulator* sim, sim::Network* net, pubsub::Broker* broker,
                  std::string topic, pubsub::GroupId group, storage::MvccStore* store,
                  PubsubQueueOptions options = {});
  ~PubsubWorkQueue();

  PubsubWorkQueue(const PubsubWorkQueue&) = delete;
  PubsubWorkQueue& operator=(const PubsubWorkQueue&) = delete;

  std::uint64_t tasks_enqueued() const { return tasks_enqueued_; }
  std::uint64_t tasks_completed() const { return tasks_completed_; }
  std::uint64_t warm_hits() const { return warm_hits_; }
  std::uint64_t cold_misses() const { return cold_misses_; }

  std::vector<sim::NodeId> WorkerNodes() const;

 private:
  struct Worker {
    sim::NodeId node;
    std::unique_ptr<pubsub::GroupConsumer> consumer;
    std::set<std::uint64_t> warm_entities;  // Local context cache.
    bool busy = false;
  };

  bool HandleTask(Worker* worker, const pubsub::StoredMessage& message);

  sim::Simulator* sim_;
  sim::Network* net_;
  pubsub::Broker* broker_;
  std::string topic_;
  storage::MvccStore* store_;
  PubsubQueueOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::uint64_t tasks_enqueued_ = 0;
  std::uint64_t tasks_completed_ = 0;
  std::uint64_t warm_hits_ = 0;
  std::uint64_t cold_misses_ = 0;
};

}  // namespace workqueue

#endif  // SRC_WORKQUEUE_PUBSUB_QUEUE_H_
