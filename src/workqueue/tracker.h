// ConvergenceTracker: harness-side oracle for the work-queueing experiments.
// It observes the producer store and measures, per desired-state change, how
// long the system takes to make the entity's actual state match — and, at the
// end of a run, which entities never converged ("stuck workflows").
#ifndef SRC_WORKQUEUE_TRACKER_H_
#define SRC_WORKQUEUE_TRACKER_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/metrics.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "workqueue/types.h"

namespace workqueue {

class ConvergenceTracker {
 public:
  ConvergenceTracker(sim::Simulator* sim, storage::MvccStore* store) : sim_(sim) {
    store->AddCommitObserver([this](const storage::CommitRecord& record) {
      // Two passes per commit: desired-state puts first, then actual-state
      // puts. A commit carrying both for one entity is then handled
      // deterministically (the actual is judged against that commit's
      // desired) regardless of the change order inside the record.
      for (const common::ChangeEvent& ev : record.changes) {
        if (ev.mutation.kind != common::MutationKind::kPut || !IsDesiredKey(ev.key)) {
          continue;
        }
        auto id = EntityIdOf(ev.key);
        if (!id.has_value()) {
          continue;
        }
        Pending& p = pending_[*id];
        p.desired = ev.mutation.value;
        p.changed_at = sim_->Now();
        p.converged = false;
        auto decoded = DecodeDesired(ev.mutation.value);
        p.priority = decoded.has_value() ? decoded->priority : 0;
      }
      for (const common::ChangeEvent& ev : record.changes) {
        if (ev.mutation.kind != common::MutationKind::kPut || !IsActualKey(ev.key)) {
          continue;
        }
        auto id = EntityIdOf(ev.key);
        if (!id.has_value()) {
          continue;
        }
        auto it = pending_.find(*id);
        if (it == pending_.end()) {
          // Actual-before-desired ordering: the execution result arrived
          // before any observed desired put. Not staleness — count it so
          // harnesses can detect the reordering instead of losing it.
          ++unmatched_actuals_;
          continue;
        }
        if (it->second.converged) {
          continue;
        }
        auto desired = DecodeDesired(it->second.desired);
        if (!desired.has_value()) {
          // Undecodable desired value: a measurement failure, not a stale
          // execution — keep the counters honest by splitting them.
          ++decode_failures_;
          continue;
        }
        // Converged only if the applied actual matches the CURRENT desired
        // (a stale execution does not count).
        if (ev.mutation.value == desired->config) {
          it->second.converged = true;
          const double latency_ms =
              static_cast<double>(sim_->Now() - it->second.changed_at) /
              common::kMicrosPerMilli;
          latency_.Record(latency_ms);
          by_priority_[it->second.priority].Record(latency_ms);
          ++converged_;
        } else {
          ++stale_executions_;
        }
      }
    });
  }

  ConvergenceTracker(const ConvergenceTracker&) = delete;
  ConvergenceTracker& operator=(const ConvergenceTracker&) = delete;

  // Entities whose latest desired change never converged.
  std::uint64_t StuckEntities() const {
    std::uint64_t stuck = 0;
    for (const auto& [id, p] : pending_) {
      if (!p.converged) {
        ++stuck;
      }
    }
    return stuck;
  }

  std::uint64_t converged() const { return converged_; }
  // Decodable actuals that matched an out-of-date desired value.
  std::uint64_t stale_executions() const { return stale_executions_; }
  // Actuals judged against an undecodable desired value.
  std::uint64_t decode_failures() const { return decode_failures_; }
  // Actuals observed before any desired put for their entity.
  std::uint64_t unmatched_actuals() const { return unmatched_actuals_; }
  const common::Histogram& latency_ms() const { return latency_; }
  const std::map<std::uint32_t, common::Histogram>& latency_by_priority() const {
    return by_priority_;
  }

 private:
  struct Pending {
    common::Value desired;
    common::TimeMicros changed_at = 0;
    std::uint32_t priority = 0;
    bool converged = true;
  };

  sim::Simulator* sim_;
  std::map<std::uint64_t, Pending> pending_;
  common::Histogram latency_;
  std::map<std::uint32_t, common::Histogram> by_priority_;
  std::uint64_t converged_ = 0;
  std::uint64_t stale_executions_ = 0;
  std::uint64_t decode_failures_ = 0;
  std::uint64_t unmatched_actuals_ = 0;
};

}  // namespace workqueue

#endif  // SRC_WORKQUEUE_TRACKER_H_
