// Shared vocabulary for the work-queueing experiments (Section 3.2.4 / 4.3):
// entities with a *desired* and an *actual* state, both rows in the producer
// store. Work means advancing an entity's actual state to its desired state
// (the paper's example: ensuring every workload runs on some set of VMs).
//
// Key layout groups an entity's rows together so key-range sharding
// affinitizes whole entities:   ent/<id>/desired   ent/<id>/actual
#ifndef SRC_WORKQUEUE_TYPES_H_
#define SRC_WORKQUEUE_TYPES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "common/types.h"

namespace workqueue {

inline common::Key EntityPrefix(std::uint64_t id) {
  return "ent/" + common::IndexKey(id) + "/";
}
inline common::Key DesiredKey(std::uint64_t id) { return EntityPrefix(id) + "desired"; }
inline common::Key ActualKey(std::uint64_t id) { return EntityPrefix(id) + "actual"; }

// Key range covering entities [lo, hi).
inline common::KeyRange EntityRange(std::uint64_t lo, std::uint64_t hi) {
  return common::KeyRange{"ent/" + common::IndexKey(lo) + "/",
                          "ent/" + common::IndexKey(hi) + "/"};
}

// Extracts the entity id from an ent/… key (nullopt for foreign keys).
inline std::optional<std::uint64_t> EntityIdOf(std::string_view key) {
  constexpr std::string_view kPrefix = "ent/k";
  if (key.substr(0, kPrefix.size()) != kPrefix) {
    return std::nullopt;
  }
  std::uint64_t id = 0;
  std::size_t i = kPrefix.size();
  bool any = false;
  for (; i < key.size() && key[i] >= '0' && key[i] <= '9'; ++i) {
    id = id * 10 + static_cast<std::uint64_t>(key[i] - '0');
    any = true;
  }
  if (!any || i >= key.size() || key[i] != '/') {
    return std::nullopt;
  }
  return id;
}

inline bool IsDesiredKey(std::string_view key) {
  return key.size() > 8 && key.substr(key.size() - 8) == "/desired";
}
inline bool IsActualKey(std::string_view key) {
  return key.size() > 7 && key.substr(key.size() - 7) == "/actual";
}

// Desired-state value encoding: "<priority>|<config>". Priority 0 is lowest.
inline common::Value EncodeDesired(std::uint32_t priority, const std::string& config) {
  return std::to_string(priority) + "|" + config;
}

struct DesiredState {
  std::uint32_t priority = 0;
  std::string config;
};

inline std::optional<DesiredState> DecodeDesired(const common::Value& value) {
  const std::size_t bar = value.find('|');
  if (bar == std::string::npos) {
    return std::nullopt;
  }
  DesiredState out;
  out.priority = static_cast<std::uint32_t>(std::strtoul(value.substr(0, bar).c_str(),
                                                         nullptr, 10));
  out.config = value.substr(bar + 1);
  return out;
}

}  // namespace workqueue

#endif  // SRC_WORKQUEUE_TYPES_H_
