#include "workqueue/watch_queue.h"

namespace workqueue {

WatchWorkQueue::WatchWorkQueue(sim::Simulator* sim, sim::Network* net,
                               sharding::AutoSharder* sharder,
                               watch::NodeAwareWatchable* watchable,
                               const watch::SnapshotSource* source, storage::MvccStore* store,
                               WatchQueueOptions options)
    : sim_(sim),
      net_(net),
      sharder_(sharder),
      watchable_(watchable),
      source_(source),
      store_(store),
      options_(options) {
  for (std::uint32_t i = 0; i < options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->node = options_.worker_prefix + std::to_string(i);
    net_->AddNode(worker->node);
    Worker* raw = worker.get();
    worker->subscription = sharder_->Subscribe(
        [this, raw](const common::KeyRange& range,
                    const std::optional<sharding::WorkerId>& owner, sharding::Generation) {
          OnAssignment(raw, range, owner);
        },
        options_.assignment_latency);
    worker->reconcile_task = std::make_unique<sim::PeriodicTask>(
        sim_, options_.reconcile_period, [this, raw] { Reconcile(raw); });
    sharder_->AddWorker(worker->node);
    workers_.push_back(std::move(worker));
  }
}

WatchWorkQueue::~WatchWorkQueue() {
  for (auto& worker : workers_) {
    sharder_->Unsubscribe(worker->subscription);
  }
}

void WatchWorkQueue::OnAssignment(Worker* worker, const common::KeyRange& range,
                                  const std::optional<sharding::WorkerId>& owner) {
  const bool mine = owner == std::optional<sharding::WorkerId>(worker->node);
  auto exact = worker->ranges.find(range.low);
  if (mine && exact != worker->ranges.end() && exact->second->range() == range) {
    return;
  }
  for (auto it = worker->ranges.begin(); it != worker->ranges.end();) {
    if (it->second->range().Overlaps(range)) {
      it->second->Stop();
      it = worker->ranges.erase(it);
    } else {
      ++it;
    }
  }
  if (mine) {
    watch::MaterializedOptions mopts = options_.materialized;
    mopts.node = worker->node;
    auto mr = std::make_unique<watch::MaterializedRange>(sim_, watchable_, source_, range,
                                                         mopts);
    mr->Start();
    worker->ranges.emplace(range.low, std::move(mr));
  }
}

void WatchWorkQueue::Reconcile(Worker* worker) {
  if (worker->busy || !net_->IsUp(worker->node)) {
    return;
  }
  // Scan owned materializations for the highest-priority divergent entity.
  // Observing current state (not queued events) means stale work is never
  // executed and nothing is ever lost.
  std::optional<std::uint64_t> best_entity;
  std::uint32_t best_priority = 0;
  std::string best_config;
  for (const auto& [low, mr] : worker->ranges) {
    if (!mr->ready()) {
      continue;
    }
    const std::vector<storage::Entry> entries = mr->LatestScan(mr->range());
    // Single pass: remember each entity's desired, compare to its actual
    // (keys are adjacent: .../actual sorts before .../desired).
    std::map<std::uint64_t, std::string> actuals;
    for (const storage::Entry& e : entries) {
      auto id = EntityIdOf(e.key);
      if (!id.has_value()) {
        continue;
      }
      if (IsActualKey(e.key)) {
        actuals[*id] = e.value;
        continue;
      }
      if (!IsDesiredKey(e.key)) {
        continue;
      }
      auto desired = DecodeDesired(e.value);
      if (!desired.has_value()) {
        continue;
      }
      auto actual = actuals.find(*id);
      const bool divergent =
          actual == actuals.end() || actual->second != desired->config;
      if (!divergent) {
        continue;
      }
      if (!best_entity.has_value() || desired->priority > best_priority) {
        best_entity = *id;
        best_priority = desired->priority;
        best_config = desired->config;
      }
    }
  }
  if (!best_entity.has_value()) {
    return;
  }
  const bool warm = worker->warm_entities.count(*best_entity) > 0;
  if (warm) {
    ++warm_hits_;
  } else {
    ++cold_misses_;
    worker->warm_entities.insert(*best_entity);
  }
  const common::TimeMicros cost = warm ? options_.costs.warm : options_.costs.cold;
  worker->busy = true;
  const std::uint64_t entity = *best_entity;
  const std::string config = best_config;
  sim_->After(cost, [this, worker, entity, config] {
    worker->busy = false;
    if (!net_->IsUp(worker->node)) {
      return;  // Crashed mid-step; the entity stays divergent and the range's
               // next owner (or this worker after restart) reconciles it.
    }
    store_->Apply(ActualKey(entity), common::Mutation::Put(config));
    ++tasks_completed_;
  });
}

std::vector<sim::NodeId> WatchWorkQueue::WorkerNodes() const {
  std::vector<sim::NodeId> out;
  for (const auto& w : workers_) {
    out.push_back(w->node);
  }
  return out;
}

}  // namespace workqueue
