// WatchWorkQueue: the paper's reframing of work queueing (Section 4.3) —
// "advancing entities to some desired state". Workers own dynamically
// assigned entity ranges (auto-sharder), materialize the desired/actual
// tables for their ranges via watch, and run a reconciliation loop:
//
//   pick the highest-priority owned entity whose actual != desired,
//   process it (warm/cold cost), write the new actual state to the store.
//
// By observing CURRENT state instead of a trail of task events, the
// coordinator is immune to stale tasks and lost messages; priorities fully
// mitigate head-of-line blocking; range affinitization keeps caches warm; and
// worker failure just moves the range — the new owner reconciles whatever is
// outstanding. Nothing can be stuck while a worker owns its range.
#ifndef SRC_WORKQUEUE_WATCH_QUEUE_H_
#define SRC_WORKQUEUE_WATCH_QUEUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "sharding/autosharder.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/api.h"
#include "watch/materialized.h"
#include "watch/snapshot_source.h"
#include "workqueue/pubsub_queue.h"  // WorkerCosts.
#include "workqueue/types.h"

namespace workqueue {

struct WatchQueueOptions {
  std::uint32_t workers = 4;
  std::string worker_prefix = "wq-worker-";
  WorkerCosts costs;
  // Reconciliation scan cadence per worker.
  common::TimeMicros reconcile_period = 5 * common::kMicrosPerMilli;
  common::TimeMicros assignment_latency = 2 * common::kMicrosPerMilli;
  watch::MaterializedOptions materialized;
};

class WatchWorkQueue {
 public:
  WatchWorkQueue(sim::Simulator* sim, sim::Network* net, sharding::AutoSharder* sharder,
                 watch::NodeAwareWatchable* watchable, const watch::SnapshotSource* source,
                 storage::MvccStore* store, WatchQueueOptions options = {});
  ~WatchWorkQueue();

  WatchWorkQueue(const WatchWorkQueue&) = delete;
  WatchWorkQueue& operator=(const WatchWorkQueue&) = delete;

  std::uint64_t tasks_completed() const { return tasks_completed_; }
  std::uint64_t warm_hits() const { return warm_hits_; }
  std::uint64_t cold_misses() const { return cold_misses_; }

  std::vector<sim::NodeId> WorkerNodes() const;

 private:
  struct Worker {
    sim::NodeId node;
    std::map<common::Key, std::unique_ptr<watch::MaterializedRange>> ranges;
    std::set<std::uint64_t> warm_entities;
    bool busy = false;
    std::uint64_t subscription = 0;
    std::unique_ptr<sim::PeriodicTask> reconcile_task;
  };

  void OnAssignment(Worker* worker, const common::KeyRange& range,
                    const std::optional<sharding::WorkerId>& owner);
  void Reconcile(Worker* worker);

  sim::Simulator* sim_;
  sim::Network* net_;
  sharding::AutoSharder* sharder_;
  watch::NodeAwareWatchable* watchable_;
  const watch::SnapshotSource* source_;
  storage::MvccStore* store_;
  WatchQueueOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::uint64_t tasks_completed_ = 0;
  std::uint64_t warm_hits_ = 0;
  std::uint64_t cold_misses_ = 0;
};

}  // namespace workqueue

#endif  // SRC_WORKQUEUE_WATCH_QUEUE_H_
