#include "cache/linked_cache.h"

#include <gtest/gtest.h>

#include "cdc/feeds.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/watch_system.h"

namespace cache {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
using common::Mutation;
using common::StatusCode;

class LinkedCacheTest : public ::testing::Test {
 protected:
  LinkedCacheTest()
      : net_(&sim_, {.base = 0, .jitter = 0}),
        ws_(&sim_, &net_, "ws", {.delivery_latency = 1 * kMs, .progress_period = 10 * kMs}),
        feed_(&sim_, &store_, nullptr, &ws_, {.progress_period = 10 * kMs}) {}

  sim::Simulator sim_;
  sim::Network net_;
  storage::MvccStore store_;
  watch::WatchSystem ws_;
  cdc::CdcIngesterFeed feed_;
};

TEST_F(LinkedCacheTest, MissFillsThenHits) {
  store_.Apply("k", Mutation::Put("v1"));
  LinkedCache cache(&sim_, &ws_, &store_);
  EXPECT_EQ(*cache.Get("k"), "v1");
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(*cache.Get("k"), "v1");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_TRUE(cache.IsLinked("k"));
}

TEST_F(LinkedCacheTest, LinkKeepsEntryFresh) {
  store_.Apply("k", Mutation::Put("v1"));
  LinkedCache cache(&sim_, &ws_, &store_);
  (void)cache.Get("k");
  store_.Apply("k", Mutation::Put("v2"));
  sim_.RunUntil(50 * kMs);  // The update streams in; no invalidation routing.
  EXPECT_EQ(*cache.Get("k"), "v2");
  EXPECT_EQ(cache.hits(), 1u);  // Still a cache hit, not a refill.
  EXPECT_GE(cache.invalidation_updates(), 1u);
}

TEST_F(LinkedCacheTest, DeleteStreamsInAsKnownAbsence) {
  store_.Apply("k", Mutation::Put("v"));
  LinkedCache cache(&sim_, &ws_, &store_);
  (void)cache.Get("k");
  store_.Apply("k", Mutation::Delete());
  sim_.RunUntil(50 * kMs);
  EXPECT_EQ(cache.Get("k").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cache.misses(), 1u);  // The absence was served from cache.
}

TEST_F(LinkedCacheTest, NegativeCachingOfMissingKeys) {
  LinkedCache cache(&sim_, &ws_, &store_);
  EXPECT_EQ(cache.Get("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cache.Get("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);  // Second lookup hit the cached absence.
  // And when the key appears, the link updates the cached absence.
  store_.Apply("ghost", Mutation::Put("now-exists"));
  sim_.RunUntil(50 * kMs);
  EXPECT_EQ(*cache.Get("ghost"), "now-exists");
}

TEST_F(LinkedCacheTest, NoFillRaceWindow) {
  // An update committed immediately after the fill read still reaches the
  // entry, because the link starts at the read version.
  store_.Apply("k", Mutation::Put("v1"));
  LinkedCache cache(&sim_, &ws_, &store_);
  (void)cache.Get("k");                      // Read v1, link from that version.
  store_.Apply("k", Mutation::Put("v2"));    // Commits before any delivery ran.
  sim_.RunUntil(100 * kMs);
  EXPECT_EQ(*cache.Get("k"), "v2");
}

TEST_F(LinkedCacheTest, LruEvictionClosesLinks) {
  LinkedCache cache(&sim_, &ws_, &store_, {.capacity = 2});
  store_.Apply("a", Mutation::Put("1"));
  store_.Apply("b", Mutation::Put("2"));
  store_.Apply("c", Mutation::Put("3"));
  (void)cache.Get("a");
  (void)cache.Get("b");
  (void)cache.Get("c");  // Evicts "a".
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.IsLinked("a"));
  EXPECT_TRUE(cache.IsLinked("b"));
  EXPECT_TRUE(cache.IsLinked("c"));
  // Touching "b" then inserting keeps "b", evicts "c".
  store_.Apply("d", Mutation::Put("4"));
  (void)cache.Get("b");
  (void)cache.Get("d");
  EXPECT_TRUE(cache.IsLinked("b"));
  EXPECT_FALSE(cache.IsLinked("c"));
}

TEST_F(LinkedCacheTest, ResyncDropsEntryAndRefills) {
  store_.Apply("k", Mutation::Put("v1"));
  LinkedCache cache(&sim_, &ws_, &store_);
  (void)cache.Get("k");
  ws_.CrashSoftState();  // Every link resyncs.
  store_.Apply("k", Mutation::Put("v2"));
  sim_.RunUntil(100 * kMs);
  EXPECT_GE(cache.links_dropped(), 1u);
  EXPECT_FALSE(cache.IsLinked("k"));
  // Next Get refills from the store and relinks — fresh, not stale.
  EXPECT_EQ(*cache.Get("k"), "v2");
  EXPECT_TRUE(cache.IsLinked("k"));
}

TEST_F(LinkedCacheTest, NeverServesStaleAfterQuiesce) {
  LinkedCache cache(&sim_, &ws_, &store_, {.capacity = 64});
  common::Rng rng(7);
  for (int step = 0; step < 300; ++step) {
    const common::Key key = common::IndexKey(rng.Below(40), 2);
    if (rng.Bernoulli(0.4)) {
      store_.Apply(key, rng.Bernoulli(0.2)
                            ? Mutation::Delete()
                            : Mutation::Put("s" + std::to_string(step)));
    } else {
      (void)cache.Get(key);
    }
    if (step % 60 == 30) {
      ws_.CrashSoftState();
    }
    sim_.RunUntil(sim_.Now() + 2 * kMs);
  }
  sim_.RunUntil(sim_.Now() + 500 * kMs);
  // Every linked entry agrees with the store.
  for (std::uint64_t i = 0; i < 40; ++i) {
    const common::Key key = common::IndexKey(i, 2);
    if (!cache.IsLinked(key)) {
      continue;
    }
    auto cached = cache.Get(key);
    auto truth = store_.GetLatest(key);
    if (truth.ok()) {
      ASSERT_TRUE(cached.ok()) << key;
      EXPECT_EQ(*cached, *truth) << key;
    } else {
      EXPECT_FALSE(cached.ok()) << key;
    }
  }
}

}  // namespace
}  // namespace cache
