#include "cache/pubsub_cache.h"

#include <gtest/gtest.h>

#include "cdc/feeds.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"

namespace cache {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;
using common::Mutation;

// Full pubsub-invalidation stack: store -> CDC -> broker topic -> consumer
// group over cache pods, with an auto-sharder assigning ownership.
class PubsubCacheTest : public ::testing::Test {
 protected:
  PubsubCacheTest()
      : net_(&sim_, {.base = 0, .jitter = 0}),
        broker_(&sim_, &net_),
        sharder_(&sim_, &net_, {.rebalance_period = 10 * kSec}) {
    EXPECT_TRUE(broker_.CreateTopic("inval", {.partitions = 8}).ok());
    feed_ = std::make_unique<cdc::CdcPubsubFeed>(&sim_, &net_, &store_, nullptr, &broker_,
                                                 "inval");
  }

  std::unique_ptr<PubsubCacheFleet> MakeFleet(PubsubCacheOptions options = {}) {
    options.consumer.poll_period = 5 * kMs;
    return std::make_unique<PubsubCacheFleet>(&sim_, &net_, &sharder_, &store_, &broker_,
                                              "inval", "cache-group", options);
  }

  sim::Simulator sim_;
  sim::Network net_;
  storage::MvccStore store_;
  pubsub::Broker broker_;
  sharding::AutoSharder sharder_;
  std::unique_ptr<cdc::CdcPubsubFeed> feed_;
};

TEST_F(PubsubCacheTest, MissFillsAndHitServes) {
  store_.Apply("k", Mutation::Put("v1"));
  auto fleet = MakeFleet();
  sim_.RunUntil(100 * kMs);

  auto first = fleet->Get("k");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, "v1");
  EXPECT_EQ(fleet->misses(), 1u);
  sim_.RunUntil(200 * kMs);  // Let the fill install.
  auto second = fleet->Get("k");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(fleet->hits(), 1u);
}

TEST_F(PubsubCacheTest, InvalidationDropsEntryOnOwningPod) {
  store_.Apply("k", Mutation::Put("v1"));
  auto fleet = MakeFleet({.pods = 1});
  sim_.RunUntil(100 * kMs);
  (void)fleet->Get("k");
  sim_.RunUntil(200 * kMs);  // Entry installed.
  store_.Apply("k", Mutation::Put("v2"));
  sim_.RunUntil(400 * kMs);  // Invalidation flows through CDC + group.
  EXPECT_EQ(fleet->invalidations_applied(), 1u);
  auto value = fleet->Get("k");  // Miss again; fills fresh value.
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "v2");
  EXPECT_EQ(fleet->stale_serves(), 0u);
}

TEST_F(PubsubCacheTest, SteadyStateStaysFresh) {
  auto fleet = MakeFleet({.pods = 4});
  for (int i = 0; i < 50; ++i) {
    store_.Apply(common::IndexKey(i), Mutation::Put("v0"));
  }
  sim_.RunUntil(200 * kMs);
  for (int i = 0; i < 50; ++i) {
    (void)fleet->Get(common::IndexKey(i));
  }
  sim_.RunUntil(400 * kMs);
  // Update half the keys; invalidations should keep things fresh (no moves).
  for (int i = 0; i < 25; ++i) {
    store_.Apply(common::IndexKey(i), Mutation::Put("v1"));
  }
  sim_.RunUntil(1 * kSec);
  EXPECT_EQ(fleet->AuditStaleEntries(), 0u);
  for (int i = 0; i < 50; ++i) {
    auto v = fleet->Get(common::IndexKey(i));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, i < 25 ? "v1" : "v0");
  }
  EXPECT_EQ(fleet->stale_serves(), 0u);
}

TEST_F(PubsubCacheTest, Figure2RaceStrandsStaleEntry) {
  // The paper's Figure 2: invalidation of x races with the reassignment of x
  // from p_old to p_new.
  auto fleet = MakeFleet({.pods = 2, .fill_latency = 0});
  store_.Apply("x", Mutation::Put("v1"));
  sim_.RunUntil(100 * kMs);

  auto pods = fleet->PodNodes();
  const auto owner0 = sharder_.Owner("x");
  ASSERT_TRUE(owner0.has_value());
  const sim::NodeId p_old = *owner0;
  const sim::NodeId p_new = pods[0] == p_old ? pods[1] : pods[0];

  // p_old caches x.
  (void)fleet->Get("x");
  sim_.RunUntil(200 * kMs);

  // The auto-sharder moves x to p_new, and immediately afterwards the store
  // updates x: the CDC invalidation will be consumed (and acked) through the
  // consumer group, but p_new has already filled the old value.
  sharder_.MoveShard("x", p_new);
  (void)fleet->Get("x");  // p_new fills v1 (still current at fill time).
  store_.Apply("x", Mutation::Put("v2"));
  sim_.RunUntil(2 * kSec);  // Invalidation long since delivered... somewhere.

  // p_new still serves v1: a permanently stale entry.
  auto served = fleet->Get("x");
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(*served, "v1");
  EXPECT_GE(fleet->stale_serves(), 1u);
  EXPECT_EQ(fleet->AuditStaleEntries(), 1u);
}

TEST_F(PubsubCacheTest, TtlEventuallyAgesOutStaleEntry) {
  auto fleet = MakeFleet({.pods = 2, .fill_latency = 0, .ttl = 1 * kSec});
  store_.Apply("x", Mutation::Put("v1"));
  sim_.RunUntil(100 * kMs);
  auto pods = fleet->PodNodes();
  const sim::NodeId p_old = *sharder_.Owner("x");
  const sim::NodeId p_new = pods[0] == p_old ? pods[1] : pods[0];
  (void)fleet->Get("x");
  sim_.RunUntil(200 * kMs);
  sharder_.MoveShard("x", p_new);
  (void)fleet->Get("x");
  store_.Apply("x", Mutation::Put("v2"));
  sim_.RunUntil(500 * kMs);
  EXPECT_EQ(fleet->AuditStaleEntries(), 1u);  // Stale for now...
  sim_.RunUntil(2 * kSec);
  EXPECT_EQ(fleet->AuditStaleEntries(), 0u);  // ...until the TTL expires it.
  auto v = fleet->Get("x");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v2");
}

TEST_F(PubsubCacheTest, LeaseGapMakesKeysUnavailable) {
  sharding::AutoSharder leased(&sim_, &net_,
                               {.rebalance_period = 10 * kSec, .lease_duration = 500 * kMs});
  PubsubCacheOptions options;
  options.pods = 2;
  options.consumer.poll_period = 5 * kMs;
  PubsubCacheFleet fleet(&sim_, &net_, &leased, &store_, &broker_, "inval", "lease-group",
                         options);
  store_.Apply("x", Mutation::Put("v1"));
  sim_.RunUntil(100 * kMs);
  auto pods = fleet.PodNodes();
  const sim::NodeId p_old = *leased.Owner("x");
  const sim::NodeId p_new = pods[0] == p_old ? pods[1] : pods[0];
  leased.MoveShard("x", p_new);
  // During the lease gap the key has no owner: reads fail (availability cost).
  EXPECT_EQ(fleet.Get("x").status().code(), common::StatusCode::kUnavailable);
  EXPECT_GE(fleet.unavailable(), 1u);
  sim_.RunUntil(2 * kSec);
  EXPECT_TRUE(fleet.Get("x").ok());  // Lease expired; new owner serves.
}

TEST_F(PubsubCacheTest, DownedOwnerIsUnavailable) {
  store_.Apply("k", Mutation::Put("v"));
  auto fleet = MakeFleet({.pods = 1});
  sim_.RunUntil(100 * kMs);
  net_.SetUp(fleet->PodNodes()[0], false);
  EXPECT_EQ(fleet->Get("k").status().code(), common::StatusCode::kUnavailable);
}

}  // namespace
}  // namespace cache
