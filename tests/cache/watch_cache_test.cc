#include "cache/watch_cache.h"

#include <gtest/gtest.h>

#include "cdc/feeds.h"
#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/watch_system.h"

namespace cache {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;
using common::KeyRange;
using common::Mutation;

// Full watch stack: store -> CDC ingester feed -> watch system -> auto-
// sharded watch-cache fleet.
class WatchCacheTest : public ::testing::Test {
 protected:
  WatchCacheTest()
      : net_(&sim_, {.base = 0, .jitter = 0}),
        sharder_(&sim_, &net_, {.rebalance_period = 10 * kSec}),
        ws_(&sim_, &net_, "snappy", {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs}),
        feed_(&sim_, &store_, nullptr, &ws_,
              {.shards = cdc::UniformShards(1000, 4),
               .base_latency = 1 * kMs,
               .stagger = 1 * kMs,
               .progress_period = 5 * kMs}),
        source_(&store_) {}

  std::unique_ptr<WatchCacheFleet> MakeFleet(WatchCacheOptions options = {}) {
    return std::make_unique<WatchCacheFleet>(&sim_, &net_, &sharder_, &ws_, &source_, &store_,
                                             options);
  }

  sim::Simulator sim_;
  sim::Network net_;
  storage::MvccStore store_;
  sharding::AutoSharder sharder_;
  watch::WatchSystem ws_;
  cdc::CdcIngesterFeed feed_;
  watch::StoreSnapshotSource source_;
};

TEST_F(WatchCacheTest, ServesMaterializedValues) {
  store_.Apply(common::IndexKey(1), Mutation::Put("v1"));
  auto fleet = MakeFleet({.pods = 2});
  sim_.RunUntil(200 * kMs);
  auto v = fleet->Get(common::IndexKey(1));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v1");
  EXPECT_EQ(fleet->hits(), 1u);
}

TEST_F(WatchCacheTest, UpdatesFlowThroughWithoutInvalidations) {
  auto fleet = MakeFleet({.pods = 2});
  sim_.RunUntil(200 * kMs);
  store_.Apply(common::IndexKey(5), Mutation::Put("fresh"));
  sim_.RunUntil(400 * kMs);
  auto v = fleet->Get(common::IndexKey(5));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "fresh");
}

TEST_F(WatchCacheTest, ShardMoveCannotStrandStaleness) {
  // The same scenario that permanently strands a stale entry in the pubsub
  // cache (Figure 2): move + concurrent update. The watch cache's new owner
  // snapshots at acquire time and then receives the update via its own watch.
  auto fleet = MakeFleet({.pods = 2});
  store_.Apply(common::IndexKey(7), Mutation::Put("v1"));
  sim_.RunUntil(200 * kMs);

  auto pods = fleet->PodNodes();
  const sim::NodeId p_old = *sharder_.Owner(common::IndexKey(7));
  const sim::NodeId p_new = pods[0] == p_old ? pods[1] : pods[0];
  sharder_.MoveShard(common::IndexKey(7), p_new);
  store_.Apply(common::IndexKey(7), Mutation::Put("v2"));
  sim_.RunUntil(2 * kSec);

  auto v = fleet->Get(common::IndexKey(7));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v2");
  EXPECT_EQ(fleet->AuditStaleEntries(), 0u);
}

TEST_F(WatchCacheTest, HandoffIsUnavailableNotWrong) {
  auto fleet = MakeFleet({.pods = 2, .materialized = {.resync_delay = 50 * kMs}});
  store_.Apply(common::IndexKey(3), Mutation::Put("v"));
  sim_.RunUntil(500 * kMs);
  auto pods = fleet->PodNodes();
  const sim::NodeId p_old = *sharder_.Owner(common::IndexKey(3));
  const sim::NodeId p_new = pods[0] == p_old ? pods[1] : pods[0];
  sharder_.MoveShard(common::IndexKey(3), p_new);
  sim_.RunUntil(sim_.Now() + 5 * kMs);
  // Mid-handoff: the new owner's materialization is still loading.
  auto during = fleet->Get(common::IndexKey(3));
  EXPECT_EQ(during.status().code(), common::StatusCode::kUnavailable);
  sim_.RunUntil(sim_.Now() + 1 * kSec);
  EXPECT_TRUE(fleet->Get(common::IndexKey(3)).ok());
}

TEST_F(WatchCacheTest, StitchedSnapshotAcrossPods) {
  for (int i = 0; i < 100; ++i) {
    store_.Apply(common::IndexKey(i * 10), Mutation::Put("v" + std::to_string(i)));
  }
  auto fleet = MakeFleet({.pods = 3});
  sim_.RunUntil(500 * kMs);
  // Split ownership so the range spans pods.
  auto pods = fleet->PodNodes();
  sharder_.MoveShard(common::IndexKey(0), pods[0]);
  sim_.RunUntil(1 * kSec);

  auto snap = fleet->SnapshotRead(KeyRange::All());
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->entries.size(), 100u);
  // Verify against the store at the stitched version.
  auto truth = store_.Scan(KeyRange::All(), snap->version);
  ASSERT_TRUE(truth.ok());
  ASSERT_EQ(snap->entries.size(), truth->size());
  for (std::size_t i = 0; i < truth->size(); ++i) {
    EXPECT_EQ(snap->entries[i].key, (*truth)[i].key);
    EXPECT_EQ(snap->entries[i].value, (*truth)[i].value);
  }
}

TEST_F(WatchCacheTest, StitchedSnapshotIsPointInTimeUnderWrites) {
  // Two keys updated together in transactions; a stitched snapshot must show
  // a consistent pair even while updates stream in.
  storage::Transaction init = store_.Begin();
  init.Put(common::IndexKey(100), "pair-0");
  init.Put(common::IndexKey(900), "pair-0");
  ASSERT_TRUE(store_.Commit(std::move(init)).ok());

  auto fleet = MakeFleet({.pods = 2});
  sim_.RunUntil(300 * kMs);

  for (int round = 1; round <= 20; ++round) {
    storage::Transaction txn = store_.Begin();
    txn.Put(common::IndexKey(100), "pair-" + std::to_string(round));
    txn.Put(common::IndexKey(900), "pair-" + std::to_string(round));
    ASSERT_TRUE(store_.Commit(std::move(txn)).ok());
    sim_.RunUntil(sim_.Now() + 7 * kMs);

    auto snap = fleet->SnapshotRead(KeyRange::All());
    if (!snap.ok()) {
      continue;  // Transiently unavailable is acceptable; wrong is not.
    }
    common::Value a;
    common::Value b;
    for (const auto& e : snap->entries) {
      if (e.key == common::IndexKey(100)) {
        a = e.value;
      }
      if (e.key == common::IndexKey(900)) {
        b = e.value;
      }
    }
    EXPECT_EQ(a, b) << "torn snapshot at round " << round;
  }
}

TEST_F(WatchCacheTest, QuiescedFleetHasZeroStaleEntries) {
  auto fleet = MakeFleet({.pods = 3});
  common::Rng rng(99);
  sim_.RunUntil(200 * kMs);
  for (int step = 0; step < 300; ++step) {
    store_.Apply(common::IndexKey(rng.Below(200)),
                 rng.Bernoulli(0.1) ? Mutation::Delete()
                                    : Mutation::Put("s" + std::to_string(step)));
    if (step % 50 == 25) {
      // Random shard churn while writes are in flight.
      auto pods = fleet->PodNodes();
      sharder_.MoveShard(common::IndexKey(rng.Below(200)),
                         pods[rng.Below(pods.size())]);
    }
    sim_.RunUntil(sim_.Now() + 2 * kMs);
  }
  sim_.RunUntil(sim_.Now() + 3 * kSec);
  EXPECT_EQ(fleet->AuditStaleEntries(), 0u);
}


TEST_F(WatchCacheTest, PodCrashMovesOwnershipToSurvivor) {
  sharding::AutoSharder fast_sharder(&sim_, &net_, {.rebalance_period = 300 * kMs});
  cache::WatchCacheFleet fleet(&sim_, &net_, &fast_sharder, &ws_, &source_, &store_,
                               {.pods = 2});
  store_.Apply(common::IndexKey(5), Mutation::Put("v"));
  sim_.RunUntil(500 * kMs);
  ASSERT_TRUE(fleet.Get(common::IndexKey(5)).ok());

  // Crash the current owner; the sharder health pass reassigns.
  const sim::NodeId victim = *fast_sharder.Owner(common::IndexKey(5));
  net_.SetUp(victim, false);
  sim_.RunUntil(sim_.Now() + 3 * kSec);
  const auto new_owner = fast_sharder.Owner(common::IndexKey(5));
  ASSERT_TRUE(new_owner.has_value());
  EXPECT_NE(*new_owner, victim);
  auto v = fleet.Get(common::IndexKey(5));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v");
  EXPECT_EQ(fleet.AuditStaleEntries(), 0u);
}


TEST_F(WatchCacheTest, ReadYourWritesTokenNeverServesPreWriteState) {
  auto fleet = MakeFleet({.pods = 2});
  store_.Apply(common::IndexKey(11), Mutation::Put("v1"));
  sim_.RunUntil(300 * kMs);

  // A client writes and keeps the commit version as its session token.
  const common::Version token = store_.Apply(common::IndexKey(11), Mutation::Put("v2"));

  // Immediately (events still in flight): the cache either refuses or serves
  // v2 — it NEVER serves v1 to this client.
  auto immediate = fleet->Get(common::IndexKey(11), token);
  if (immediate.ok()) {
    EXPECT_EQ(*immediate, "v2");
  } else {
    EXPECT_EQ(immediate.status().code(), common::StatusCode::kUnavailable);
  }
  // Untokened readers may still see the (bounded-stale) old value meanwhile.
  sim_.RunUntil(sim_.Now() + 1 * kSec);
  auto later = fleet->Get(common::IndexKey(11), token);
  ASSERT_TRUE(later.ok());
  EXPECT_EQ(*later, "v2");
}

TEST_F(WatchCacheTest, ReadAtVersionWaitsForKnowledgeThenServesExactly) {
  for (int i = 0; i < 20; ++i) {
    store_.Apply(common::IndexKey(i), Mutation::Put("base"));
  }
  auto fleet = MakeFleet({.pods = 2});
  sim_.RunUntil(300 * kMs);

  // Transactionally update two keys; ask for a snapshot at that version.
  storage::Transaction txn = store_.Begin();
  txn.Put(common::IndexKey(2), "pair");
  txn.Put(common::IndexKey(15), "pair");
  const common::Version v = *store_.Commit(std::move(txn));

  bool fired = false;
  fleet->ReadAtVersion(KeyRange::All(), v, 2 * kSec,
                       [&](common::Result<WatchCacheFleet::StitchedSnapshot> snap) {
                         fired = true;
                         ASSERT_TRUE(snap.ok());
                         EXPECT_GE(snap->version, v);
                         // Both halves of the transaction visible together.
                         common::Value a;
                         common::Value b;
                         for (const auto& e : snap->entries) {
                           if (e.key == common::IndexKey(2)) {
                             a = e.value;
                           }
                           if (e.key == common::IndexKey(15)) {
                             b = e.value;
                           }
                         }
                         EXPECT_EQ(a, "pair");
                         EXPECT_EQ(b, "pair");
                       });
  EXPECT_FALSE(fired);  // Knowledge cannot cover v synchronously.
  sim_.RunUntil(sim_.Now() + 2 * kSec);
  EXPECT_TRUE(fired);
}

TEST_F(WatchCacheTest, ReadAtVersionTimesOutHonestly) {
  auto fleet = MakeFleet({.pods = 2});
  sim_.RunUntil(300 * kMs);
  bool fired = false;
  // Ask for a version far in the future that no write will ever produce.
  fleet->ReadAtVersion(KeyRange::All(), store_.LatestVersion() + 1000, 200 * kMs,
                       [&](common::Result<WatchCacheFleet::StitchedSnapshot> snap) {
                         fired = true;
                         EXPECT_FALSE(snap.ok());
                         EXPECT_EQ(snap.status().code(), common::StatusCode::kUnavailable);
                       });
  sim_.RunUntil(sim_.Now() + 1 * kSec);
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace cache
