#include "cdc/codec.h"

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cdc {
namespace {

using common::ChangeEvent;
using common::Mutation;
using common::StatusCode;

TEST(CodecTest, PutRoundTrip) {
  ChangeEvent ev{"user/42", Mutation::Put("payload"), 123, true};
  auto decoded = DecodeChangeEvent(EncodeChangeEvent(ev));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, ev);
}

TEST(CodecTest, DeleteRoundTrip) {
  ChangeEvent ev{"k", Mutation::Delete(), 7, false};
  auto decoded = DecodeChangeEvent(EncodeChangeEvent(ev));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, ev);
}

TEST(CodecTest, BinarySafeKeysAndValues) {
  std::string key("a\0b c|d\n", 8);
  std::string value("\x01\x02 \x00|", 5);
  ChangeEvent ev{key, Mutation::Put(value), 99, true};
  auto decoded = DecodeChangeEvent(EncodeChangeEvent(ev));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->key, key);
  EXPECT_EQ(decoded->mutation.value, value);
}

TEST(CodecTest, EmptyKeyAndValue) {
  ChangeEvent ev{"", Mutation::Put(""), 1, true};
  auto decoded = DecodeChangeEvent(EncodeChangeEvent(ev));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, ev);
}

TEST(CodecTest, RejectsGarbage) {
  EXPECT_EQ(DecodeChangeEvent("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeChangeEvent("X 1 1 1 k").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeChangeEvent("P nope").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeChangeEvent("P 5 2 1 k").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeChangeEvent("P 5 1 99 k").status().code(), StatusCode::kInvalidArgument);
}

TEST(CodecTest, RejectsDeleteWithTrailingValue) {
  // "D 5 1 1 kEXTRA": key length 1, but bytes remain after the key.
  EXPECT_EQ(DecodeChangeEvent("D 5 1 1 kEXTRA").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CodecTest, FuzzRoundTrip) {
  common::Rng rng(31337);
  for (int i = 0; i < 500; ++i) {
    std::string key;
    std::string value;
    const std::size_t klen = rng.Below(20);
    const std::size_t vlen = rng.Below(40);
    for (std::size_t c = 0; c < klen; ++c) {
      key.push_back(static_cast<char>(rng.Below(256)));
    }
    for (std::size_t c = 0; c < vlen; ++c) {
      value.push_back(static_cast<char>(rng.Below(256)));
    }
    ChangeEvent ev{key,
                   rng.Bernoulli(0.2) ? Mutation::Delete() : Mutation::Put(value),
                   rng.Next(), rng.Bernoulli(0.5)};
    auto decoded = DecodeChangeEvent(EncodeChangeEvent(ev));
    ASSERT_TRUE(decoded.ok()) << "iteration " << i;
    EXPECT_EQ(*decoded, ev);
  }
}

}  // namespace
}  // namespace cdc
