#include "cdc/feeds.h"

#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cdc/codec.h"
#include "pubsub/consumer.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "watch/watch_system.h"

namespace cdc {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
using common::KeyRange;
using common::Mutation;

TEST(UniformShardsTest, CoversKeySpaceContiguously) {
  auto shards = UniformShards(1000, 4);
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_EQ(shards.front().low, "");
  EXPECT_TRUE(shards.back().unbounded_above());
  for (std::size_t i = 0; i + 1 < shards.size(); ++i) {
    EXPECT_EQ(shards[i].high, shards[i + 1].low);
  }
  // Every IndexKey falls in exactly one shard.
  for (std::uint64_t k = 0; k < 1000; k += 37) {
    int hits = 0;
    for (const auto& s : shards) {
      if (s.Contains(common::IndexKey(k))) {
        ++hits;
      }
    }
    EXPECT_EQ(hits, 1) << k;
  }
}

TEST(UniformShardsTest, SingleShardIsAll) {
  auto shards = UniformShards(100, 1);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0], KeyRange::All());
}

class PubsubFeedTest : public ::testing::Test {
 protected:
  PubsubFeedTest() : net_(&sim_, {.base = 0, .jitter = 0}), broker_(&sim_, &net_) {
    EXPECT_TRUE(broker_.CreateTopic("cdc", {.partitions = 4}).ok());
  }

  sim::Simulator sim_;
  sim::Network net_;
  pubsub::Broker broker_;
  storage::MvccStore store_;
};

TEST_F(PubsubFeedTest, CommitsArriveAsDecodableMessages) {
  CdcPubsubFeed feed(&sim_, &net_, &store_, nullptr, &broker_, "cdc");
  storage::Transaction txn = store_.Begin();
  txn.Put("alpha", "1");
  txn.Delete("beta");
  const common::Version v = *store_.Commit(std::move(txn));
  sim_.RunUntil(100 * kMs);
  EXPECT_EQ(feed.published(), 2u);

  std::vector<common::ChangeEvent> got;
  for (pubsub::PartitionId p = 0; p < 4; ++p) {
    auto batch = broker_.Fetch("cdc", p, 0, 100);
    ASSERT_TRUE(batch.ok());
    for (const auto& m : *batch) {
      auto ev = DecodeChangeEvent(m.message.value);
      ASSERT_TRUE(ev.ok());
      got.push_back(*ev);
    }
  }
  ASSERT_EQ(got.size(), 2u);
  for (const auto& ev : got) {
    EXPECT_EQ(ev.version, v);
  }
}

TEST_F(PubsubFeedTest, BuffersWhileBrokerUnreachableThenRetries) {
  CdcPubsubFeed feed(&sim_, &net_, &store_, nullptr, &broker_, "cdc",
                     {.node = "cdc-node", .retry_period = 20 * kMs});
  net_.SetUp("cdc-node", false);
  store_.Apply("k", Mutation::Put("v"));
  sim_.RunUntil(200 * kMs);
  EXPECT_EQ(feed.published(), 0u);
  EXPECT_EQ(feed.pending(), 1u);
  net_.SetUp("cdc-node", true);
  sim_.RunUntil(400 * kMs);
  EXPECT_EQ(feed.published(), 1u);
  EXPECT_EQ(feed.pending(), 0u);
}

TEST_F(PubsubFeedTest, ViewFilteringHidesPrivateKeys) {
  storage::FilteredView view(&store_, KeyRange{"public/", "public0"});
  CdcPubsubFeed feed(&sim_, &net_, &store_, &view, &broker_, "cdc");
  store_.Apply("public/a", Mutation::Put("1"));
  store_.Apply("secret/b", Mutation::Put("2"));
  sim_.RunUntil(100 * kMs);
  EXPECT_EQ(feed.published(), 1u);
}

class IngesterFeedTest : public ::testing::Test {
 protected:
  IngesterFeedTest()
      : net_(&sim_, {.base = 0, .jitter = 0}),
        ws_(&sim_, &net_, "watch", {.delivery_latency = 1 * kMs, .progress_period = 10 * kMs}) {
  }

  sim::Simulator sim_;
  sim::Network net_;
  storage::MvccStore store_;
  watch::WatchSystem ws_;
};

TEST_F(IngesterFeedTest, EventsReachIngesterPerShard) {
  CdcIngesterFeed feed(&sim_, &store_, nullptr, &ws_,
                       {.shards = UniformShards(100, 2, 2)});
  store_.Apply(common::IndexKey(10, 2), Mutation::Put("lo"));
  store_.Apply(common::IndexKey(90, 2), Mutation::Put("hi"));
  sim_.RunUntil(100 * kMs);
  EXPECT_EQ(feed.appended(), 2u);
  EXPECT_EQ(ws_.MaxIngestedVersion(), store_.LatestVersion());
}

TEST_F(IngesterFeedTest, ProgressAdvancesAllShardFrontiers) {
  CdcIngesterFeed feed(&sim_, &store_, nullptr, &ws_,
                       {.shards = UniformShards(100, 4, 2), .progress_period = 10 * kMs});
  store_.Apply(common::IndexKey(5, 2), Mutation::Put("x"));
  const common::Version v = store_.LatestVersion();
  sim_.RunUntil(200 * kMs);
  EXPECT_EQ(ws_.progress_tracker().FrontierFor(KeyRange::All()), v);
}

TEST_F(IngesterFeedTest, StaggeredShardsDeliverOutOfOrderAcrossRanges) {
  // Shard 0 has lower latency than shard 3; a later commit to shard 0 can
  // arrive before an earlier commit to shard 3 — the cross-range disorder
  // that range-scoped progress exists to describe.
  std::vector<common::Version> arrival_order;
  class Recorder : public watch::Ingester {
   public:
    explicit Recorder(std::vector<common::Version>* order) : order_(order) {}
    void Append(const common::ChangeEvent& ev) override { order_->push_back(ev.version); }
    void Progress(const common::ProgressEvent&) override {}

   private:
    std::vector<common::Version>* order_;
  };
  Recorder recorder(&arrival_order);
  CdcIngesterFeed feed(&sim_, &store_, nullptr, &recorder,
                       {.shards = UniformShards(100, 4, 2),
                        .base_latency = 1 * kMs,
                        .stagger = 10 * kMs,
                        .progress_period = 0});
  const common::Version v_slow =
      store_.Apply(common::IndexKey(99, 2), Mutation::Put("slow-shard"));
  const common::Version v_fast =
      store_.Apply(common::IndexKey(1, 2), Mutation::Put("fast-shard"));
  ASSERT_LT(v_slow, v_fast);
  sim_.RunUntil(200 * kMs);
  ASSERT_EQ(arrival_order.size(), 2u);
  EXPECT_EQ(arrival_order[0], v_fast);  // Out of version order.
  EXPECT_EQ(arrival_order[1], v_slow);
}

TEST_F(IngesterFeedTest, InvisibleCommitsStillAdvanceProgress) {
  storage::FilteredView view(&store_, KeyRange{"public/", "public0"});
  CdcIngesterFeed feed(&sim_, &store_, &view, &ws_, {.progress_period = 10 * kMs});
  store_.Apply("secret/x", Mutation::Put("hidden"));
  const common::Version v = store_.LatestVersion();
  sim_.RunUntil(100 * kMs);
  // No event was delivered, but the frontier covers the hidden commit.
  EXPECT_EQ(ws_.progress_tracker().FrontierFor(KeyRange::All()), v);
  EXPECT_EQ(feed.appended(), 0u);
}

}  // namespace
}  // namespace cdc
