// Arena: the slab bump allocator backing publish-batch staging. The tests pin
// the ownership discipline PublishBatch relies on: views stay valid (and
// stable) until Reset, oversize allocations get dedicated slabs, and a
// steady-state batch loop settles into zero heap growth because Reset retains
// the largest slab.
#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace common {
namespace {

TEST(ArenaTest, AllocationsAreContiguousWithinASlab) {
  Arena arena(1024);
  char* a = arena.Allocate(10);
  char* b = arena.Allocate(20);
  char* c = arena.Allocate(30);
  ASSERT_NE(a, nullptr);
  // Bump allocation: successive claims from one slab are adjacent.
  EXPECT_EQ(b, a + 10);
  EXPECT_EQ(c, b + 20);
  EXPECT_EQ(arena.bytes_allocated(), 60u);
  EXPECT_EQ(arena.slab_count(), 1u);
  EXPECT_EQ(arena.bytes_reserved(), 1024u);
}

TEST(ArenaTest, CopyStringViewsSurviveLaterAllocations) {
  Arena arena(64);  // Tiny slabs force growth mid-test.
  std::vector<std::string_view> views;
  std::vector<std::string> want;
  for (int i = 0; i < 200; ++i) {
    want.push_back("payload-" + std::to_string(i));
    views.push_back(arena.CopyString(want.back()));
  }
  // Growth allocates NEW slabs; it never moves old ones, so every earlier
  // view still reads back its bytes (the property staged batches depend on).
  ASSERT_GT(arena.slab_count(), 1u);
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i], want[i]) << "view " << i;
  }
}

TEST(ArenaTest, OversizeAllocationGetsADedicatedSlab) {
  Arena arena(64);
  arena.Allocate(10);
  const std::string big(1000, 'x');
  const std::string_view view = arena.CopyString(big);
  EXPECT_EQ(view, big);
  EXPECT_EQ(arena.slab_count(), 2u);
  EXPECT_EQ(arena.bytes_reserved(), 64u + 1000u);
  // The oversize slab became the current slab; small claims keep working.
  EXPECT_EQ(arena.CopyString("tail"), "tail");
}

TEST(ArenaTest, EmptyAllocationIsNonNull) {
  Arena arena(64);
  EXPECT_NE(arena.Allocate(0), nullptr);
  const std::string_view empty = arena.CopyString("");
  EXPECT_TRUE(empty.empty());
}

TEST(ArenaTest, ResetRetainsLargestSlabAndRecyclesIt) {
  Arena arena(64);
  arena.Allocate(50);
  arena.CopyString(std::string(500, 'y'));  // Dedicated 500-byte slab.
  arena.Allocate(30);
  ASSERT_GE(arena.slab_count(), 2u);

  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.slab_count(), 1u);
  EXPECT_EQ(arena.bytes_reserved(), 500u);  // The largest slab survived.

  // Steady state: a batch that fits the retained slab allocates no new slabs
  // across Reset cycles — the zero-allocation loop PublishBatch::Clear runs.
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(arena.CopyString("record"), "record");
    }
    EXPECT_EQ(arena.slab_count(), 1u) << "cycle " << cycle;
    EXPECT_EQ(arena.bytes_reserved(), 500u) << "cycle " << cycle;
    arena.Reset();
  }
}

TEST(ArenaTest, ZeroSlabBytesIsClampedNotUb) {
  Arena arena(0);
  EXPECT_EQ(arena.CopyString("ab"), "ab");  // Oversize path from byte one.
  EXPECT_EQ(arena.bytes_allocated(), 2u);
}

}  // namespace
}  // namespace common
