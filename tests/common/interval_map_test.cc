#include "common/interval_map.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/types.h"

namespace common {
namespace {

TEST(IntervalMapTest, DefaultCoversEverything) {
  IntervalMap<int> m(7);
  EXPECT_EQ(m.Get(""), 7);
  EXPECT_EQ(m.Get("zzz"), 7);
  EXPECT_EQ(m.segment_count(), 1u);
}

TEST(IntervalMapTest, AssignMiddleRange) {
  IntervalMap<int> m(0);
  m.Assign(KeyRange{"c", "f"}, 1);
  EXPECT_EQ(m.Get("b"), 0);
  EXPECT_EQ(m.Get("c"), 1);
  EXPECT_EQ(m.Get("e"), 1);
  EXPECT_EQ(m.Get("f"), 0);
  EXPECT_EQ(m.segment_count(), 3u);
}

TEST(IntervalMapTest, AssignUnboundedTail) {
  IntervalMap<int> m(0);
  m.Assign(KeyRange{"m", ""}, 5);
  EXPECT_EQ(m.Get("a"), 0);
  EXPECT_EQ(m.Get("m"), 5);
  EXPECT_EQ(m.Get("zzzz"), 5);
}

TEST(IntervalMapTest, AssignFromKeySpaceStart) {
  IntervalMap<int> m(0);
  m.Assign(KeyRange{"", "g"}, 3);
  EXPECT_EQ(m.Get(""), 3);
  EXPECT_EQ(m.Get("f"), 3);
  EXPECT_EQ(m.Get("g"), 0);
}

TEST(IntervalMapTest, OverlappingAssignsSplitCorrectly) {
  IntervalMap<int> m(0);
  m.Assign(KeyRange{"b", "h"}, 1);
  m.Assign(KeyRange{"e", "k"}, 2);
  EXPECT_EQ(m.Get("a"), 0);
  EXPECT_EQ(m.Get("b"), 1);
  EXPECT_EQ(m.Get("d"), 1);
  EXPECT_EQ(m.Get("e"), 2);
  EXPECT_EQ(m.Get("j"), 2);
  EXPECT_EQ(m.Get("k"), 0);
}

TEST(IntervalMapTest, CoalescesAdjacentEqualValues) {
  IntervalMap<int> m(0);
  m.Assign(KeyRange{"b", "d"}, 1);
  m.Assign(KeyRange{"d", "f"}, 1);
  EXPECT_EQ(m.segment_count(), 3u);  // [ ,b)=0 [b,f)=1 [f, )=0.
  m.Assign(KeyRange{"b", "f"}, 0);
  EXPECT_EQ(m.segment_count(), 1u);  // Everything back to default.
}

TEST(IntervalMapTest, EmptyRangeAssignIsNoOp) {
  IntervalMap<int> m(0);
  m.Assign(KeyRange{"c", "c"}, 9);
  EXPECT_EQ(m.Get("c"), 0);
  EXPECT_EQ(m.segment_count(), 1u);
}

TEST(IntervalMapTest, TransformAppliesToOverlapOnly) {
  IntervalMap<int> m(10);
  m.Assign(KeyRange{"d", "g"}, 20);
  m.Transform(KeyRange{"a", "e"}, [](const int& v) { return v + 1; });
  EXPECT_EQ(m.Get(""), 10);   // Before "a": untouched.
  EXPECT_EQ(m.Get("a"), 11);  // [a,d): bumped default.
  EXPECT_EQ(m.Get("d"), 21);  // [d,e): bumped assigned value.
  EXPECT_EQ(m.Get("e"), 20);  // [e,g): untouched.
  EXPECT_EQ(m.Get("g"), 10);
}

TEST(IntervalMapTest, VisitClipsToRange) {
  IntervalMap<int> m(0);
  m.Assign(KeyRange{"c", "f"}, 1);
  m.Assign(KeyRange{"f", "j"}, 2);
  std::vector<std::pair<KeyRange, int>> seen;
  m.Visit(KeyRange{"d", "h"},
          [&seen](const KeyRange& r, const int& v) { seen.emplace_back(r, v); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, (KeyRange{"d", "f"}));
  EXPECT_EQ(seen[0].second, 1);
  EXPECT_EQ(seen[1].first, (KeyRange{"f", "h"}));
  EXPECT_EQ(seen[1].second, 2);
}

TEST(IntervalMapTest, VisitFullRangeSeesAllSegments) {
  IntervalMap<int> m(0);
  m.Assign(KeyRange{"c", "f"}, 1);
  int count = 0;
  m.Visit(KeyRange::All(), [&count](const KeyRange&, const int&) { ++count; });
  EXPECT_EQ(count, 3);
}

TEST(IntervalMapTest, SegmentsAreContiguousAndOrdered) {
  IntervalMap<int> m(0);
  m.Assign(KeyRange{"b", "e"}, 1);
  m.Assign(KeyRange{"h", "m"}, 2);
  auto segs = m.Segments();
  ASSERT_GE(segs.size(), 2u);
  EXPECT_EQ(segs.front().range.low, "");
  EXPECT_TRUE(segs.back().range.unbounded_above());
  for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
    EXPECT_EQ(segs[i].range.high, segs[i + 1].range.low);
  }
}

TEST(IntervalMapTest, FoldComputesMin) {
  IntervalMap<Version> m(100);
  m.Assign(KeyRange{"c", "f"}, 40);
  m.Assign(KeyRange{"f", "j"}, 60);
  const Version min_all = m.Fold<Version>(
      KeyRange::All(), kMaxVersion,
      [](Version acc, const KeyRange&, const Version& v) { return std::min(acc, v); });
  EXPECT_EQ(min_all, 40u);
  const Version min_tail = m.Fold<Version>(
      KeyRange{"g", ""}, kMaxVersion,
      [](Version acc, const KeyRange&, const Version& v) { return std::min(acc, v); });
  EXPECT_EQ(min_tail, 60u);
}

// Property test: a random sequence of Assigns agrees with a brute-force model
// evaluated at probe keys, and segments always tile the key space.
class IntervalMapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalMapPropertyTest, MatchesBruteForceModel) {
  Rng rng(GetParam());
  IntervalMap<int> m(-1);

  struct Op {
    KeyRange range;
    int value;
  };
  std::vector<Op> ops;

  auto random_key = [&rng]() { return IndexKey(rng.Below(100), 3); };

  for (int step = 0; step < 200; ++step) {
    Key a = random_key();
    Key b = rng.Bernoulli(0.1) ? Key() : random_key();
    if (!b.empty() && b < a) {
      std::swap(a, b);
    }
    Op op{KeyRange{a, b}, static_cast<int>(rng.Below(5))};
    m.Assign(op.range, op.value);
    ops.push_back(op);

    // Model lookup: last op whose range contains the key, else default.
    auto model = [&ops](const Key& k) {
      int v = -1;
      for (const Op& o : ops) {
        if (o.range.Contains(k)) {
          v = o.value;
        }
      }
      return v;
    };

    for (int probe = 0; probe < 10; ++probe) {
      const Key k = IndexKey(rng.Below(100), 3);
      EXPECT_EQ(m.Get(k), model(k)) << "key " << k << " at step " << step;
    }

    // Structural invariants: segments tile the space, no adjacent equal pair.
    auto segs = m.Segments();
    EXPECT_EQ(segs.front().range.low, "");
    EXPECT_TRUE(segs.back().range.unbounded_above());
    for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
      EXPECT_EQ(segs[i].range.high, segs[i + 1].range.low);
      EXPECT_NE(segs[i].value, segs[i + 1].value) << "uncoalesced at " << segs[i].range.high;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalMapPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace common
