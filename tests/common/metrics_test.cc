#include "common/metrics.h"

#include <gtest/gtest.h>

namespace common {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(5);
  EXPECT_EQ(c.value(), 6);
  c.Increment(-2);
  EXPECT_EQ(c.value(), 4);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.51);
  EXPECT_NEAR(h.Percentile(99), 99, 1.01);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
}

TEST(HistogramTest, PercentileInterpolates) {
  Histogram h;
  h.Record(0);
  h.Record(10);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 5.0);
}

TEST(MetricsRegistryTest, NamedAccessCreatesOnce) {
  MetricsRegistry reg;
  reg.counter("a").Increment(3);
  reg.counter("a").Increment(4);
  reg.histogram("lat").Record(1.5);
  EXPECT_EQ(reg.counter("a").value(), 7);
  EXPECT_EQ(reg.histogram("lat").count(), 1u);
  EXPECT_EQ(reg.counters().size(), 1u);
  reg.Reset();
  EXPECT_EQ(reg.counters().size(), 0u);
}

}  // namespace
}  // namespace common
