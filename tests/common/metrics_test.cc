#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace common {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(5);
  EXPECT_EQ(c.value(), 6);
  c.Increment(-2);
  EXPECT_EQ(c.value(), 4);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.51);
  EXPECT_NEAR(h.Percentile(99), 99, 1.01);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
}

TEST(HistogramTest, PercentileInterpolates) {
  Histogram h;
  h.Record(0);
  h.Record(10);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 5.0);
}

TEST(HistogramTest, ReservoirIsBoundedButCountsAreExact) {
  Histogram h(128);
  for (int i = 0; i < 100000; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.count(), 100000u);
  EXPECT_DOUBLE_EQ(h.Max(), 99999.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 49999.5);
  EXPECT_EQ(h.retained_samples(), 128u);
  // The reservoir is an unbiased sample: the median estimate lands well
  // within the bulk of the uniform distribution.
  EXPECT_GT(h.Percentile(50), 20000.0);
  EXPECT_LT(h.Percentile(50), 80000.0);
}

TEST(HistogramTest, ExactBelowReservoirBound) {
  Histogram h(256);
  for (int i = 1; i <= 200; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.retained_samples(), 200u);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 200.0);
  EXPECT_NEAR(h.Percentile(50), 100.5, 0.51);
}

TEST(HistogramTest, DeterministicAcrossIdenticalRuns) {
  Histogram a(64);
  Histogram b(64);
  for (int i = 0; i < 10000; ++i) {
    a.Record(i * 3 % 977);
    b.Record(i * 3 % 977);
  }
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), b.Percentile(p)) << "p" << p;
  }
  a.Reset();
  for (int i = 0; i < 10000; ++i) {
    a.Record(i * 3 % 977);
  }
  // Reset restarts the sampling stream, so the rerun reproduces exactly.
  EXPECT_DOUBLE_EQ(a.Percentile(99), b.Percentile(99));
}

TEST(HistogramTest, ConcurrentRecordKeepsExactCount) {
  Histogram h(512);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(1.0);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.count(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.Sum(), kThreads * kPerThread * 1.0);
  EXPECT_EQ(h.retained_samples(), 512u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, ConcurrentLookupAndRecord) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.counter("shared").Increment();
        reg.counter("shard" + std::to_string(t)).Increment();
        reg.histogram("lat").Record(i);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(reg.counter("shared").value(), kThreads * kPerThread);
  EXPECT_EQ(reg.histogram("lat").count(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("shard" + std::to_string(t)).value(), kPerThread);
  }
}

TEST(MetricsRegistryTest, NamedAccessCreatesOnce) {
  MetricsRegistry reg;
  reg.counter("a").Increment(3);
  reg.counter("a").Increment(4);
  reg.histogram("lat").Record(1.5);
  EXPECT_EQ(reg.counter("a").value(), 7);
  EXPECT_EQ(reg.histogram("lat").count(), 1u);
  EXPECT_EQ(reg.counters().size(), 1u);
  reg.Reset();
  EXPECT_EQ(reg.counters().size(), 0u);
}

}  // namespace
}  // namespace common
