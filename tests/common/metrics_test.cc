#include "common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace common {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(5);
  EXPECT_EQ(c.value(), 6);
  c.Increment(-2);
  EXPECT_EQ(c.value(), 4);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.51);
  EXPECT_NEAR(h.Percentile(99), 99, 1.01);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
}

TEST(HistogramTest, PercentileInterpolates) {
  Histogram h;
  h.Record(0);
  h.Record(10);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 5.0);
}

TEST(HistogramTest, ReservoirIsBoundedButCountsAreExact) {
  Histogram h(128);
  for (int i = 0; i < 100000; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.count(), 100000u);
  EXPECT_DOUBLE_EQ(h.Max(), 99999.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 49999.5);
  EXPECT_EQ(h.retained_samples(), 128u);
  // The reservoir is an unbiased sample: the median estimate lands well
  // within the bulk of the uniform distribution.
  EXPECT_GT(h.Percentile(50), 20000.0);
  EXPECT_LT(h.Percentile(50), 80000.0);
}

TEST(HistogramTest, ExactBelowReservoirBound) {
  Histogram h(256);
  for (int i = 1; i <= 200; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.retained_samples(), 200u);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 200.0);
  EXPECT_NEAR(h.Percentile(50), 100.5, 0.51);
}

TEST(HistogramTest, DeterministicAcrossIdenticalRuns) {
  Histogram a(64);
  Histogram b(64);
  for (int i = 0; i < 10000; ++i) {
    a.Record(i * 3 % 977);
    b.Record(i * 3 % 977);
  }
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), b.Percentile(p)) << "p" << p;
  }
  a.Reset();
  for (int i = 0; i < 10000; ++i) {
    a.Record(i * 3 % 977);
  }
  // Reset restarts the sampling stream, so the rerun reproduces exactly.
  EXPECT_DOUBLE_EQ(a.Percentile(99), b.Percentile(99));
}

TEST(HistogramTest, ConcurrentRecordKeepsExactCount) {
  Histogram h(512);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(1.0);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.count(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.Sum(), kThreads * kPerThread * 1.0);
  EXPECT_EQ(h.retained_samples(), 512u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, ConcurrentLookupAndRecord) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.counter("shared").Increment();
        reg.counter("shard" + std::to_string(t)).Increment();
        reg.histogram("lat").Record(i);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(reg.counter("shared").value(), kThreads * kPerThread);
  EXPECT_EQ(reg.histogram("lat").count(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("shard" + std::to_string(t)).value(), kPerThread);
  }
}

// Regression (ISSUE 10 satellite): cross-shard percentiles must come from the
// merged reservoirs, not from averaging per-shard percentiles. Two shards
// with very different counts and disjoint ranges make the difference stark:
// shard A records 9900 samples near 1ms, shard B records 100 samples near
// 100ms. The pooled p50 is ~1ms (the big shard dominates); the average of the
// two per-shard p50s is ~50ms — off by 50x. Before MergedHistogram existed,
// the only aggregation available was exactly that wrong average.
TEST(MergedHistogramTest, PercentilesComeFromMergedReservoirsNotAverages) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 9900; ++i) {
    a.Record(1000.0 + (i % 10));  // ~1ms in us.
  }
  for (int i = 0; i < 100; ++i) {
    b.Record(100000.0 + (i % 10));  // ~100ms in us.
  }
  MergedHistogram merged;
  merged.Add(a.Snapshot());
  merged.Add(b.Snapshot());
  EXPECT_EQ(merged.count(), 10000u);
  EXPECT_DOUBLE_EQ(merged.Sum(), a.Sum() + b.Sum());
  EXPECT_DOUBLE_EQ(merged.Max(), b.Max());

  const double averaged_p50 = (a.Percentile(50) + b.Percentile(50)) / 2.0;
  // The pooled median sits in the 1ms cluster: 99% of all samples are there.
  EXPECT_LT(merged.Percentile(50), 2000.0);
  EXPECT_GT(averaged_p50, 50000.0);  // The shortcut this test outlaws.
  // The pooled p99.5 must see the slow shard's cluster.
  EXPECT_GT(merged.Percentile(99.5), 90000.0);
}

// Unequal reservoir representation: a shard past its reservoir bound carries
// more recorded values per retained sample. The merge must weight by
// count/retained, or the small shard's samples are overcounted.
TEST(MergedHistogramTest, WeightsShardsByCountPerRetainedSample) {
  Histogram big(/*reservoir_size=*/64);
  Histogram small(/*reservoir_size=*/64);
  for (int i = 0; i < 6400; ++i) {
    big.Record(10.0);  // 6400 recorded, 64 retained: weight 100 each.
  }
  for (int i = 0; i < 64; ++i) {
    small.Record(1000.0);  // 64 recorded, 64 retained: weight 1 each.
  }
  MergedHistogram merged;
  merged.Add(big.Snapshot());
  merged.Add(small.Snapshot());
  // 6400 of 6464 pooled values are 10.0 — p90 must be 10, not 1000. An
  // unweighted concatenation would put the boundary at 50/50 and fail.
  EXPECT_DOUBLE_EQ(merged.Percentile(90), 10.0);
  EXPECT_DOUBLE_EQ(merged.Percentile(99.5), 1000.0);
}

// Regression (ISSUE 10 satellite, TSan-covered): a snapshot racing concurrent
// records must be internally consistent — the reservoir, count, sum, and max
// all copied under one lock acquisition. Pre-fix there was no Snapshot();
// readers stitched count() + Percentile() + retained_samples() together from
// separate lock acquisitions, and a record landing between two of those calls
// produced torn aggregates (a sample counted but invisible, or double-seen by
// a merge — the double-count class). The invariants below catch any tear.
TEST(MetricsRegistryTest, SnapshotRacingRecordsIsConsistent) {
  MetricsRegistry reg;
  constexpr int kWriters = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&reg, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Every sample is 1.0 so `sum == count` is an exact invariant any
        // torn read would break.
        reg.histogram("shard" + std::to_string(t)).Record(1.0);
      }
    });
  }
  std::thread reader([&reg, &stop] {
    std::uint64_t last_total = 0;
    while (!stop.load(std::memory_order_acquire)) {
      MergedHistogram merged;
      std::uint64_t total = 0;
      for (auto& [name, snap] : reg.SnapshotHistograms("shard")) {
        // Per-snapshot consistency: retained == min(count, reservoir) and
        // the exact stats agree with each other.
        EXPECT_EQ(snap.samples.size(),
                  std::min<std::uint64_t>(snap.count, Histogram::kDefaultReservoirSize));
        EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(snap.count));
        total += snap.count;
        merged.Add(snap);
      }
      EXPECT_EQ(merged.count(), total);
      // No double-count: totals only grow, and never past what was written.
      EXPECT_GE(total, last_total);
      EXPECT_LE(total, static_cast<std::uint64_t>(kWriters) * kPerThread);
      last_total = total;
    }
  });
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  MergedHistogram final_merge;
  for (auto& [name, snap] : reg.SnapshotHistograms("shard")) {
    final_merge.Add(snap);
  }
  EXPECT_EQ(final_merge.count(), static_cast<std::uint64_t>(kWriters) * kPerThread);
  EXPECT_DOUBLE_EQ(final_merge.Percentile(99), 1.0);
}

// SnapshotHistograms holds the registry lock across the walk, so a racing
// first-touch insert (which rebalances the map) cannot invalidate the
// iteration — the race histograms() has by contract. TSan-covered.
TEST(MetricsRegistryTest, SnapshotRacesInsertSafely) {
  MetricsRegistry reg;
  std::atomic<bool> stop{false};
  std::thread inserter([&reg, &stop] {
    for (int i = 0; i < 5000 && !stop.load(std::memory_order_acquire); ++i) {
      reg.histogram("h" + std::to_string(i)).Record(static_cast<double>(i));
    }
  });
  for (int i = 0; i < 200; ++i) {
    auto snaps = reg.SnapshotHistograms();
    for (auto& [name, snap] : snaps) {
      // A histogram can be visible before its first Record lands (creation
      // and recording are separate steps on the inserter) — but never with
      // a torn count, and never more than the one record made.
      EXPECT_LE(snap.count, 1u);
      EXPECT_EQ(snap.samples.size(), snap.count);
    }
  }
  stop.store(true, std::memory_order_release);
  inserter.join();
}

TEST(MetricsRegistryTest, NamedAccessCreatesOnce) {
  MetricsRegistry reg;
  reg.counter("a").Increment(3);
  reg.counter("a").Increment(4);
  reg.histogram("lat").Record(1.5);
  EXPECT_EQ(reg.counter("a").value(), 7);
  EXPECT_EQ(reg.histogram("lat").count(), 1u);
  EXPECT_EQ(reg.counters().size(), 1u);
  reg.Reset();
  EXPECT_EQ(reg.counters().size(), 0u);
}

}  // namespace
}  // namespace common
