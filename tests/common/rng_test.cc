#include "common/rng.h"

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace common {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) {
      ++hits;
    }
  }
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(50.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 50.0, 1.5);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(19);
  const std::uint64_t n = 1000;
  int low_rank = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t idx = rng.Zipf(n, 0.99);
    EXPECT_LT(idx, n);
    if (idx < 10) {
      ++low_rank;
    }
  }
  // With theta ~1, the top 1% of ranks should absorb far more than 1% of
  // draws.
  EXPECT_GT(low_rank, draws / 20);
}

TEST(RngTest, ZipfThetaZeroIsUniform) {
  Rng rng(21);
  const std::uint64_t n = 10;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[rng.Zipf(n, 0.0)];
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i], 5000, 450) << "bucket " << i;
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // The child should not replay the parent's output.
  Rng parent_copy(23);
  (void)parent_copy.Next();  // Fork consumed one draw.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.Next() == parent_copy.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(IndexKeyTest, FixedWidthAndOrdered) {
  EXPECT_EQ(IndexKey(0), "k00000000");
  EXPECT_EQ(IndexKey(1234), "k00001234");
  EXPECT_EQ(IndexKey(7, 3), "k007");
  EXPECT_LT(IndexKey(99), IndexKey(100));  // Lexicographic == numeric.
  EXPECT_LT(IndexKey(999), IndexKey(10000));
}

}  // namespace
}  // namespace common
