#include "common/status.h"

#include <string>

#include <gtest/gtest.h>

namespace common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCodesAndMessages) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Aborted().code(), StatusCode::kAborted);
  EXPECT_EQ(Status::OutOfRange().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unavailable().code(), StatusCode::kUnavailable);
  Status s = Status::InvalidArgument("bad key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad key");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad key");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Aborted());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailsThrough() {
  RETURN_IF_ERROR(Status::Aborted("inner"));
  return Status::Ok();
}

Status Passes() {
  RETURN_IF_ERROR(Status::Ok());
  return Status::Internal("reached end");
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kAborted);
  EXPECT_EQ(Passes().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace common
