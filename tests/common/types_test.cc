#include "common/types.h"

#include <gtest/gtest.h>

namespace common {
namespace {

TEST(KeyRangeTest, ContainsHalfOpen) {
  KeyRange r{"b", "d"};
  EXPECT_FALSE(r.Contains("a"));
  EXPECT_TRUE(r.Contains("b"));
  EXPECT_TRUE(r.Contains("c"));
  EXPECT_TRUE(r.Contains("czzz"));
  EXPECT_FALSE(r.Contains("d"));
  EXPECT_FALSE(r.Contains("e"));
}

TEST(KeyRangeTest, AllContainsEverything) {
  KeyRange all = KeyRange::All();
  EXPECT_TRUE(all.Contains(""));
  EXPECT_TRUE(all.Contains("anything"));
  EXPECT_TRUE(all.unbounded_above());
  EXPECT_FALSE(all.Empty());
}

TEST(KeyRangeTest, SingleContainsExactlyOneKey) {
  KeyRange r = KeyRange::Single("k");
  EXPECT_TRUE(r.Contains("k"));
  EXPECT_FALSE(r.Contains("j"));
  EXPECT_FALSE(r.Contains("k0"));
  EXPECT_FALSE(r.Contains("l"));
  // The only key between "k" and "k\0" is "k" itself.
  EXPECT_TRUE(r.Contains(std::string("k")));
}

TEST(KeyRangeTest, EmptyRanges) {
  EXPECT_TRUE((KeyRange{"b", "b"}.Empty()));
  EXPECT_TRUE((KeyRange{"c", "b"}.Empty()));
  EXPECT_FALSE((KeyRange{"b", "c"}.Empty()));
  EXPECT_FALSE((KeyRange{"b", ""}.Empty()));  // Unbounded above.
}

TEST(KeyRangeTest, UnboundedAboveContainsLargeKeys) {
  KeyRange r{"m", ""};
  EXPECT_TRUE(r.Contains("m"));
  EXPECT_TRUE(r.Contains("zzzzzz"));
  EXPECT_FALSE(r.Contains("a"));
}

TEST(KeyRangeTest, Overlaps) {
  KeyRange ab{"a", "b"};
  KeyRange bc{"b", "c"};
  KeyRange ac{"a", "c"};
  KeyRange cd{"c", "d"};
  EXPECT_FALSE(ab.Overlaps(bc));  // Half-open: share no key.
  EXPECT_TRUE(ab.Overlaps(ac));
  EXPECT_TRUE(ac.Overlaps(bc));
  EXPECT_FALSE(ab.Overlaps(cd));
  EXPECT_TRUE(KeyRange::All().Overlaps(ab));
  EXPECT_FALSE((KeyRange{"a", "a"}).Overlaps(ab));  // Empty never overlaps.
}

TEST(KeyRangeTest, OverlapsUnbounded) {
  KeyRange tail{"m", ""};
  EXPECT_TRUE(tail.Overlaps(KeyRange{"z", ""}));
  EXPECT_TRUE(tail.Overlaps(KeyRange{"a", "n"}));
  EXPECT_FALSE(tail.Overlaps(KeyRange{"a", "m"}));
}

TEST(KeyRangeTest, Covers) {
  KeyRange outer{"b", "y"};
  EXPECT_TRUE(outer.Covers(KeyRange{"b", "y"}));
  EXPECT_TRUE(outer.Covers(KeyRange{"c", "d"}));
  EXPECT_FALSE(outer.Covers(KeyRange{"a", "c"}));
  EXPECT_FALSE(outer.Covers(KeyRange{"x", "z"}));
  EXPECT_FALSE(outer.Covers(KeyRange{"x", ""}));
  EXPECT_TRUE(KeyRange::All().Covers(KeyRange{"x", ""}));
  EXPECT_TRUE(outer.Covers(KeyRange{"q", "q"}));  // Empty range always covered.
}

TEST(KeyRangeTest, Intersect) {
  KeyRange a{"b", "m"};
  KeyRange b{"h", "z"};
  KeyRange i = a.Intersect(b);
  EXPECT_EQ(i.low, "h");
  EXPECT_EQ(i.high, "m");

  KeyRange disjoint = a.Intersect(KeyRange{"n", "z"});
  EXPECT_TRUE(disjoint.Empty());

  KeyRange with_unbounded = a.Intersect(KeyRange{"c", ""});
  EXPECT_EQ(with_unbounded.low, "c");
  EXPECT_EQ(with_unbounded.high, "m");

  KeyRange both_unbounded = KeyRange{"c", ""}.Intersect(KeyRange{"e", ""});
  EXPECT_EQ(both_unbounded.low, "e");
  EXPECT_TRUE(both_unbounded.unbounded_above());
}

TEST(MutationTest, FactoryFunctions) {
  Mutation put = Mutation::Put("v1");
  EXPECT_EQ(put.kind, MutationKind::kPut);
  EXPECT_EQ(put.value, "v1");
  Mutation del = Mutation::Delete();
  EXPECT_EQ(del.kind, MutationKind::kDelete);
}

TEST(ChangeEventTest, Equality) {
  ChangeEvent a{"k", Mutation::Put("v"), 7, true};
  ChangeEvent b{"k", Mutation::Put("v"), 7, true};
  ChangeEvent c{"k", Mutation::Put("v"), 8, true};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace common
