// Chaos integration tests: the paper's end-to-end claim, adversarially.
//
// The promise of the storage+watch architecture (§4.4) is that NO failure of
// the notification plane can silently lose data: watchers converge to the
// authoritative store after any combination of watcher crashes, watch-system
// soft-state wipes, network partitions, and CDC lag — because every gap is
// either replayed or surfaced as a resync against the store.
//
// Each test drives a full stack (MvccStore -> sharded CdcIngesterFeed ->
// WatchSystem [-> WatchProxy] -> MaterializedRange fleet) under a seeded
// random failure schedule, then quiesces and requires BYTE-EXACT convergence
// of every watcher with the store.
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cdc/feeds.h"
#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/materialized.h"
#include "watch/proxy.h"
#include "watch/snapshot_source.h"
#include "watch/watch_system.h"

namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;
constexpr std::uint64_t kKeys = 150;

// Compares a watcher's materialization to the store, byte for byte.
void ExpectConverged(const watch::MaterializedRange& mr, const storage::MvccStore& store,
                     const std::string& who) {
  ASSERT_TRUE(mr.ready()) << who;
  auto truth = store.Scan(mr.range(), store.LatestVersion());
  ASSERT_TRUE(truth.ok()) << who;
  auto mine = mr.LatestScan(mr.range());
  ASSERT_EQ(mine.size(), truth->size()) << who;
  for (std::size_t i = 0; i < mine.size(); ++i) {
    EXPECT_EQ(mine[i].key, (*truth)[i].key) << who;
    EXPECT_EQ(mine[i].value, (*truth)[i].value) << who;
  }
}

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosTest, WatcherFleetSurvivesArbitraryFailures) {
  sim::Simulator sim(GetParam());
  sim::Network net(&sim, {.base = 200, .jitter = 100});
  storage::MvccStore store("source");
  // A deliberately small window so crashes regularly exceed it (forcing the
  // resync path, not just session replay).
  watch::WatchSystem ws(&sim, &net, "snappy",
                        {.window = {.max_events = 300},
                         .delivery_latency = 1 * kMs,
                         .progress_period = 10 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &store, nullptr, &ws,
                            {.shards = cdc::UniformShards(kKeys, 3, 4),
                             .base_latency = 1 * kMs,
                             .stagger = 2 * kMs,
                             .progress_period = 10 * kMs});
  watch::StoreSnapshotSource source(&store);

  // 4 watchers: 3 sharded + 1 full-range.
  std::vector<std::unique_ptr<watch::MaterializedRange>> fleet;
  std::vector<sim::NodeId> nodes;
  auto shards = cdc::UniformShards(kKeys, 3, 4);
  shards.push_back(common::KeyRange::All());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const sim::NodeId node = "watcher-" + std::to_string(i);
    net.AddNode(node);
    nodes.push_back(node);
    auto mr = std::make_unique<watch::MaterializedRange>(
        &sim, &ws, &source, shards[i],
        watch::MaterializedOptions{.resync_delay = 5 * kMs,
                                   .session_check_period = 50 * kMs,
                                   .node = node,
                                   .net = &net});
    mr->Start();
    fleet.push_back(std::move(mr));
  }
  sim.RunUntil(100 * kMs);

  common::Rng rng(GetParam() * 7919 + 3);
  common::Rng fail_rng(GetParam() * 104729 + 11);

  // Writer: continuous commits, some transactional, some deletes.
  sim::PeriodicTask writer(&sim, 3 * kMs, [&] {
    storage::Transaction txn = store.Begin();
    const int writes = 1 + static_cast<int>(rng.Below(3));
    for (int w = 0; w < writes; ++w) {
      const common::Key key = common::IndexKey(rng.Below(kKeys), 4);
      if (rng.Bernoulli(0.15)) {
        txn.Delete(key);
      } else {
        txn.Put(key, "v" + std::to_string(sim.Now()));
      }
    }
    ASSERT_TRUE(store.Commit(std::move(txn)).ok());
  });

  // Failure schedule: every 300ms, something bad happens.
  sim::PeriodicTask chaos(&sim, 300 * kMs, [&] {
    switch (fail_rng.Below(4)) {
      case 0: {  // Watcher node outage (500ms - 2s).
        const auto victim = fail_rng.Below(nodes.size());
        if (net.IsUp(nodes[victim])) {
          net.SetUp(nodes[victim], false);
          sim.After(500 * kMs + fail_rng.Below(1500) * kMs,
                    [&net, node = nodes[victim]] { net.SetUp(node, true); });
        }
        break;
      }
      case 1:  // The watch system loses all soft state.
        ws.CrashSoftState();
        break;
      case 2: {  // Network partition between the watch system and a watcher.
        const auto victim = fail_rng.Below(nodes.size());
        net.Partition("snappy", nodes[victim]);
        sim.After(400 * kMs + fail_rng.Below(800) * kMs,
                  [&net, node = nodes[victim]] { net.Heal("snappy", node); });
        break;
      }
      case 3: {  // Watcher process crash: local data lost entirely.
        const auto victim = fail_rng.Below(fleet.size());
        fleet[victim]->CrashLocalState();
        sim.After(200 * kMs, [&fleet, victim] { fleet[victim]->Start(); });
        break;
      }
    }
  });

  sim.RunUntil(10 * kSec);
  writer.Stop();
  chaos.Stop();
  // Heal everything and quiesce.
  for (const auto& node : nodes) {
    net.SetUp(node, true);
    net.Heal("snappy", node);
  }
  sim.RunUntil(20 * kSec);

  for (std::size_t i = 0; i < fleet.size(); ++i) {
    ExpectConverged(*fleet[i], store, "watcher-" + std::to_string(i));
  }
}

TEST_P(ChaosTest, ProxyTierSurvivesArbitraryFailures) {
  sim::Simulator sim(GetParam() + 1000);
  sim::Network net(&sim, {.base = 200, .jitter = 100});
  storage::MvccStore store("source");
  watch::WatchSystem root(&sim, &net, "root",
                          {.window = {.max_events = 300},
                           .delivery_latency = 1 * kMs,
                           .progress_period = 10 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &store, nullptr, &root, {.progress_period = 10 * kMs});
  watch::StoreSnapshotSource source(&store);

  // Two proxies, two watchers behind each.
  watch::WatchProxy proxy_a(&sim, &net, &root, common::KeyRange::All(), "proxy-a",
                            {.system = {.window = {.max_events = 300},
                                        .delivery_latency = 1 * kMs,
                                        .progress_period = 10 * kMs}});
  watch::WatchProxy proxy_b(&sim, &net, &root, common::KeyRange::All(), "proxy-b",
                            {.system = {.window = {.max_events = 300},
                                        .delivery_latency = 1 * kMs,
                                        .progress_period = 10 * kMs}});
  std::vector<std::unique_ptr<watch::MaterializedRange>> fleet;
  for (int i = 0; i < 4; ++i) {
    const sim::NodeId node = "watcher-" + std::to_string(i);
    net.AddNode(node);
    auto mr = std::make_unique<watch::MaterializedRange>(
        &sim, i < 2 ? static_cast<watch::NodeAwareWatchable*>(&proxy_a) : &proxy_b, &source,
        common::KeyRange::All(),
        watch::MaterializedOptions{.resync_delay = 5 * kMs,
                                   .session_check_period = 50 * kMs,
                                   .node = node,
                                   .net = &net});
    mr->Start();
    fleet.push_back(std::move(mr));
  }
  sim.RunUntil(100 * kMs);

  common::Rng rng(GetParam() * 31 + 17);
  common::Rng fail_rng(GetParam() * 173 + 29);
  sim::PeriodicTask writer(&sim, 3 * kMs, [&] {
    store.Apply(common::IndexKey(rng.Below(kKeys), 4),
                rng.Bernoulli(0.15) ? common::Mutation::Delete()
                                    : common::Mutation::Put("v" + std::to_string(sim.Now())));
  });
  sim::PeriodicTask chaos(&sim, 400 * kMs, [&] {
    switch (fail_rng.Below(3)) {
      case 0:
        root.CrashSoftState();
        break;
      case 1: {
        const sim::NodeId proxy = fail_rng.Bernoulli(0.5) ? "proxy-a" : "proxy-b";
        net.SetUp(proxy, false);
        sim.After(600 * kMs, [&net, proxy] { net.SetUp(proxy, true); });
        break;
      }
      case 2: {
        const auto victim = fail_rng.Below(fleet.size());
        fleet[victim]->CrashLocalState();
        sim.After(200 * kMs, [&fleet, victim] { fleet[victim]->Start(); });
        break;
      }
    }
  });

  sim.RunUntil(8 * kSec);
  writer.Stop();
  chaos.Stop();
  net.SetUp("proxy-a", true);
  net.SetUp("proxy-b", true);
  sim.RunUntil(20 * kSec);

  for (std::size_t i = 0; i < fleet.size(); ++i) {
    ExpectConverged(*fleet[i], store, "proxied-watcher-" + std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
