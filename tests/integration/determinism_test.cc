// The harness's headline methodological property: EVERY experiment is
// exactly reproducible from its seed. Two identical full-stack runs must
// produce byte-identical metrics; a different seed must (with overwhelming
// probability) diverge somewhere.
#include <string>

#include <gtest/gtest.h>

#include "cdc/feeds.h"
#include "common/rng.h"
#include "pubsub/broker.h"
#include "pubsub/consumer.h"
#include "sharding/autosharder.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/materialized.h"
#include "watch/snapshot_source.h"
#include "watch/watch_system.h"

namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

// A fingerprint of everything observable in a busy mixed run: pubsub
// deliveries, watch deliveries, sharder moves, store state, watcher state.
std::string RunFingerprint(std::uint64_t seed) {
  sim::Simulator sim(seed);
  sim::Network net(&sim, {.base = 200, .jitter = 150});
  storage::MvccStore store("src");

  pubsub::Broker broker(&sim, &net, "broker", 100 * kMs);
  (void)broker.CreateTopic("t", {.partitions = 4, .retention = {.retention = 1 * kSec}});
  cdc::CdcPubsubFeed pub_feed(&sim, &net, &store, nullptr, &broker, "t");
  std::uint64_t consumed = 0;
  pubsub::GroupConsumer consumer(
      &sim, &net, &broker, "g", "t", "m0",
      [&consumed](pubsub::PartitionId, const pubsub::StoredMessage&) {
        ++consumed;
        return true;
      },
      {.poll_period = 7 * kMs});
  consumer.Start();

  watch::WatchSystem ws(&sim, &net, "ws",
                        {.window = {.max_events = 200},
                         .delivery_latency = 1 * kMs,
                         .progress_period = 9 * kMs});
  cdc::CdcIngesterFeed watch_feed(&sim, &store, nullptr, &ws,
                                  {.shards = cdc::UniformShards(60, 3, 2),
                                   .base_latency = 1 * kMs,
                                   .stagger = 2 * kMs,
                                   .progress_period = 9 * kMs});
  watch::StoreSnapshotSource source(&store);
  watch::MaterializedRange mr(&sim, &ws, &source, common::KeyRange::All(),
                              {.resync_delay = 5 * kMs});
  mr.Start();

  sharding::AutoSharder sharder(&sim, &net, {.rebalance_period = 250 * kMs,
                                             .split_threshold = 40});
  net.AddNode("w0");
  net.AddNode("w1");
  sharder.AddWorker("w0");
  sharder.AddWorker("w1");

  common::Rng rng(seed * 13 + 7);
  sim::PeriodicTask writer(&sim, 3 * kMs, [&] {
    const common::Key key = common::IndexKey(rng.Zipf(60, 0.7), 2);
    store.Apply(key, rng.Bernoulli(0.1) ? common::Mutation::Delete()
                                        : common::Mutation::Put("v" + std::to_string(rng.Next() % 1000)));
    sharder.ReportLoad(key);
  });
  sim::FailureInjector injector(&sim, &net);
  injector.Register("m0", {.on_crash = [&] { consumer.OnCrash(); },
                           .on_restart = [&] { consumer.OnRestart(); }});
  injector.ScheduleCrash("m0", 1 * kSec, 700 * kMs);

  sim.RunUntil(4 * kSec);
  writer.Stop();
  sim.RunUntil(8 * kSec);

  std::string fp;
  fp += "consumed=" + std::to_string(consumed);
  fp += " gced=" + std::to_string(broker.TotalGced("t"));
  fp += " skips=" + std::to_string(broker.TotalSilentSkips("t"));
  fp += " delivered=" + std::to_string(ws.events_delivered());
  fp += " resyncs=" + std::to_string(mr.resyncs());
  fp += " repairs=" + std::to_string(mr.session_repairs());
  fp += " moves=" + std::to_string(sharder.moves());
  fp += " splits=" + std::to_string(sharder.splits());
  fp += " version=" + std::to_string(store.LatestVersion());
  for (const auto& e : mr.LatestScan(common::KeyRange::All())) {
    fp += "|" + e.key + "=" + e.value;
  }
  return fp;
}

TEST(DeterminismTest, IdenticalSeedsIdenticalRuns) {
  EXPECT_EQ(RunFingerprint(42), RunFingerprint(42));
  EXPECT_EQ(RunFingerprint(7), RunFingerprint(7));
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  EXPECT_NE(RunFingerprint(42), RunFingerprint(43));
}

}  // namespace
