// Seeded smoke test for the chaos sweep: a handful of full-stack runs under
// the invariant oracle must come back clean. bench_chaos_sweep runs the wide
// (50+ seed) version of this; ctest keeps a fast always-on slice.
#include "oracle/chaos.h"

#include <gtest/gtest.h>

namespace oracle {
namespace {

class ChaosSweepSmokeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweepSmokeTest, SeededSweepIsViolationFree) {
  ChaosSweep sweep;
  const SweepResult result = sweep.Run(GetParam());
  std::string report;
  for (const Violation& v : result.violations) {
    report += "[" + v.invariant + "] " + v.detail + "\n";
  }
  EXPECT_TRUE(result.ok()) << report;
  // The run actually exercised the stack: writes committed, watch deliveries
  // flowed, and the oracle checked more than once.
  EXPECT_GT(result.stats.commits, 0u);
  EXPECT_GT(result.stats.watch_events_delivered, 0u);
  EXPECT_GT(result.stats.checks, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweepSmokeTest, ::testing::Values(1u, 2u, 3u));

TEST(ChaosSweepTest, SameSeedReproducesExactly) {
  ChaosSweep sweep;
  const SweepResult a = sweep.Run(7);
  const SweepResult b = sweep.Run(7);
  EXPECT_EQ(a.stats.commits, b.stats.commits);
  EXPECT_EQ(a.stats.watch_events_delivered, b.stats.watch_events_delivered);
  EXPECT_EQ(a.stats.watch_resyncs, b.stats.watch_resyncs);
  EXPECT_EQ(a.stats.broker_gced, b.stats.broker_gced);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST(ChaosSweepTest, ScheduleIsDeterministicAndHealsInWindow) {
  ChaosOptions options;
  ChaosSweep sweep(options);
  const auto schedule = sweep.MakeSchedule(42);
  const auto again = sweep.MakeSchedule(42);
  ASSERT_EQ(schedule.size(), options.events);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i].kind, again[i].kind);
    EXPECT_EQ(schedule[i].at, again[i].at);
    EXPECT_EQ(schedule[i].arg, again[i].arg);
    // Every outage heals before the fault window closes, so quiesce holds
    // regardless of which events a shrink deletes.
    EXPECT_LE(schedule[i].at + schedule[i].duration, options.fault_window);
    if (i > 0) {
      EXPECT_GE(schedule[i].at, schedule[i - 1].at);
    }
  }
}

TEST(ChaosSweepTest, ShrinkOfCleanScheduleIsIdentity) {
  ChaosSweep sweep;
  const auto schedule = sweep.MakeSchedule(3);
  const SweepResult result = sweep.Shrink(3, schedule);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.schedule.size(), schedule.size());
}

}  // namespace
}  // namespace oracle
