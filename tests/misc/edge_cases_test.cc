// Cross-cutting edge cases that don't belong to any one module's suite:
// boundary keys, empty ranges, policy interactions, and lifecycle corners.
#include <gtest/gtest.h>

#include "cdc/feeds.h"
#include "common/interval_map.h"
#include "common/types.h"
#include "pubsub/broker.h"
#include "pubsub/log.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/materialized.h"
#include "watch/snapshot_source.h"
#include "watch/store_watch.h"
#include "watch/watch_system.h"
#include "workqueue/pubsub_queue.h"

namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;
using common::KeyRange;
using common::Mutation;

TEST(KeyRangeEdgeTest, SingleOfEmptyKey) {
  const KeyRange r = KeyRange::Single("");
  EXPECT_TRUE(r.Contains(""));
  EXPECT_FALSE(r.Contains("a"));
  EXPECT_FALSE(r.Empty());
}

TEST(KeyRangeEdgeTest, IntersectOfEmptyWithAll) {
  const KeyRange empty{"m", "m"};
  EXPECT_TRUE(empty.Intersect(KeyRange::All()).Empty());
  EXPECT_TRUE(KeyRange::All().Intersect(empty).Empty());
}

TEST(IntervalMapEdgeTest, VisitAndFoldOnEmptyRange) {
  common::IntervalMap<int> m(1);
  int visits = 0;
  m.Visit(KeyRange{"c", "c"}, [&visits](const KeyRange&, const int&) { ++visits; });
  EXPECT_EQ(visits, 0);
  const int folded = m.Fold<int>(KeyRange{"c", "c"}, -7,
                                 [](int acc, const KeyRange&, const int&) { return acc + 1; });
  EXPECT_EQ(folded, -7);  // Untouched accumulator.
}

TEST(WatchEdgeTest, EmptyRangeWatchReceivesNothing) {
  sim::Simulator sim;
  watch::WatchSystem ws(&sim, nullptr, "ws", {.delivery_latency = 0, .progress_period = 0});
  struct Cb : watch::WatchCallback {
    int events = 0;
    void OnEvent(const watch::ChangeEvent&) override { ++events; }
    void OnProgress(const watch::ProgressEvent&) override {}
    void OnResync() override {}
  } cb;
  auto handle = ws.Watch("m", "m", 0, &cb);  // Empty range.
  ws.Append({"m", Mutation::Put("v"), 1, true});
  sim.Run();
  EXPECT_EQ(cb.events, 0);
}

TEST(WatchEdgeTest, RangeBoundariesAreHalfOpen) {
  sim::Simulator sim;
  watch::WatchSystem ws(&sim, nullptr, "ws", {.delivery_latency = 0, .progress_period = 0});
  std::vector<common::Key> got;
  struct Cb : watch::WatchCallback {
    std::vector<common::Key>* out;
    void OnEvent(const watch::ChangeEvent& e) override { out->push_back(e.key); }
    void OnProgress(const watch::ProgressEvent&) override {}
    void OnResync() override {}
  } cb;
  cb.out = &got;
  auto handle = ws.Watch("b", "d", 0, &cb);
  ws.Append({"a", Mutation::Put("v"), 1, true});
  ws.Append({"b", Mutation::Put("v"), 2, true});   // Inclusive low.
  ws.Append({"czz", Mutation::Put("v"), 3, true});
  ws.Append({"d", Mutation::Put("v"), 4, true});   // Exclusive high.
  sim.Run();
  EXPECT_EQ(got, (std::vector<common::Key>{"b", "czz"}));
}

TEST(WatchEdgeTest, TwoSessionsMayShareOneCallback) {
  sim::Simulator sim;
  watch::WatchSystem ws(&sim, nullptr, "ws", {.delivery_latency = 0, .progress_period = 0});
  struct Cb : watch::WatchCallback {
    int events = 0;
    void OnEvent(const watch::ChangeEvent&) override { ++events; }
    void OnProgress(const watch::ProgressEvent&) override {}
    void OnResync() override {}
  } cb;
  auto h1 = ws.Watch("a", "c", 0, &cb);
  auto h2 = ws.Watch("b", "d", 0, &cb);  // Overlapping: "b.." delivered twice.
  ws.Append({"bb", Mutation::Put("v"), 1, true});
  sim.Run();
  EXPECT_EQ(cb.events, 2);
}

TEST(LogEdgeTest, CompactionAndRetentionCompose) {
  // Compaction keeps the latest version per old key; retention then removes
  // even those once they age past the retention horizon.
  pubsub::PartitionLog log({});
  log.Append({"a", "a1", 100});
  log.Append({"a", "a2", 200});
  log.Append({"b", "b1", 300});
  EXPECT_EQ(log.Compact(250), 1u);     // Drops a1, keeps a2 (latest old "a").
  EXPECT_EQ(log.GcBefore(250), 1u);    // Retention then removes a2 as well.
  EXPECT_EQ(log.size(), 1u);           // Only b1 survives.
  auto msgs = log.Read(0);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].message.key, "b");
}

TEST(BrokerEdgeTest, FetchAtEndOffsetIsEmptyNotError) {
  sim::Simulator sim;
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  pubsub::Broker broker(&sim, &net);
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  broker.Publish("t", {"k", "v", 0}, 0);
  auto msgs = broker.Fetch("t", 0, broker.EndOffset("t", 0), 10);
  ASSERT_TRUE(msgs.ok());
  EXPECT_TRUE(msgs->empty());
}

TEST(MaterializedEdgeTest, StopDuringInitialSyncIsSafe) {
  sim::Simulator sim;
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore store;
  watch::StoreWatch sw(&sim, &net, &store, "sw", {.delivery_latency = 1 * kMs});
  watch::StoreSnapshotSource source(&store);
  watch::MaterializedRange mr(&sim, &sw, &source, KeyRange::All(),
                              {.resync_delay = 50 * kMs});
  mr.Start();
  sim.RunUntil(10 * kMs);  // Mid-sync.
  mr.Stop();
  sim.RunUntil(200 * kMs);  // The pending sync callback fires harmlessly.
  EXPECT_FALSE(mr.ready());

  // Start again works.
  store.Apply("k", Mutation::Put("v"));
  mr.Start();
  sim.RunUntil(400 * kMs);
  EXPECT_TRUE(mr.ready());
  EXPECT_EQ(*mr.Get("k"), "v");
}

TEST(MaterializedEdgeTest, RestartAfterStopSeesOnlyCurrentState) {
  sim::Simulator sim;
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore store;
  watch::StoreWatch sw(&sim, &net, &store, "sw",
                       {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs});
  watch::StoreSnapshotSource source(&store);
  watch::MaterializedRange mr(&sim, &sw, &source, KeyRange::All(),
                              {.resync_delay = 5 * kMs});
  store.Apply("gone", Mutation::Put("x"));
  mr.Start();
  sim.RunUntil(50 * kMs);
  mr.Stop();
  store.Apply("gone", Mutation::Delete());
  store.Apply("kept", Mutation::Put("y"));
  mr.Start();
  sim.RunUntil(150 * kMs);
  EXPECT_EQ(mr.Get("gone").status().code(), common::StatusCode::kNotFound);
  EXPECT_EQ(*mr.Get("kept"), "y");
}

TEST(WorkqueueEdgeTest, PoisonTaskDeadLettersAndUnblocks) {
  sim::Simulator sim;
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  pubsub::Broker broker(&sim, &net);
  ASSERT_TRUE(broker.CreateTopic("tasks", {.partitions = 1}).ok());
  ASSERT_TRUE(broker.CreateTopic("tasks-dlq", {.partitions = 1}).ok());
  storage::MvccStore store;
  workqueue::PubsubQueueOptions options;
  options.workers = 1;
  options.consumer.poll_period = 2 * kMs;
  options.consumer.max_redeliveries = 3;
  options.consumer.dead_letter_topic = "tasks-dlq";
  workqueue::PubsubWorkQueue queue(&sim, &net, &broker, "tasks", "g", &store, options);
  sim.RunUntil(20 * kMs);
  // A malformed task (undecodable desired state) is acked-and-dropped by the
  // handler; a well-formed one behind it must still complete.
  (void)broker.Publish("tasks", {workqueue::DesiredKey(1), "NOT-A-DESIRED-VALUE", 0}, 0);
  store.Apply(workqueue::DesiredKey(2),
              Mutation::Put(workqueue::EncodeDesired(0, "cfg")));
  sim.RunUntil(2 * kSec);
  EXPECT_EQ(*store.GetLatest(workqueue::ActualKey(2)), "cfg");
}

}  // namespace
