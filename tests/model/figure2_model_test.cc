// Bounded model checking of the Figure 2 race.
//
// The simulator shows the race HAPPENS under realistic timings; this test
// shows it is INHERENT: we enumerate every interleaving (subject to causal
// order) of the abstract events in the paper's Figure 2 and check which final
// states each architecture admits.
//
// Events (Figure 2's arrows):
//   MOVE_PODS    the auto-sharder's reassignment of x reaches the pods
//                (p_new now answers reads for x; p_old stops)
//   MOVE_PUBSUB  the reassignment reaches the pubsub layer's routing
//   WRITE        producer storage commits x := v2 (was v1)
//   FILL         p_new reads x from the store and installs what it read
//   INVAL        the pubsub invalidation for the WRITE is delivered to the
//                pod the PUBSUB layer currently believes owns x, and acked
//
// Causal constraints: MOVE_PODS precedes FILL (p_new fills because it now
// owns x); WRITE precedes INVAL (the invalidation is caused by the write).
// Everything else may interleave — that freedom is exactly what a
// distributed system permits.
//
// Claims checked:
//   1. Pubsub invalidation admits interleavings whose FINAL state serves
//      stale v1 forever (and we count them).
//   2. Every such interleaving has INVAL delivered to the wrong pod —
//      i.e. MOVE_PUBSUB after INVAL — matching the paper's diagnosis.
//   3. The watch cache admits NO stale-forever interleaving under the same
//      freedom: the fill is a snapshot-at-version and the update flows on
//      p_new's own subscription, which exists in every ordering.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

enum Event { kMovePods, kMovePubsub, kWrite, kFill, kInval };

const char* Name(Event e) {
  switch (e) {
    case kMovePods:
      return "MOVE_PODS";
    case kMovePubsub:
      return "MOVE_PUBSUB";
    case kWrite:
      return "WRITE";
    case kFill:
      return "FILL";
    case kInval:
      return "INVAL";
  }
  return "?";
}

bool CausallyValid(const std::vector<Event>& order) {
  auto pos = [&order](Event e) {
    return std::find(order.begin(), order.end(), e) - order.begin();
  };
  return pos(kMovePods) < pos(kFill) && pos(kWrite) < pos(kInval);
}

// Executes one interleaving against the pubsub-invalidation semantics.
// Returns true iff p_new ends up serving stale v1 with no pending correction.
bool PubsubEndsStale(const std::vector<Event>& order) {
  int store_value = 1;        // x == v1 initially.
  int p_new_cache = 0;        // 0: empty.
  bool pubsub_routes_to_new = false;  // Routing starts at p_old.

  for (Event e : order) {
    switch (e) {
      case kMovePods:
        break;  // p_new may fill from now on (enforced by CausallyValid).
      case kMovePubsub:
        pubsub_routes_to_new = true;
        break;
      case kWrite:
        store_value = 2;
        break;
      case kFill:
        p_new_cache = store_value;  // Reads whatever the store has NOW.
        break;
      case kInval:
        // Delivered to (and acked by) the pod pubsub believes owns x.
        if (pubsub_routes_to_new && p_new_cache != 0) {
          p_new_cache = 0;  // Correct pod: entry dropped.
        }
        // Wrong pod (p_old): the message is consumed; nothing happens.
        break;
    }
  }
  // Stale forever: p_new holds v1 while the store holds v2, and the one
  // invalidation for the write has already been consumed.
  return p_new_cache == 1 && store_value == 2;
}

// The watch-cache semantics under the same interleavings. FILL becomes
// "snapshot at version + subscribe from that version": if the WRITE precedes
// the fill, the fill sees v2; if it follows, the subscription delivers it.
// There is no separately-routed invalidation to lose. The only freedom left
// is WHEN the subscription's event arrives — and it always arrives, because
// the session was opened from the snapshot version (completeness W1).
bool WatchEndsStale(const std::vector<Event>& order) {
  int store_value = 1;
  int p_new_cache = 0;
  bool subscribed = false;
  bool pending_event = false;  // An update the subscription will deliver.

  for (Event e : order) {
    switch (e) {
      case kMovePods:
        break;
      case kMovePubsub:
        break;  // No pubsub layer in this architecture.
      case kWrite:
        store_value = 2;
        if (subscribed) {
          pending_event = true;
        }
        break;
      case kFill:
        p_new_cache = store_value;
        subscribed = true;  // Watch from the snapshot version: covers any
                            // write not already in the snapshot.
        if (store_value == 2 && p_new_cache != 2) {
          pending_event = true;
        }
        break;
      case kInval:
        break;  // Not part of this architecture.
    }
  }
  if (pending_event) {
    p_new_cache = store_value;  // Guaranteed delivery (W1) applies it.
  }
  return subscribed && p_new_cache == 1 && store_value == 2;
}

TEST(Figure2ModelTest, PubsubAdmitsStaleForeverInterleavings) {
  std::vector<Event> order = {kMovePods, kMovePubsub, kWrite, kFill, kInval};
  std::sort(order.begin(), order.end());
  int valid = 0;
  int stale = 0;
  std::vector<std::string> witnesses;
  do {
    if (!CausallyValid(order)) {
      continue;
    }
    ++valid;
    if (PubsubEndsStale(order)) {
      ++stale;
      if (witnesses.size() < 3) {
        std::string w;
        for (Event e : order) {
          w += std::string(Name(e)) + " ";
        }
        witnesses.push_back(w);
      }
    }
  } while (std::next_permutation(order.begin(), order.end()));

  EXPECT_GT(valid, 0);
  EXPECT_GT(stale, 0) << "the Figure 2 race must be reachable";
  // Print the witnesses for the record (deterministic).
  for (const std::string& w : witnesses) {
    SCOPED_TRACE(w);
  }
  // The paper's own example ordering is among them:
  //   pods learn of the move, p_new fills v1, the write lands, and the
  //   invalidation goes to p_old because pubsub has not yet heard.
  EXPECT_TRUE(PubsubEndsStale({kMovePods, kFill, kWrite, kInval, kMovePubsub}));
}

TEST(Figure2ModelTest, EveryStaleInterleavingMisroutesTheInvalidation) {
  std::vector<Event> order = {kMovePods, kMovePubsub, kWrite, kFill, kInval};
  std::sort(order.begin(), order.end());
  do {
    if (!CausallyValid(order) || !PubsubEndsStale(order)) {
      continue;
    }
    // Diagnosis: in every bad ordering, the pubsub layer learned about the
    // move only after it had already delivered (and consumed) the
    // invalidation — Figure 2's exact arrow diagram.
    const auto pos = [&order](Event e) {
      return std::find(order.begin(), order.end(), e) - order.begin();
    };
    EXPECT_GT(pos(kMovePubsub), pos(kInval));
    // And p_new filled a pre-write value.
    EXPECT_LT(pos(kFill), pos(kWrite));
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(Figure2ModelTest, WatchAdmitsNoStaleForeverInterleaving) {
  std::vector<Event> order = {kMovePods, kMovePubsub, kWrite, kFill, kInval};
  std::sort(order.begin(), order.end());
  int valid = 0;
  do {
    if (!CausallyValid(order)) {
      continue;
    }
    ++valid;
    EXPECT_FALSE(WatchEndsStale(order))
        << "watch semantics must be race-free in every interleaving";
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_GT(valid, 0);
}

TEST(Figure2ModelTest, StaleCountsMatchTheSimulatorsFindings) {
  // Not a tautology: the counts quantify how much of the interleaving space
  // is dangerous, which the wall-clock simulator samples but cannot cover.
  std::vector<Event> order = {kMovePods, kMovePubsub, kWrite, kFill, kInval};
  std::sort(order.begin(), order.end());
  int valid = 0;
  int stale = 0;
  do {
    if (!CausallyValid(order)) {
      continue;
    }
    ++valid;
    stale += PubsubEndsStale(order) ? 1 : 0;
  } while (std::next_permutation(order.begin(), order.end()));
  // 5 events, 2 causal constraints: 30 valid interleavings. With ONE write
  // and ONE invalidation the dangerous region is exactly the Figure 2
  // ordering itself: MOVE_PODS FILL WRITE INVAL MOVE_PUBSUB. (Every real
  // deployment replays this die-roll once per write that lands inside the
  // pods-know/pubsub-doesn't window, which is why the simulator's stranded
  // count grows with move rate x write rate — see bench_invalidation_race.)
  EXPECT_EQ(valid, 30);
  EXPECT_EQ(stale, 1);
}

}  // namespace
