// Bounded model checking of the §3.2.1 replication anomaly (the member/ACL
// example), companion to figure2_model_test.cc.
//
// Source history (two single-key commits, in this order):
//   T1: member := OUT   (revoke mallory's membership)      version 1
//   T2: acl    := ALLOW  (then open the document to the group) version 2
// Initial state: member = IN, acl = DENY.
//
// A partitioned pubsub replicator routes the two keys to different
// partitions, applied by independent consumers: the two apply events may
// interleave arbitrarily. The forbidden target state is {member=IN,
// acl=ALLOW} — "a state that never existed in producer storage".
//
// A frontier-atomic applier (the watch replicator) buffers events and applies
// version prefixes atomically once progress covers them; the target steps
// only through source states in every interleaving of event ARRIVAL.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace {

// The two replicated apply-events.
enum Apply { kApplyMemberOut, kApplyAclAllow };

struct TargetState {
  bool member_in = true;
  bool acl_allow = false;

  bool Forbidden() const { return member_in && acl_allow; }
  friend bool operator==(const TargetState&, const TargetState&) = default;
};

// Source states, in commit order.
const TargetState kSourceStates[] = {
    {true, false},   // Initial.
    {false, false},  // After T1.
    {false, true},   // After T2.
};

bool IsSourceState(const TargetState& s) {
  for (const TargetState& src : kSourceStates) {
    if (s == src) {
      return true;
    }
  }
  return false;
}

TEST(ReplicationModelTest, PartitionedApplyReachesForbiddenState) {
  // Two possible arrival orders at the target (per-partition consumers are
  // independent). Applying immediately on arrival:
  bool forbidden_reachable = false;
  int never_existed_states = 0;
  for (const std::vector<Apply>& order :
       {std::vector<Apply>{kApplyMemberOut, kApplyAclAllow},
        std::vector<Apply>{kApplyAclAllow, kApplyMemberOut}}) {
    TargetState t;
    for (Apply a : order) {
      if (a == kApplyMemberOut) {
        t.member_in = false;
      } else {
        t.acl_allow = true;
      }
      if (t.Forbidden()) {
        forbidden_reachable = true;
      }
      if (!IsSourceState(t)) {
        ++never_existed_states;
      }
    }
    // Both orders converge to the same final state (per-key order held)...
    EXPECT_EQ(t, (TargetState{false, true}));
  }
  // ...but one order externalizes mallory-with-access on the way.
  EXPECT_TRUE(forbidden_reachable);
  EXPECT_EQ(never_existed_states, 1);
}

TEST(ReplicationModelTest, FrontierAtomicApplyNeverLeavesSourceStates) {
  // The watch replicator buffers arrivals and applies version prefixes only
  // when the progress frontier (min across shards) covers them. Model: for
  // every arrival order AND every schedule of frontier advances, the target
  // externalizes only source states.
  struct Arrival {
    Apply apply;
    int version;  // T1 = 1, T2 = 2.
  };
  for (const std::vector<Arrival>& order :
       {std::vector<Arrival>{{kApplyMemberOut, 1}, {kApplyAclAllow, 2}},
        std::vector<Arrival>{{kApplyAclAllow, 2}, {kApplyMemberOut, 1}}}) {
    // Frontier can advance to 0, 1, or 2 after each arrival; enumerate all
    // monotonic schedules. The frontier for a shard only reaches v when that
    // shard has supplied everything <= v, so the min frontier reaches v only
    // once every event with version <= v has ARRIVED.
    for (int advance_after_first = 0; advance_after_first <= 2; ++advance_after_first) {
      TargetState t;
      std::vector<Arrival> buffered;
      int applied_version = 0;

      auto apply_up_to = [&](int frontier) {
        // Apply buffered events with version <= frontier, version order,
        // atomically per version (each version is one commit here).
        std::sort(buffered.begin(), buffered.end(),
                  [](const Arrival& a, const Arrival& b) { return a.version < b.version; });
        std::vector<Arrival> rest;
        for (const Arrival& a : buffered) {
          if (a.version <= frontier && a.version == applied_version + 1) {
            if (a.apply == kApplyMemberOut) {
              t.member_in = false;
            } else {
              t.acl_allow = true;
            }
            applied_version = a.version;
            EXPECT_TRUE(IsSourceState(t)) << "externalized a never-existed state";
          } else {
            rest.push_back(a);
          }
        }
        buffered = rest;
      };

      // First arrival, then a frontier advance attempt.
      buffered.push_back(order[0]);
      // The frontier cannot exceed what has arrived: min-frontier semantics.
      const int max_frontier_now = order[0].version == 1 ? 1 : 0;
      apply_up_to(std::min(advance_after_first, max_frontier_now));
      // Second arrival; now everything <= 2 has arrived, frontier may reach 2.
      buffered.push_back(order[1]);
      apply_up_to(2);

      EXPECT_EQ(t, (TargetState{false, true}));  // Converged.
      EXPECT_EQ(applied_version, 2);
    }
  }
}

TEST(ReplicationModelTest, VersionChecksDoNotPreventTheTear) {
  // Version checks (kConcurrentVersioned) only suppress PER-KEY staleness;
  // the two events touch different keys, so both always apply — the tear is
  // unchanged. This is why §3.2.1 says tombstones/version checks "still risk
  // snapshot consistency violations".
  TargetState t;
  // Arrival order: ACL first (higher version — passes any version check).
  t.acl_allow = true;
  EXPECT_TRUE(t.Forbidden());  // The forbidden state is externalized.
  t.member_in = false;         // The member event applies later (also passes).
  EXPECT_EQ(t, (TargetState{false, true}));
}

}  // namespace
