// Connection churn and dead-peer reclamation: clients killed abruptly in
// every unflattering state (mid-subscribe, mid-handshake, with undrained
// streams) must be detected within the heartbeat window, their sessions and
// shard-side resources (parked waiters, handoff lanes, watch sessions)
// reclaimed, and every acked publish must survive the carnage.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "net/socket.h"
#include "obs/collector.h"
#include "runtime/concurrent_broker.h"
#include "runtime/concurrent_watch.h"
#include "runtime/shard_pool.h"
#include "server/pubsubd.h"

namespace server {
namespace {

void SleepUs(std::int64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

struct Harness {
  explicit Harness(ServerOptions so = {}) {
    runtime::RuntimeOptions po;
    po.obs = &obs;
    so.obs = &obs;
    pool = std::make_unique<runtime::ShardPool>(po);
    broker = std::make_unique<runtime::ConcurrentBroker>(pool.get());
    watch = std::make_unique<runtime::ConcurrentWatchService>(pool.get());
    pool->Start();
    server = std::make_unique<Server>(broker.get(), watch.get(), &pool->metrics(), so);
    EXPECT_TRUE(server->Start().ok());
  }

  ~Harness() {
    server->Stop();
    pool->Stop();
  }

  std::size_t PendingWaiters() {
    std::size_t pending = 0;
    pool->RunFenced([&] {
      for (std::size_t s = 0; s < pool->options().shards; ++s) {
        pending += pool->core(s).broker->PendingWaiters();
      }
    });
    return pending;
  }

  std::size_t PendingInterests() {
    std::size_t pending = 0;
    pool->RunFenced([&] {
      for (std::size_t s = 0; s < pool->options().shards; ++s) {
        pending += pool->core(s).broker->PendingInterests();
      }
    });
    return pending;
  }

  template <typename Pred>
  bool Eventually(Pred pred, std::int64_t deadline_us = 10'000'000) {
    for (std::int64_t waited = 0; waited < deadline_us; waited += 5000) {
      if (pred()) return true;
      SleepUs(5000);
    }
    return pred();
  }

  common::MetricsRegistry obs_metrics;
  obs::Collector obs{&obs_metrics};
  std::unique_ptr<runtime::ShardPool> pool;
  std::unique_ptr<runtime::ConcurrentBroker> broker;
  std::unique_ptr<runtime::ConcurrentWatchService> watch;
  std::unique_ptr<Server> server;
};

TEST(ChurnTest, AbruptDeathsAreDetectedAndReclaimedAckedDataSurvives) {
  ServerOptions so;
  so.heartbeat_interval_us = 50'000;
  so.heartbeat_misses = 3;
  Harness h(so);
  ASSERT_TRUE(h.broker->CreateTopic("churn", {.partitions = 2}).ok());

  constexpr int kRounds = 6;
  constexpr int kClientsPerRound = 8;
  std::uint64_t acked = 0;

  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::unique_ptr<client::Client>> doomed;
    std::vector<std::unique_ptr<client::Subscription>> subs;
    std::vector<std::unique_ptr<client::Watch>> watches;
    for (int i = 0; i < kClientsPerRound; ++i) {
      // Heartbeats OFF: once abandoned, only the server's dead-peer sweep
      // can reclaim these.
      auto c = client::Client::Connect("127.0.0.1", h.server->port(),
                                       {.client_name = "doomed", .auto_heartbeat = false});
      ASSERT_TRUE(c.ok()) << c.status().message();
      // Every client gets acked work in before dying.
      pubsub::PublishResult pr;
      ASSERT_TRUE((*c)->Publish("churn", "r" + std::to_string(round), "v" + std::to_string(i),
                                static_cast<pubsub::PartitionId>(i % 2),
                                net::PublishAck::kOffset, &pr)
                      .ok());
      ++acked;
      // Half die with a live long-poll subscription parked shard-side; a
      // few with an open watch stream.
      if (i % 2 == 0) {
        auto sub = (*c)->Subscribe("churn", static_cast<pubsub::PartitionId>(i % 2), 0);
        ASSERT_TRUE(sub.ok());
        subs.push_back(std::move(*sub));
      } else if (i % 3 == 0) {
        auto w = (*c)->Watch("a", "z", 0);
        ASSERT_TRUE(w.ok());
        watches.push_back(std::move(*w));
      }
      doomed.push_back(std::move(*c));
    }
    // Subscriptions parked waiters shard-side; confirm some exist before
    // the kill so the reclamation assertion below means something.
    if (round == 0) {
      ASSERT_TRUE(h.Eventually([&] { return h.PendingWaiters() > 0; }));
    }
    // Abrupt death: close the sockets out from under the protocol — no
    // GOODBYE, no CANCEL, undrained pushes in flight. (Handles destroyed
    // after the kill are no-ops on a broken client — nothing reaches the
    // wire; teardown is entirely the server's problem.)
    for (std::unique_ptr<client::Client>& c : doomed) {
      c->KillConnectionForTest();
    }
    subs.clear();
    watches.clear();
    doomed.clear();
  }

  // Every abandoned session is detected (peer_closed or heartbeat_miss,
  // depending on whether the kernel delivered the RST before the sweep) and
  // closed within the dead-peer window.
  ASSERT_TRUE(h.Eventually([&] {
    return h.server->sessions_closed() >= static_cast<std::uint64_t>(kRounds * kClientsPerRound);
  }))
      << "closed " << h.server->sessions_closed() << " of " << kRounds * kClientsPerRound;

  // No leaked shard-side waiters once the sessions are gone.
  ASSERT_TRUE(h.Eventually([&] { return h.PendingWaiters() == 0; }))
      << h.PendingWaiters() << " waiters leaked";

  // Acked publishes all survive: the log holds exactly what was acked.
  std::uint64_t stored = 0;
  for (pubsub::PartitionId p = 0; p < 2; ++p) {
    auto r = h.broker->Fetch("churn", p, 0, 10'000);
    ASSERT_TRUE(r.ok());
    stored += r->size();
  }
  EXPECT_EQ(stored, acked);

  // And the server remains fully serviceable for a well-behaved client.
  auto fresh = client::Client::Connect("127.0.0.1", h.server->port());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE((*fresh)->Ping().ok());
  auto fetched = (*fresh)->Fetch("churn", 0, 0, 10'000);
  ASSERT_TRUE(fetched.ok());
  EXPECT_FALSE(fetched->empty());
}

TEST(ChurnTest, HalfOpenHandshakesAndInstantDisconnectsDoNotAccumulate) {
  ServerOptions so;
  so.heartbeat_interval_us = 40'000;
  so.heartbeat_misses = 2;
  Harness h(so);

  // Sockets that connect and vanish without a single frame, plus sockets
  // that die mid-handshake: the cheapest possible DoS shape. All must be
  // reaped by the dead-peer sweep (they never beat).
  for (int i = 0; i < 50; ++i) {
    auto fd = net::TcpConnect("127.0.0.1", h.server->port());
    ASSERT_TRUE(fd.ok());
    if (i % 2 == 0) {
      // Half a HELLO frame, then gone.
      const char half[] = {0x53, 0x50, 0x01};
      (void)net::WriteAll(fd->get(), half, sizeof(half));
    }
    // Fd closes at scope exit — abrupt.
  }

  ASSERT_TRUE(h.Eventually([&] {
    return h.server->sessions_closed() == h.server->sessions_opened() &&
           h.server->sessions_opened() >= 50;
  }))
      << "opened " << h.server->sessions_opened() << " closed " << h.server->sessions_closed();

  // Still serviceable.
  auto c = client::Client::Connect("127.0.0.1", h.server->port());
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE((*c)->Ping().ok());
}

TEST(ChurnTest, FilteredSessionsCutMidCatchUpLeaveNoInterestEntries) {
  // A filtered subscription registers an entry in the broker's interest
  // index (that's what makes its fanout O(matching)); a session killed
  // abruptly mid-catch-up — filtered cursor still behind the log head, a
  // WaitForMatch parked or a scan chunk in flight — must have that entry
  // reaped with the session. A leaked interest is worse than a leaked
  // waiter: every future append would pay for a dead subscriber forever.
  ServerOptions so;
  so.heartbeat_interval_us = 50'000;
  so.heartbeat_misses = 3;
  Harness h(so);
  ASSERT_TRUE(h.broker->CreateTopic("filtered", {.partitions = 1}).ok());

  // A backlog to catch up through: mostly non-matching keys, so the
  // filtered cursor has real scanning to do when the session dies.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(h.broker
                    ->PublishSync("filtered",
                                  {.key = (i % 50 == 0 ? "hot" : "cold" + std::to_string(i)),
                                   .value = "v" + std::to_string(i)},
                                  0)
                    .ok());
  }

  constexpr int kRounds = 4;
  constexpr int kClientsPerRound = 6;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::unique_ptr<client::Client>> doomed;
    std::vector<std::unique_ptr<client::Subscription>> subs;
    for (int i = 0; i < kClientsPerRound; ++i) {
      auto c = client::Client::Connect("127.0.0.1", h.server->port(),
                                       {.client_name = "doomed-filtered", .auto_heartbeat = false});
      ASSERT_TRUE(c.ok()) << c.status().message();
      pubsub::Filter f;
      if (i % 2 == 0) {
        f.range = common::KeyRange::Single("hot");
      } else {
        f.key_prefix = "hot";
        f.headers.push_back({"absent", pubsub::HeaderPredicate::Op::kExists, ""});
      }
      auto sub = (*c)->Subscribe("filtered", 0, 0, 8, f);
      ASSERT_TRUE(sub.ok()) << sub.status().message();
      subs.push_back(std::move(*sub));
      doomed.push_back(std::move(*c));
    }
    // The interests are registered shard-side before the kill — the
    // reclamation below has to mean something.
    ASSERT_TRUE(h.Eventually([&] { return h.PendingInterests() >= kClientsPerRound; }))
        << h.PendingInterests() << " interests registered";
    for (std::unique_ptr<client::Client>& c : doomed) {
      c->KillConnectionForTest();
    }
    subs.clear();
    doomed.clear();
    // Dead-peer sweep reaps the sessions; the interest index must return to
    // empty — no leaked entries, no leaked shared-lane refcounts holding
    // lanes alive for dead subscribers.
    ASSERT_TRUE(h.Eventually([&] { return h.PendingInterests() == 0; }))
        << h.PendingInterests() << " interests leaked in round " << round;
  }
  ASSERT_TRUE(h.Eventually([&] { return h.PendingWaiters() == 0; }))
      << h.PendingWaiters() << " waiters leaked";

  // The index still serves a fresh filtered subscriber correctly after all
  // that churn: exactly the 40 "hot" records, in order.
  auto fresh = client::Client::Connect("127.0.0.1", h.server->port());
  ASSERT_TRUE(fresh.ok());
  pubsub::Filter hot;
  hot.range = common::KeyRange::Single("hot");
  auto sub = (*fresh)->Subscribe("filtered", 0, 0, 64, hot);
  ASSERT_TRUE(sub.ok());
  std::vector<pubsub::StoredMessage> got;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (got.size() < 40 && std::chrono::steady_clock::now() < deadline) {
    (void)(*sub)->Poll(&got, 64, 100'000);
  }
  ASSERT_EQ(got.size(), 40u);
  for (const pubsub::StoredMessage& sm : got) {
    EXPECT_EQ(sm.message.key, "hot");
  }
}

TEST(ChurnTest, StopWithLiveSessionsShutsDownCleanly) {
  // Server Stop() with sessions mid-everything: must join, cancel all
  // shard-side resources, and leave the pool reusable.
  Harness h;
  ASSERT_TRUE(h.broker->CreateTopic("t", {.partitions = 1}).ok());

  std::vector<std::unique_ptr<client::Client>> clients;
  std::vector<std::unique_ptr<client::Subscription>> subs;
  for (int i = 0; i < 10; ++i) {
    auto c = client::Client::Connect("127.0.0.1", h.server->port());
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE((*c)->Publish("t", "k", "v").ok());
    auto sub = (*c)->Subscribe("t", 0, 0);
    ASSERT_TRUE(sub.ok());
    subs.push_back(std::move(*sub));
    clients.push_back(std::move(*c));
  }

  h.server->Stop();
  EXPECT_FALSE(h.server->running());
  EXPECT_EQ(h.server->sessions_closed(), h.server->sessions_opened());
  EXPECT_EQ(h.PendingWaiters(), 0u);

  // The pool is untouched: in-process operation continues.
  ASSERT_TRUE(h.broker->Fetch("t", 0, 0, 100).ok());

  // Clients observe the close as a broken connection, not a hang.
  for (std::unique_ptr<client::Client>& c : clients) {
    EXPECT_FALSE(c->Ping().ok());
  }
  subs.clear();
  clients.clear();
}

}  // namespace
}  // namespace server
