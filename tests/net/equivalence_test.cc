// Loopback equivalence: the same deterministic operation sequence driven
// (a) in-process against ConcurrentBroker / ConcurrentWatchService and
// (b) over a real socket through pubsubd + client::Client must produce
// identical observable sequences — per-partition logs, committed offsets,
// subscription delivery order, and watch event streams. The wire is a
// transport, not a semantic layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "client/client.h"
#include "common/rng.h"
#include "net/messages.h"
#include "obs/collector.h"
#include "runtime/concurrent_broker.h"
#include "runtime/concurrent_watch.h"
#include "runtime/shard_pool.h"
#include "runtime/subscription.h"
#include "server/pubsubd.h"
#include "watch/api.h"

namespace server {
namespace {

constexpr int kMessages = 400;
constexpr pubsub::PartitionId kPartitions = 4;
constexpr std::uint64_t kSeed = 0x9e3779b97f4a7c15ULL;

// The deterministic workload both sides run: keyed publishes (routing left
// to the broker's hash), explicit-partition publishes, and interleaved
// commits. Regenerated identically per run from the shared seed.
struct Op {
  enum class Kind { kPublishKeyed, kPublishExplicit, kCommit } kind = Kind::kPublishKeyed;
  std::string key, value;
  pubsub::PartitionId partition = 0;
  std::string group;
  pubsub::Offset offset = 0;
};

std::vector<Op> Workload() {
  common::Rng rng(kSeed);
  std::vector<Op> ops;
  for (int i = 0; i < kMessages; ++i) {
    Op op;
    const std::uint64_t dice = rng.Below(10);
    if (dice < 6) {
      op.kind = Op::Kind::kPublishKeyed;
      op.key = "key-" + std::to_string(rng.Below(37));
      op.value = "v" + std::to_string(i);
    } else if (dice < 9) {
      op.kind = Op::Kind::kPublishExplicit;
      op.partition = static_cast<pubsub::PartitionId>(rng.Below(kPartitions));
      op.key = "exp-" + std::to_string(i);
      op.value = "e" + std::to_string(i);
    } else {
      op.kind = Op::Kind::kCommit;
      op.group = "group-" + std::to_string(rng.Below(3));
      op.partition = static_cast<pubsub::PartitionId>(rng.Below(kPartitions));
      op.offset = static_cast<pubsub::Offset>(i);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

// Flat, comparable image of everything observable after a run.
struct Image {
  std::vector<std::vector<std::string>> logs;  // Per partition: "key=value".
  std::vector<std::vector<pubsub::Offset>> offsets;
  std::vector<pubsub::Offset> committed;  // group-0..2 × partition, flattened.
};

void ExpectSameImage(const Image& in_process, const Image& remote) {
  ASSERT_EQ(in_process.logs.size(), remote.logs.size());
  for (std::size_t p = 0; p < in_process.logs.size(); ++p) {
    EXPECT_EQ(in_process.logs[p], remote.logs[p]) << "partition " << p;
    EXPECT_EQ(in_process.offsets[p], remote.offsets[p]) << "partition " << p;
  }
  EXPECT_EQ(in_process.committed, remote.committed);
}

class EquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime::RuntimeOptions po;
    po.obs = &obs_;
    pool_ = std::make_unique<runtime::ShardPool>(po);
    broker_ = std::make_unique<runtime::ConcurrentBroker>(pool_.get());
    watch_ = std::make_unique<runtime::ConcurrentWatchService>(pool_.get());
    pool_->Start();
    server_ = std::make_unique<Server>(broker_.get(), watch_.get(), &pool_->metrics(),
                                       ServerOptions{.obs = &obs_});
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    server_->Stop();
    pool_->Stop();
  }

  // Publishes retry through transient backpressure — both paths surface it
  // the same way, and neither may drop an op.
  static void MustPublishInProcess(runtime::ConcurrentBroker& b, const std::string& topic,
                                   const Op& op) {
    pubsub::Message m;
    m.key = op.key;
    m.value = op.value;
    for (;;) {
      common::TimeMicros retry_after = 0;
      const common::Status st =
          b.TryPublish(topic, m,
                       op.kind == Op::Kind::kPublishExplicit
                           ? std::optional<pubsub::PartitionId>(op.partition)
                           : std::nullopt,
                       &retry_after);
      if (st.ok()) return;
      ASSERT_EQ(st.code(), common::StatusCode::kUnavailable) << st.message();
      std::this_thread::sleep_for(std::chrono::microseconds(std::max<std::int64_t>(retry_after, 50)));
    }
  }

  Image Drain(const std::function<std::vector<pubsub::StoredMessage>(pubsub::PartitionId)>& fetch,
              const std::function<pubsub::Offset(const std::string&, pubsub::PartitionId)>& committed) {
    Image img;
    img.logs.resize(kPartitions);
    img.offsets.resize(kPartitions);
    for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
      for (const pubsub::StoredMessage& m : fetch(p)) {
        img.logs[p].push_back(m.message.key + "=" + m.message.value);
        img.offsets[p].push_back(m.offset);
      }
    }
    for (int g = 0; g < 3; ++g) {
      for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
        img.committed.push_back(committed("group-" + std::to_string(g), p));
      }
    }
    return img;
  }

  common::MetricsRegistry obs_metrics_;
  obs::Collector obs_{&obs_metrics_};
  std::unique_ptr<runtime::ShardPool> pool_;
  std::unique_ptr<runtime::ConcurrentBroker> broker_;
  std::unique_ptr<runtime::ConcurrentWatchService> watch_;
  std::unique_ptr<Server> server_;
};

TEST_F(EquivalenceTest, PublishFetchCommitMatchInProcessBaseline) {
  const std::vector<Op> ops = Workload();

  // In-process baseline: topic "t" driven through the facade directly.
  ASSERT_TRUE(broker_->CreateTopic("t", {.partitions = kPartitions}).ok());
  for (const Op& op : ops) {
    if (op.kind == Op::Kind::kCommit) {
      broker_->CommitOffset(op.group, op.partition, op.offset);
    } else {
      MustPublishInProcess(*broker_, "t", op);
    }
  }
  const Image baseline = Drain(
      [&](pubsub::PartitionId p) {
        auto r = broker_->Fetch("t", p, 0, kMessages);
        EXPECT_TRUE(r.ok());
        return r.ok() ? *r : std::vector<pubsub::StoredMessage>{};
      },
      [&](const std::string& g, pubsub::PartitionId p) { return broker_->CommittedOffset(g, p); });

  // Remote run: the SAME workload against a fresh topic, over the socket.
  auto c = client::Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(c.ok()) << c.status().message();
  client::Client& cl = **c;
  ASSERT_TRUE(cl.CreateTopic("t2", {.partitions = kPartitions}).ok());
  for (const Op& op : ops) {
    if (op.kind == Op::Kind::kCommit) {
      // Remote commits read back so the sequence is fully applied in order.
      auto rb = cl.Commit(op.group + "@remote", op.partition, op.offset,
                          net::CommitMode::kCommitReadBack);
      ASSERT_TRUE(rb.ok());
    } else {
      ASSERT_TRUE(cl.Publish("t2", op.key, op.value,
                             op.kind == Op::Kind::kPublishExplicit
                                 ? std::optional<pubsub::PartitionId>(op.partition)
                                 : std::nullopt)
                      .ok());
    }
  }
  const Image remote = Drain(
      [&](pubsub::PartitionId p) {
        auto r = cl.Fetch("t2", p, 0, kMessages);
        EXPECT_TRUE(r.ok());
        return r.ok() ? *r : std::vector<pubsub::StoredMessage>{};
      },
      [&](const std::string& g, pubsub::PartitionId p) {
        auto r = cl.Commit(g + "@remote", p, 0, net::CommitMode::kQuery);
        EXPECT_TRUE(r.ok());
        return r.ok() ? *r : pubsub::Offset{0};
      });

  ExpectSameImage(baseline, remote);
}

TEST_F(EquivalenceTest, SubscriptionDeliveryMatchesInProcessSubscription) {
  ASSERT_TRUE(broker_->CreateTopic("sub-eq", {.partitions = 1}).ok());

  // Both subscriptions open at offset 0 before anything is published.
  std::unique_ptr<runtime::Subscription> local = broker_->Subscribe("sub-eq", 0, 0);
  ASSERT_NE(local, nullptr);
  auto c = client::Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(c.ok());
  auto remote = (*c)->Subscribe("sub-eq", 0, 0);
  ASSERT_TRUE(remote.ok());

  common::Rng rng(kSeed);
  for (int i = 0; i < 200; ++i) {
    Op op;
    op.key = "k" + std::to_string(rng.Below(17));
    op.value = "v" + std::to_string(i);
    MustPublishInProcess(*broker_, "sub-eq", op);
  }

  std::vector<pubsub::StoredMessage> local_got, remote_got;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((local_got.size() < 200 || remote_got.size() < 200) &&
         std::chrono::steady_clock::now() < deadline) {
    if (local_got.size() < 200) {
      local->Wait(10'000);
      local->PollBatch(&local_got, 200 - local_got.size());
    }
    if (remote_got.size() < 200) {
      (*remote)->Poll(&remote_got, 200 - remote_got.size(), 10'000);
    }
  }
  ASSERT_EQ(local_got.size(), 200u);
  ASSERT_EQ(remote_got.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(local_got[i].offset, remote_got[i].offset);
    EXPECT_EQ(local_got[i].message.key, remote_got[i].message.key);
    EXPECT_EQ(local_got[i].message.value, remote_got[i].message.value);
  }
}

// In-process watch baseline: collects the callback stream.
class CollectingCallback : public watch::WatchCallback {
 public:
  void OnEvent(const common::ChangeEvent& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }
  void OnProgress(const common::ProgressEvent&) override {}
  void OnResync() override {
    std::lock_guard<std::mutex> lock(mu_);
    resynced_ = true;
  }

  std::vector<common::ChangeEvent> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<common::ChangeEvent> events_;
  bool resynced_ = false;
};

TEST_F(EquivalenceTest, WatchStreamMatchesInProcessWatch) {
  CollectingCallback baseline;
  std::unique_ptr<watch::WatchHandle> local = watch_->Watch("a", "q", 0, &baseline);
  ASSERT_NE(local, nullptr);

  auto c = client::Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(c.ok());
  auto remote = (*c)->Watch("a", "q", 0);
  ASSERT_TRUE(remote.ok());

  // Keys both inside and outside [a, q): range filtering must agree.
  common::Rng rng(kSeed ^ 0xff);
  std::vector<common::ChangeEvent> fed;
  for (int i = 0; i < 120; ++i) {
    common::ChangeEvent ev;
    ev.key = std::string(1, static_cast<char>('a' + rng.Below(26))) + std::to_string(i);
    ev.mutation = rng.Below(4) == 0 ? common::Mutation::Delete()
                                    : common::Mutation::Put("val-" + std::to_string(i));
    ev.version = static_cast<common::Version>(i + 1);
    watch_->Append(ev);
    fed.push_back(ev);
  }

  std::size_t expected = 0;
  for (const common::ChangeEvent& ev : fed) {
    if (ev.key >= "a" && ev.key < "q") ++expected;
  }
  ASSERT_GT(expected, 0u);

  // Drain the remote stream until it has as many events as the baseline
  // expects, then compare element-wise against the in-process callback log.
  std::vector<common::ChangeEvent> remote_events;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (remote_events.size() < expected && std::chrono::steady_clock::now() < deadline) {
    std::vector<net::WatchItem> items;
    (*remote)->Poll(&items, 20'000);
    for (const net::WatchItem& it : items) {
      if (it.kind == net::WatchItem::Kind::kEvent) remote_events.push_back(it.event);
    }
  }
  ASSERT_EQ(remote_events.size(), expected);
  std::vector<common::ChangeEvent> local_events;
  const auto local_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (local_events.size() < expected && std::chrono::steady_clock::now() < local_deadline) {
    local_events = baseline.events();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(local_events.size(), expected);

  // Per-key order is the watch contract; shard-split ranges may interleave
  // keys differently, so compare per-key subsequences.
  auto by_key = [](const std::vector<common::ChangeEvent>& events) {
    std::map<std::string, std::vector<std::pair<common::Version, std::string>>> m;
    for (const common::ChangeEvent& ev : events) {
      m[ev.key].push_back({ev.version, ev.mutation.kind == common::MutationKind::kPut
                                           ? ev.mutation.value
                                           : "<del>"});
    }
    return m;
  };
  EXPECT_EQ(by_key(local_events), by_key(remote_events));
}

}  // namespace
}  // namespace server
