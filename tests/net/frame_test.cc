// Wire-protocol framing: encode/decode round trips for every payload codec,
// incremental decoding under pathological chunking, and the robustness
// corpus — truncated, bit-flipped, oversized, version-mismatched, and
// garbage streams must all surface as typed FrameErrors (terminal, loud),
// never as hangs, bogus frames, or UB.
#include "net/frame_decoder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "net/messages.h"
#include "net/wire.h"

namespace net {
namespace {

std::string OneFrame(Verb verb, std::uint64_t rid, const std::string& payload) {
  std::string out;
  EncodeFrame(out, verb, rid, payload);
  return out;
}

// Feeds `bytes` in chunks of `chunk` and collects every decoded frame
// (payloads copied out — the views die at the next Feed).
struct Decoded {
  std::vector<Verb> verbs;
  std::vector<std::uint64_t> rids;
  std::vector<std::string> payloads;
  FrameError error = FrameError::kNone;
};

Decoded RunDecoder(const std::string& bytes, std::size_t chunk, std::size_t max_payload = kMaxPayload) {
  FrameDecoder dec(max_payload);
  Decoded out;
  for (std::size_t at = 0; at < bytes.size(); at += chunk) {
    dec.Feed(std::string_view(bytes).substr(at, chunk));
    Frame f;
    for (;;) {
      const FrameDecoder::Result r = dec.Next(&f);
      if (r == FrameDecoder::Result::kFrame) {
        out.verbs.push_back(f.verb);
        out.rids.push_back(f.request_id);
        out.payloads.emplace_back(f.payload);
      } else if (r == FrameDecoder::Result::kNeedMore) {
        break;
      } else {
        out.error = dec.error();
        return out;
      }
    }
  }
  return out;
}

TEST(FrameTest, RoundTripsAcrossChunkSizes) {
  std::string stream;
  stream += OneFrame(Verb::kHello, 1, "hello-payload");
  stream += OneFrame(Verb::kPublish, 2, std::string(1000, 'x'));
  stream += OneFrame(Verb::kHeartbeat, 3, "");
  stream += OneFrame(Verb::kGoodbye, 0xdeadbeefcafef00dULL, "bye");
  for (std::size_t chunk : {1u, 2u, 3u, 7u, 23u, 24u, 25u, 1000u, 100000u}) {
    const Decoded got = RunDecoder(stream, chunk);
    ASSERT_EQ(got.error, FrameError::kNone) << "chunk " << chunk;
    ASSERT_EQ(got.verbs.size(), 4u) << "chunk " << chunk;
    EXPECT_EQ(got.verbs[1], Verb::kPublish);
    EXPECT_EQ(got.rids[3], 0xdeadbeefcafef00dULL);
    EXPECT_EQ(got.payloads[0], "hello-payload");
    EXPECT_EQ(got.payloads[1], std::string(1000, 'x'));
    EXPECT_EQ(got.payloads[2], "");
    EXPECT_EQ(got.payloads[3], "bye");
  }
}

TEST(FrameTest, TruncationIsNeedMoreWhileOpenAndVisibleAtEof) {
  const std::string frame = OneFrame(Verb::kPublish, 7, "payload-bytes");
  // Every proper prefix: a clean partial frame, never an error.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    FrameDecoder dec;
    dec.Feed(std::string_view(frame).substr(0, cut));
    Frame f;
    EXPECT_EQ(dec.Next(&f), FrameDecoder::Result::kNeedMore) << "cut " << cut;
    EXPECT_FALSE(dec.failed());
    // The owner detects the mid-frame death at EOF: bytes still buffered.
    EXPECT_EQ(dec.BytesBuffered() > 0, cut > 0);
  }
}

TEST(FrameTest, BitFlipsAreTypedErrorsNeverFrames) {
  const std::string frame = OneFrame(Verb::kPublish, 9, "the quick brown fox");
  int header_errors = 0, payload_errors = 0;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = frame;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      FrameDecoder dec;
      dec.Feed(corrupt);
      Frame f;
      const FrameDecoder::Result r = dec.Next(&f);
      // A flipped byte may turn the frame into a longer one (length bits) —
      // kNeedMore is acceptable only if the decoder is still clean; what can
      // never happen is a successfully decoded frame with corrupt content.
      if (r == FrameDecoder::Result::kFrame) {
        ADD_FAILURE() << "bit flip at byte " << i << " bit " << bit << " produced a frame";
      } else if (r == FrameDecoder::Result::kError) {
        EXPECT_TRUE(dec.failed());
        EXPECT_NE(dec.error(), FrameError::kNone);
        if (dec.error() == FrameError::kHeaderCorrupt) ++header_errors;
        if (dec.error() == FrameError::kPayloadCorrupt) ++payload_errors;
      }
    }
  }
  // The corpus must actually exercise both CRC layers.
  EXPECT_GT(header_errors, 0);
  EXPECT_GT(payload_errors, 0);
}

TEST(FrameTest, VersionMismatchIsTyped) {
  // A CRC-sealed header from a future protocol revision: the version check
  // (not the CRC) must reject it, with its own typed error.
  const std::string payload = "v";
  std::string raw;
  PutU16(raw, kMagic);
  raw.push_back(static_cast<char>(kProtocolVersion + 1));
  raw.push_back(static_cast<char>(Verb::kHello));
  PutU32(raw, static_cast<std::uint32_t>(payload.size()));
  PutU64(raw, 1);
  PutU32(raw, wal::MaskCrc(wal::Crc32c(payload)));
  PutU32(raw, wal::MaskCrc(wal::Crc32c(std::string_view(raw).substr(0, 20))));
  raw += payload;
  FrameDecoder dec;
  dec.Feed(raw);
  Frame f;
  ASSERT_EQ(dec.Next(&f), FrameDecoder::Result::kError);
  EXPECT_EQ(dec.error(), FrameError::kBadVersion);
}

TEST(FrameTest, BadMagicBadVerbOversizedAreTyped) {
  {
    std::string garbage = "GET / HTTP/1.1\r\nHost: localhost\r\n\r\n";
    FrameDecoder dec;
    dec.Feed(garbage);
    Frame f;
    ASSERT_EQ(dec.Next(&f), FrameDecoder::Result::kError);
    EXPECT_EQ(dec.error(), FrameError::kBadMagic);
  }
  {
    // Structurally valid header, unknown verb, valid CRCs.
    std::string raw;
    PutU16(raw, kMagic);
    raw.push_back(static_cast<char>(kProtocolVersion));
    raw.push_back(static_cast<char>(200));  // Unknown verb.
    PutU32(raw, 0);
    PutU64(raw, 1);
    PutU32(raw, wal::MaskCrc(wal::Crc32c("")));
    PutU32(raw, wal::MaskCrc(wal::Crc32c(raw.substr(0, 20))));
    FrameDecoder dec;
    dec.Feed(raw);
    Frame f;
    ASSERT_EQ(dec.Next(&f), FrameDecoder::Result::kError);
    EXPECT_EQ(dec.error(), FrameError::kBadVerb);
  }
  {
    // Payload length beyond the decoder's negotiated bound, CRC-sealed: the
    // decoder must reject from the header alone, before buffering 1 MB.
    std::string raw;
    PutU16(raw, kMagic);
    raw.push_back(static_cast<char>(kProtocolVersion));
    raw.push_back(static_cast<char>(Verb::kPublish));
    PutU32(raw, 1u << 20);
    PutU64(raw, 1);
    PutU32(raw, wal::MaskCrc(wal::Crc32c("")));
    PutU32(raw, wal::MaskCrc(wal::Crc32c(raw.substr(0, 20))));
    FrameDecoder dec(/*max_payload=*/1024);
    dec.Feed(raw);
    Frame f;
    ASSERT_EQ(dec.Next(&f), FrameDecoder::Result::kError);
    EXPECT_EQ(dec.error(), FrameError::kOversized);
  }
}

TEST(FrameTest, ErrorsAreTerminal) {
  FrameDecoder dec;
  dec.Feed("garbage-not-a-frame-at-all------");
  Frame f;
  ASSERT_EQ(dec.Next(&f), FrameDecoder::Result::kError);
  const FrameError first = dec.error();
  // A valid frame after the poison changes nothing: no resync on a broken
  // stream.
  dec.Feed(OneFrame(Verb::kHello, 1, "x"));
  EXPECT_EQ(dec.Next(&f), FrameDecoder::Result::kError);
  EXPECT_EQ(dec.error(), first);
  EXPECT_EQ(dec.frames_decoded(), 0u);
}

TEST(FrameTest, RandomizedGarbageCorpusNeverYieldsAFrame) {
  // Deterministic fuzz corpus: random byte blobs (which essentially never
  // carry a valid masked CRC32C) must always land in a typed error or a
  // clean kNeedMore — and never decode as a frame.
  common::Rng rng(0xfeedface);
  for (int round = 0; round < 500; ++round) {
    const std::size_t len = 1 + rng.Below(200);
    std::string blob;
    blob.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      blob.push_back(static_cast<char>(rng.Below(256)));
    }
    FrameDecoder dec;
    dec.Feed(blob);
    Frame f;
    const FrameDecoder::Result r = dec.Next(&f);
    EXPECT_NE(r, FrameDecoder::Result::kFrame) << "round " << round;
  }
}

TEST(FrameTest, RandomizedCorruptionOfValidStreams) {
  // A valid multi-frame stream with one random mutation applied: any frames
  // decoded before the mutation point must be byte-identical to the
  // originals, and the stream must never decode MORE frames than sent.
  common::Rng rng(0xabad1dea);
  std::string stream;
  std::vector<std::string> sent;
  for (int i = 0; i < 8; ++i) {
    std::string payload;
    const std::size_t plen = rng.Below(300);
    for (std::size_t b = 0; b < plen; ++b) {
      payload.push_back(static_cast<char>(rng.Below(256)));
    }
    sent.push_back(payload);
    EncodeFrame(stream, Verb::kPublish, i, payload);
  }
  for (int round = 0; round < 300; ++round) {
    std::string corrupt = stream;
    const std::size_t at = rng.Below(corrupt.size());
    const char delta = static_cast<char>(1 + rng.Below(255));
    corrupt[at] = static_cast<char>(corrupt[at] ^ delta);
    const Decoded got = RunDecoder(corrupt, 1 + rng.Below(64));
    ASSERT_LE(got.payloads.size(), sent.size());
    for (std::size_t i = 0; i < got.payloads.size(); ++i) {
      EXPECT_EQ(got.payloads[i], sent[i]) << "round " << round;
    }
  }
}

TEST(FrameTest, MessageCodecsRoundTrip) {
  {
    HelloRequest in{3, "bench-client"};
    std::string p;
    Encode(in, &p);
    HelloRequest out;
    ASSERT_TRUE(Decode(p, &out));
    EXPECT_EQ(out.wire_version, 3u);
    EXPECT_EQ(out.client_name, "bench-client");
  }
  {
    PublishRequest in;
    in.topic = "orders";
    in.ack = PublishAck::kOffset;
    in.has_partition = true;
    in.partition = 7;
    in.key = "k1";
    in.value = std::string(300, 'v');
    in.publish_time = 12345;
    std::string p;
    Encode(in, &p);
    PublishRequest out;
    ASSERT_TRUE(Decode(p, &out));
    EXPECT_EQ(out.topic, "orders");
    EXPECT_EQ(out.ack, PublishAck::kOffset);
    EXPECT_TRUE(out.has_partition);
    EXPECT_EQ(out.partition, 7u);
    EXPECT_EQ(out.value, in.value);
  }
  {
    MessageBatch in;
    for (int i = 0; i < 5; ++i) {
      pubsub::StoredMessage m;
      m.offset = 100 + i;
      m.message.key = "k" + std::to_string(i);
      m.message.value = "v" + std::to_string(i);
      m.message.publish_time = i;
      in.messages.push_back(m);
    }
    std::string p;
    Encode(in, &p);
    MessageBatch out;
    ASSERT_TRUE(Decode(p, &out));
    ASSERT_EQ(out.messages.size(), 5u);
    EXPECT_EQ(out.messages[4].offset, 104u);
    EXPECT_EQ(out.messages[4].message.value, "v4");
  }
  {
    WatchPush in;
    WatchItem ev;
    ev.kind = WatchItem::Kind::kEvent;
    ev.event.key = "watched";
    ev.event.mutation = common::Mutation::Put("val");
    ev.event.version = 42;
    in.items.push_back(ev);
    WatchItem prog;
    prog.kind = WatchItem::Kind::kProgress;
    prog.progress.range = {"a", "z"};
    prog.progress.version = 43;
    in.items.push_back(prog);
    WatchItem resync;
    resync.kind = WatchItem::Kind::kResync;
    in.items.push_back(resync);
    std::string p;
    Encode(in, &p);
    WatchPush out;
    ASSERT_TRUE(Decode(p, &out));
    ASSERT_EQ(out.items.size(), 3u);
    EXPECT_EQ(out.items[0].event.key, "watched");
    EXPECT_EQ(out.items[0].event.version, 42u);
    EXPECT_EQ(out.items[1].progress.range.high, "z");
    EXPECT_EQ(out.items[2].kind, WatchItem::Kind::kResync);
  }
  {
    ErrorBody in{static_cast<std::uint32_t>(common::StatusCode::kUnavailable), 250,
                 "shard saturated"};
    std::string p;
    Encode(in, &p);
    ErrorBody out;
    ASSERT_TRUE(Decode(p, &out));
    EXPECT_EQ(out.retry_after_us, 250);
    EXPECT_EQ(out.message, "shard saturated");
  }
}

TEST(FrameTest, FilterBlocksRoundTripAndV1ShapesStillDecode) {
  // A v2 SUBSCRIBE with a full filter block round-trips every field.
  SubscribeRequest in;
  in.topic = "orders";
  in.partition = 3;
  in.start = 1000;
  in.max_batch = 64;
  in.has_filter = true;
  in.filter.range = {"aa", "bz"};
  in.filter.key_prefix = "b";
  in.filter.headers.push_back({"region", pubsub::HeaderPredicate::Op::kEq, "eu"});
  in.filter.headers.push_back({"tier", pubsub::HeaderPredicate::Op::kExists, ""});
  std::string p;
  Encode(in, &p);
  SubscribeRequest out;
  ASSERT_TRUE(Decode(p, &out));
  ASSERT_TRUE(out.has_filter);
  EXPECT_EQ(out.filter.range.low, "aa");
  EXPECT_EQ(out.filter.range.high, "bz");
  EXPECT_EQ(out.filter.key_prefix, "b");
  ASSERT_EQ(out.filter.headers.size(), 2u);
  EXPECT_EQ(out.filter.headers[0].name, "region");
  EXPECT_EQ(out.filter.headers[0].op, pubsub::HeaderPredicate::Op::kEq);
  EXPECT_EQ(out.filter.headers[0].value, "eu");
  EXPECT_EQ(out.filter.headers[1].op, pubsub::HeaderPredicate::Op::kExists);

  // The filterless encoding is the v1 shape: it must end at max_batch and
  // decode as unfiltered (old clients and new servers agree byte for byte).
  SubscribeRequest v1;
  v1.topic = "orders";
  std::string v1_bytes;
  Encode(v1, &v1_bytes);
  EXPECT_LT(v1_bytes.size(), p.size());
  SubscribeRequest v1_out;
  v1_out.has_filter = true;  // Must be reset by decode.
  ASSERT_TRUE(Decode(v1_bytes, &v1_out));
  EXPECT_FALSE(v1_out.has_filter);

  // Same deal for WATCH and for PUBLISH's optional header block.
  WatchRequest w;
  w.low = "a";
  w.high = "m";
  w.version = 7;
  w.has_filter = true;
  w.filter.range = {"a", "m"};
  w.filter.key_prefix = "ab";
  p.clear();
  Encode(w, &p);
  WatchRequest wout;
  ASSERT_TRUE(Decode(p, &wout));
  ASSERT_TRUE(wout.has_filter);
  EXPECT_EQ(wout.filter.key_prefix, "ab");
  w.has_filter = false;
  w.filter = {};
  p.clear();
  Encode(w, &p);
  wout.has_filter = true;
  ASSERT_TRUE(Decode(p, &wout));
  EXPECT_FALSE(wout.has_filter);

  PublishRequest pub;
  pub.topic = "t";
  pub.key = "k";
  pub.value = "v";
  pub.headers = {{"h0", "x"}, {"h1", "y"}};
  p.clear();
  Encode(pub, &p);
  PublishRequest pout;
  ASSERT_TRUE(Decode(p, &pout));
  EXPECT_EQ(pout.headers, pub.headers);
  pub.headers.clear();
  p.clear();
  Encode(pub, &p);
  pout.headers = {{"stale", "stale"}};
  ASSERT_TRUE(Decode(p, &pout));
  EXPECT_TRUE(pout.headers.empty());
}

TEST(FrameTest, FilterFrameBitFlipsAndTruncationsNeverDecode) {
  // The full fuzz demanded by the protocol: a SUBSCRIBE/WATCH frame carrying
  // a filter block, with every byte bit-flipped — the frame CRCs must refuse
  // all of them (no corrupted filter ever reaches the codec) — and every
  // payload truncation must fail the codec, except the one prefix that IS
  // the valid v1 shape, which must decode as unfiltered, never as a mangled
  // filter.
  SubscribeRequest sub;
  sub.topic = "t";
  sub.max_batch = 32;
  sub.has_filter = true;
  sub.filter.range = {"k0", "k9"};
  sub.filter.key_prefix = "k";
  sub.filter.headers.push_back({"h", pubsub::HeaderPredicate::Op::kNe, "x"});
  std::string sub_payload;
  Encode(sub, &sub_payload);

  WatchRequest wreq;
  wreq.low = "a";
  wreq.high = "z";
  wreq.has_filter = true;
  wreq.filter.range = {"a", "z"};
  wreq.filter.key_prefix = "ab";
  std::string watch_payload;
  Encode(wreq, &watch_payload);

  for (const auto& [verb, payload] :
       {std::pair<Verb, std::string>{Verb::kSubscribe, sub_payload},
        std::pair<Verb, std::string>{Verb::kWatch, watch_payload}}) {
    const std::string frame = OneFrame(verb, 11, payload);
    for (std::size_t i = 0; i < frame.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string corrupt = frame;
        corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
        FrameDecoder dec;
        dec.Feed(corrupt);
        Frame f;
        if (dec.Next(&f) == FrameDecoder::Result::kFrame) {
          ADD_FAILURE() << "flip at byte " << i << " bit " << bit << " yielded a frame";
        }
      }
    }

    // Payload truncations: every strict prefix either fails the codec or is
    // exactly the v1 boundary (decodes with no filter). A truncation landing
    // inside the filter block can never "shrink" into a smaller valid
    // filter.
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      const std::string_view prefix = std::string_view(payload).substr(0, cut);
      if (verb == Verb::kSubscribe) {
        SubscribeRequest out;
        if (Decode(prefix, &out)) {
          EXPECT_FALSE(out.has_filter) << "cut " << cut;
        }
      } else {
        WatchRequest out;
        if (Decode(prefix, &out)) {
          EXPECT_FALSE(out.has_filter) << "cut " << cut;
        }
      }
    }
  }

  // A present-but-false filter flag is a malformation, not "no filter":
  // the only legal encodings are absence or Bool(true)+block.
  SubscribeRequest plain;
  plain.topic = "t";
  std::string mangled;
  Encode(plain, &mangled);
  mangled.push_back('\0');  // Bool(false) where a filter block could start.
  SubscribeRequest out;
  EXPECT_FALSE(Decode(mangled, &out));

  // Random slices of the filter block spliced onto a v1 payload: never a
  // silent success with has_filter set from garbage.
  common::Rng rng(0x51f7e2);
  const std::size_t v1_len = mangled.size() - 1;
  for (int round = 0; round < 300; ++round) {
    std::string spliced = mangled.substr(0, v1_len);
    const std::size_t n = 1 + rng.Below(sub_payload.size());
    for (std::size_t i = 0; i < n; ++i) {
      spliced.push_back(static_cast<char>(rng.Below(256)));
    }
    SubscribeRequest sout;
    if (Decode(spliced, &sout) && sout.has_filter) {
      // Decoding random bytes as a filter is allowed only if it parsed
      // fully and self-consistently — ops in range, exact end.
      for (const pubsub::HeaderPredicate& pred : sout.filter.headers) {
        EXPECT_LE(static_cast<int>(pred.op),
                  static_cast<int>(pubsub::HeaderPredicate::Op::kNe));
      }
    }
  }
}

TEST(FrameTest, MalformedPayloadsRejectLoudly) {
  // Trailing bytes, truncated strings, and out-of-range enums all fail the
  // codec — a schema mismatch is as terminal as a CRC miss.
  PublishRequest req;
  req.topic = "t";
  std::string good;
  Encode(req, &good);
  {
    PublishRequest out;
    EXPECT_FALSE(Decode(good + "x", &out));  // Trailing byte.
  }
  {
    PublishRequest out;
    EXPECT_FALSE(Decode(std::string_view(good).substr(0, good.size() - 1), &out));
  }
  {
    CommitRequest c;
    c.mode = CommitMode::kQuery;
    std::string p;
    Encode(c, &p);
    p[p.size() - 1] = 9;  // Mode out of range.
    CommitRequest out;
    EXPECT_FALSE(Decode(p, &out));
  }
  {
    std::string empty;
    HelloResponse out;
    EXPECT_FALSE(Decode(empty, &out));
  }
}

}  // namespace
}  // namespace net
