// Loopback suite for pubsubd: every verb over a real TCP connection, the
// handshake contract, protocol-violation teardowns, heartbeat dead-peer
// detection, and end-to-end backpressure (ERROR frames carrying the shard's
// retry_after hint). Raw sockets exercise the protocol edges the client
// library refuses to produce; client::Client covers the functional paths.
#include "server/pubsubd.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "net/frame_decoder.h"
#include "net/messages.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/collector.h"
#include "runtime/concurrent_broker.h"
#include "runtime/concurrent_watch.h"
#include "runtime/shard_pool.h"

namespace server {
namespace {

using common::Status;
using common::StatusCode;

void SleepUs(std::int64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

// One pool + broker + watch + server, torn down in the required order.
struct Harness {
  explicit Harness(runtime::RuntimeOptions pool_options = {}, ServerOptions server_options = {}) {
    pool_options.obs = &obs;
    server_options.obs = &obs;
    pool = std::make_unique<runtime::ShardPool>(pool_options);
    broker = std::make_unique<runtime::ConcurrentBroker>(pool.get());
    watch = std::make_unique<runtime::ConcurrentWatchService>(pool.get());
    pool->Start();
    server = std::make_unique<Server>(broker.get(), watch.get(), &pool->metrics(),
                                      server_options);
    const Status st = server->Start();
    EXPECT_TRUE(st.ok()) << st.message();
  }

  ~Harness() {
    server->Stop();
    pool->Stop();
  }

  common::Result<std::unique_ptr<client::Client>> Connect(client::ClientOptions options = {}) {
    return client::Client::Connect("127.0.0.1", server->port(), std::move(options));
  }

  // True once `pred` holds, polling up to `deadline_us`.
  template <typename Pred>
  bool Eventually(Pred pred, std::int64_t deadline_us = 5'000'000) {
    for (std::int64_t waited = 0; waited < deadline_us; waited += 2000) {
      if (pred()) return true;
      SleepUs(2000);
    }
    return pred();
  }

  bool SawSessionBreak(const std::string& cause) {
    for (const obs::ObsEvent& e : obs.Events()) {
      if (e.kind == obs::EventKind::kSessionBreak && e.cause == cause) return true;
    }
    return false;
  }

  common::MetricsRegistry obs_metrics;
  obs::Collector obs{&obs_metrics};
  std::unique_ptr<runtime::ShardPool> pool;
  std::unique_ptr<runtime::ConcurrentBroker> broker;
  std::unique_ptr<runtime::ConcurrentWatchService> watch;
  std::unique_ptr<Server> server;
};

// A raw frame-speaking socket for protocol-edge tests: hand-built frames in,
// decoded frames out, no client-library guardrails.
struct RawConn {
  explicit RawConn(int port) {
    common::Result<net::Fd> r = net::TcpConnect("127.0.0.1", port);
    EXPECT_TRUE(r.ok());
    fd = std::move(r).value();
  }

  void SendRaw(const std::string& bytes) {
    EXPECT_TRUE(net::WriteAll(fd.get(), bytes.data(), bytes.size()).ok());
  }

  void Send(net::Verb verb, std::uint64_t rid, const std::string& payload) {
    std::string out;
    net::EncodeFrame(out, verb, rid, payload);
    SendRaw(out);
  }

  void Hello(const std::string& name = "raw") {
    net::HelloRequest req;
    req.client_name = name;
    std::string p;
    net::Encode(req, &p);
    Send(net::Verb::kHello, 1, p);
    net::Frame f;
    ASSERT_TRUE(Recv(&f));
    ASSERT_EQ(f.verb, net::Verb::kHello);
  }

  // Reads until one frame decodes (payload copied into `payload`). False on
  // EOF/timeout.
  bool Recv(net::Frame* out, std::int64_t timeout_us = 5'000'000) {
    for (;;) {
      const net::FrameDecoder::Result r = decoder.Next(out);
      if (r == net::FrameDecoder::Result::kFrame) {
        payload.assign(out->payload);
        out->payload = payload;
        return true;
      }
      if (r == net::FrameDecoder::Result::kError) return false;
      if (!net::WaitReadable(fd.get(), timeout_us)) return false;
      char buf[4096];
      std::size_t n = 0;
      const net::IoStatus io = net::ReadSome(fd.get(), buf, sizeof(buf), &n);
      if (io != net::IoStatus::kOk) return false;
      decoder.Feed({buf, n});
    }
  }

  // True when the server closes the connection (EOF) within the deadline.
  bool AwaitClose(std::int64_t timeout_us = 5'000'000) {
    net::Frame f;
    while (Recv(&f, timeout_us)) {
    }
    char buf[256];
    std::size_t n = 0;
    return net::ReadSome(fd.get(), buf, sizeof(buf), &n) == net::IoStatus::kEof;
  }

  net::Fd fd;
  net::FrameDecoder decoder;
  std::string payload;
};

TEST(ServerTest, HelloHandshakeAdvertisesContract) {
  ServerOptions so;
  so.name = "pubsubd-test";
  so.heartbeat_interval_us = 250'000;
  so.heartbeat_misses = 4;
  so.max_payload = 1u << 16;
  Harness h({}, so);

  auto c = h.Connect({.client_name = "hello-test"});
  ASSERT_TRUE(c.ok()) << c.status().message();
  const net::HelloResponse& hello = (*c)->server_hello();
  EXPECT_EQ(hello.wire_version, net::kProtocolVersion);
  EXPECT_EQ(hello.server_name, "pubsubd-test");
  EXPECT_EQ(hello.heartbeat_interval_us, 250'000);
  EXPECT_EQ(hello.heartbeat_misses, 4u);
  EXPECT_EQ(hello.max_payload, 1u << 16);

  common::Result<common::TimeMicros> rtt = (*c)->Ping();
  ASSERT_TRUE(rtt.ok());
  EXPECT_GE(*rtt, 0);
}

TEST(ServerTest, RequestBeforeHelloIsRefusedAndFatal) {
  Harness h;
  RawConn raw(h.server->port());
  net::PublishRequest req;
  req.topic = "t";
  std::string p;
  net::Encode(req, &p);
  raw.Send(net::Verb::kPublish, 5, p);

  net::Frame f;
  ASSERT_TRUE(raw.Recv(&f));
  EXPECT_EQ(f.verb, net::Verb::kError);
  EXPECT_EQ(f.request_id, 5u);
  net::ErrorBody err;
  ASSERT_TRUE(net::Decode(f.payload, &err));
  EXPECT_EQ(err.code, static_cast<std::uint32_t>(StatusCode::kFailedPrecondition));
  EXPECT_TRUE(raw.AwaitClose());
}

TEST(ServerTest, PublishFetchAllAckLevels) {
  Harness h;
  auto c = h.Connect();
  ASSERT_TRUE(c.ok());
  client::Client& cl = **c;

  ASSERT_TRUE(cl.CreateTopic("orders", {.partitions = 2}).ok());
  // Duplicate creation is the broker's error, propagated over the wire.
  const Status dup = cl.CreateTopic("orders", {.partitions = 2});
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  // Publishing to a topic that does not exist is loud.
  const Status missing = cl.Publish("nope", "k", "v");
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);

  // kOffset: the ack carries the assigned partition/offset.
  pubsub::PublishResult pr;
  ASSERT_TRUE(cl.Publish("orders", "k0", "v0", 0, net::PublishAck::kOffset, &pr).ok());
  EXPECT_EQ(pr.partition, 0u);
  EXPECT_EQ(pr.offset, 0u);
  ASSERT_TRUE(cl.Publish("orders", "k1", "v1", 0, net::PublishAck::kOffset, &pr).ok());
  EXPECT_EQ(pr.offset, 1u);

  // kAccept: acceptance-level ack, no offset.
  ASSERT_TRUE(cl.Publish("orders", "k2", "v2", 0, net::PublishAck::kAccept).ok());

  // kNone: fire-and-forget; no response frame. A later synchronous call
  // fences it (frames are processed in order by the loop).
  ASSERT_TRUE(cl.Publish("orders", "k3", "v3", 0, net::PublishAck::kNone).ok());
  ASSERT_TRUE(cl.Ping().ok());

  ASSERT_TRUE(h.Eventually([&] {
    auto got = cl.Fetch("orders", 0, 0, 100);
    return got.ok() && got->size() == 4;
  }));
  auto got = cl.Fetch("orders", 0, 0, 100);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 4u);
  EXPECT_EQ((*got)[0].message.value, "v0");
  EXPECT_EQ((*got)[3].message.value, "v3");
  EXPECT_EQ((*got)[3].offset, 3u);

  // Fetch from a mid-log offset.
  auto tail = cl.Fetch("orders", 0, 2, 100);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 2u);
  EXPECT_EQ((*tail)[0].message.key, "k2");
}

TEST(ServerTest, CommitModesRoundTrip) {
  Harness h;
  auto c = h.Connect();
  ASSERT_TRUE(c.ok());
  client::Client& cl = **c;

  // Plain commit acks acceptance; the read-back then observes it.
  ASSERT_TRUE(cl.Commit("g1", 0, 41, net::CommitMode::kCommit).ok());
  auto rb = cl.Commit("g1", 0, 42, net::CommitMode::kCommitReadBack);
  ASSERT_TRUE(rb.ok());
  // Commit+read run as one owner-shard task: the read-back can never see a
  // pre-commit value.
  EXPECT_EQ(*rb, 42u);

  auto q = cl.Commit("g1", 0, 0, net::CommitMode::kQuery);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 42u);

  // Unknown group queries read the broker's default (0), same as in-process.
  auto other = cl.Commit("never-seen", 3, 0, net::CommitMode::kQuery);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(*other, 0u);
}

TEST(ServerTest, SubscribeStreamsInOrderAndCancels) {
  Harness h;
  auto c = h.Connect();
  ASSERT_TRUE(c.ok());
  client::Client& cl = **c;
  ASSERT_TRUE(cl.CreateTopic("stream", {.partitions = 1}).ok());

  auto sub = cl.Subscribe("stream", 0, 0);
  ASSERT_TRUE(sub.ok()) << sub.status().message();

  // Publish from a second connection while the first long-polls: deliveries
  // ride the event-driven doorbell, not a fetch the subscriber issued.
  auto p = h.Connect();
  ASSERT_TRUE(p.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*p)->Publish("stream", "k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }

  std::vector<pubsub::StoredMessage> got;
  while (got.size() < 20) {
    const std::size_t n = (*sub)->Poll(&got, 20 - got.size(), 5'000'000);
    ASSERT_GT(n, 0u) << "stream stalled at " << got.size();
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(got[i].offset, static_cast<pubsub::Offset>(i));
    EXPECT_EQ(got[i].message.value, "v" + std::to_string(i));
  }

  // Cancel tears the stream down server-side; subsequent publishes stay in
  // the log but are never pushed.
  (*sub)->Cancel();
  ASSERT_TRUE((*p)->Publish("stream", "late", "late").ok());
  std::vector<pubsub::StoredMessage> after;
  EXPECT_EQ((*sub)->Poll(&after, 10, 50'000), 0u);

  // The shard-side waiter is reclaimed, not leaked.
  ASSERT_TRUE(h.Eventually([&] {
    std::size_t pending = 0;
    h.pool->RunFenced([&] {
      for (std::size_t s = 0; s < h.pool->options().shards; ++s) {
        pending += h.pool->core(s).broker->PendingWaiters();
      }
    });
    return pending == 0;
  }));
}

TEST(ServerTest, WatchStreamsEventsProgressAndResync) {
  Harness h;
  auto c = h.Connect();
  ASSERT_TRUE(c.ok());
  client::Client& cl = **c;

  auto w = cl.Watch("a", "z", 0);
  ASSERT_TRUE(w.ok()) << w.status().message();

  common::ChangeEvent ev;
  ev.key = "k1";
  ev.mutation = common::Mutation::Put("v1");
  ev.version = 1;
  h.watch->Append(ev);
  ev.key = "k2";
  ev.mutation = common::Mutation::Delete();
  ev.version = 2;
  h.watch->Append(ev);

  std::vector<net::WatchItem> items;
  while ([&] {
    std::size_t events = 0;
    for (const net::WatchItem& it : items) {
      if (it.kind == net::WatchItem::Kind::kEvent) ++events;
    }
    return events < 2;
  }()) {
    ASSERT_GT((*w)->Poll(&items, 5'000'000), 0u) << "watch stalled";
  }
  std::vector<net::WatchItem> events;
  for (const net::WatchItem& it : items) {
    if (it.kind == net::WatchItem::Kind::kEvent) events.push_back(it);
  }
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].event.key, "k1");
  EXPECT_EQ(events[0].event.mutation.kind, common::MutationKind::kPut);
  EXPECT_EQ(events[0].event.mutation.value, "v1");
  EXPECT_EQ(events[1].event.key, "k2");
  EXPECT_EQ(events[1].event.mutation.kind, common::MutationKind::kDelete);
  EXPECT_FALSE((*w)->resynced());
  (*w)->Cancel();
}

TEST(ServerTest, WatchRefusedWithoutWatchService) {
  // A pubsub-only deployment: WATCH is a typed refusal, not a crash.
  common::MetricsRegistry obs_metrics;
  obs::Collector obs(&obs_metrics);
  runtime::RuntimeOptions po;
  po.obs = &obs;
  runtime::ShardPool pool(po);
  runtime::ConcurrentBroker broker(&pool);
  pool.Start();
  Server server(&broker, /*watch=*/nullptr, &pool.metrics(), {});
  ASSERT_TRUE(server.Start().ok());
  {
    auto c = client::Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(c.ok());
    auto w = (*c)->Watch("a", "z", 0);
    ASSERT_FALSE(w.ok());
    EXPECT_EQ(w.status().code(), StatusCode::kFailedPrecondition);
    // The connection survives the refusal.
    EXPECT_TRUE((*c)->Ping().ok());
  }
  server.Stop();
  pool.Stop();
}

TEST(ServerTest, SlowWatcherIsCutToResync) {
  // A watcher that never drains: the server's bounded watch queue overflows,
  // the stream is cut to a terminal resync item (W3 for push streams), and
  // the cut is loud (counter + obs event).
  ServerOptions so;
  so.max_watch_queue = 16;
  so.send_buffer_limit = 1024;  // Tiny, so frames back up server-side.
  Harness h({}, so);

  auto c = h.Connect();
  ASSERT_TRUE(c.ok());
  auto w = (*c)->Watch("", "", 0);
  ASSERT_TRUE(w.ok());

  // Flood without ever polling the watch.
  common::ChangeEvent ev;
  for (int i = 0; i < 5000; ++i) {
    ev.key = "k" + std::to_string(i % 26);
    ev.mutation = common::Mutation::Put(std::string(128, 'x'));
    ev.version = static_cast<common::Version>(i + 1);
    h.watch->Append(ev);
  }

  // Drain client-side until the terminal resync arrives.
  ASSERT_TRUE(h.Eventually([&] {
    std::vector<net::WatchItem> items;
    (*w)->Poll(&items, 100'000);
    return (*w)->resynced();
  }, 10'000'000));
  EXPECT_TRUE(h.SawSessionBreak("slow_watcher"));
  EXPECT_GE(h.pool->metrics().counter("net.watch_overflows").value(), 1u);

  // After the resync nothing further arrives (W4 on the wire).
  std::vector<net::WatchItem> items;
  EXPECT_EQ((*w)->Poll(&items, 50'000), 0u);
}

TEST(ServerTest, HeartbeatKeepsQuietSessionAliveAndDeadPeerIsReaped) {
  ServerOptions so;
  so.heartbeat_interval_us = 30'000;
  so.heartbeat_misses = 3;
  Harness h({}, so);

  // Client A: auto-heartbeat on, totally idle — must survive many windows.
  auto alive = h.Connect();
  ASSERT_TRUE(alive.ok());
  // Client B: heartbeats off — must be detected within the dead-peer window.
  auto dead = h.Connect({.auto_heartbeat = false});
  ASSERT_TRUE(dead.ok());

  ASSERT_TRUE(h.Eventually([&] { return h.server->sessions_closed() >= 1; }, 3'000'000));
  EXPECT_TRUE(h.SawSessionBreak("heartbeat_miss"));
  EXPECT_GE(h.pool->metrics().counter("net.heartbeat_misses").value(), 1u);

  // The idle-but-beating client is untouched.
  EXPECT_TRUE((*alive)->Ping().ok());
  EXPECT_FALSE((*alive)->broken());
}

TEST(ServerTest, FrameCorruptionTearsSessionDownLoudly) {
  Harness h;
  {
    RawConn raw(h.server->port());
    raw.Hello();
    raw.SendRaw("this is definitely not a frame");
    net::Frame f;
    // Best-effort connection-level ERROR (request id 0), then close.
    if (raw.Recv(&f)) {
      EXPECT_EQ(f.verb, net::Verb::kError);
      EXPECT_EQ(f.request_id, 0u);
    }
    EXPECT_TRUE(raw.AwaitClose());
  }
  ASSERT_TRUE(h.Eventually([&] { return h.SawSessionBreak("frame_error:bad_magic"); }));
  EXPECT_GE(h.pool->metrics().counter("net.frame_errors").value(), 1u);

  {
    // Mid-frame death: header promises a payload that never comes.
    RawConn raw(h.server->port());
    raw.Hello();
    std::string frame;
    net::EncodeFrame(frame, net::Verb::kPublish, 9, std::string(500, 'p'));
    raw.SendRaw(frame.substr(0, frame.size() - 100));
    raw.fd.Close();
  }
  ASSERT_TRUE(h.Eventually([&] { return h.SawSessionBreak("truncated_frame"); }));

  // A server-enforced payload bound tighter than the protocol ceiling.
  {
    ServerOptions so;
    so.max_payload = 1024;
    Harness small({}, so);
    RawConn raw(small.server->port());
    raw.Hello();
    raw.Send(net::Verb::kPublish, 3, std::string(4096, 'x'));
    EXPECT_TRUE(raw.AwaitClose());
    ASSERT_TRUE(small.Eventually([&] { return small.SawSessionBreak("frame_error:oversized"); }));
  }
}

TEST(ServerTest, MalformedPayloadAndUnexpectedVerbAreTypedFailures) {
  Harness h;
  {
    // Valid frame, garbage payload for the verb's schema.
    RawConn raw(h.server->port());
    raw.Hello();
    raw.Send(net::Verb::kPublish, 7, "\x01\x02\x03");
    net::Frame f;
    ASSERT_TRUE(raw.Recv(&f));
    EXPECT_EQ(f.verb, net::Verb::kError);
    EXPECT_EQ(f.request_id, 7u);
    net::ErrorBody err;
    ASSERT_TRUE(net::Decode(f.payload, &err));
    EXPECT_EQ(err.code, static_cast<std::uint32_t>(StatusCode::kInvalidArgument));
    EXPECT_TRUE(raw.AwaitClose());
  }
  {
    // A push verb has no business arriving client→server.
    RawConn raw(h.server->port());
    raw.Hello();
    net::MessageBatch batch;
    std::string p;
    net::Encode(batch, &p);
    raw.Send(net::Verb::kDeliver, 8, p);
    net::Frame f;
    ASSERT_TRUE(raw.Recv(&f));
    EXPECT_EQ(f.verb, net::Verb::kError);
    EXPECT_TRUE(raw.AwaitClose());
  }
}

TEST(ServerTest, BackpressurePropagatesRetryAfterOverTheWire) {
  // A 1-shard pool with a tiny queue: stall the worker, fill the queue, and
  // a remote publish must come back kUnavailable with the shard's hint —
  // then succeed once the shard drains (the client's bounded retry loop).
  runtime::RuntimeOptions po;
  po.shards = 1;
  po.queue_capacity = 4;
  po.retry_after = 5'000;
  Harness h(po);

  auto c = h.Connect({.max_backpressure_retries = 0});  // Surface the error.
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE((*c)->CreateTopic("bp", {.partitions = 1}).ok());

  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  h.pool->Post(0, [&] {
    started.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) SleepUs(500);
  });
  // Fill only once the stall task is running: filling earlier races with the
  // worker's batched drain, which can scoop the whole queue (stall included)
  // into its local batch and leave room for the publish below.
  while (!started.load(std::memory_order_acquire)) SleepUs(100);
  while (h.pool->TryPost(0, [] {})) {
  }

  const Status st = (*c)->Publish("bp", "k", "v");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_GE(h.pool->metrics().counter("net.backpressure_errors").value(), 1u);

  release.store(true, std::memory_order_release);

  // With the retry budget restored, the same publish rides the hint out.
  auto retrying = h.Connect();
  ASSERT_TRUE(retrying.ok());
  EXPECT_TRUE((*retrying)->Publish("bp", "k2", "v2").ok());
}

TEST(ServerTest, GoodbyeIsGracefulNotASessionBreak) {
  Harness h;
  {
    auto c = h.Connect();
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE((*c)->Ping().ok());
  }  // ~Client sends GOODBYE.
  ASSERT_TRUE(h.Eventually([&] { return h.server->sessions_closed() == 1; }));
  for (const obs::ObsEvent& e : h.obs.Events()) {
    EXPECT_NE(e.kind, obs::EventKind::kSessionBreak)
        << "graceful close logged as a break: " << e.cause;
  }
}

TEST(ServerTest, MaxConnectionsRefusesTheOverflowConnection) {
  ServerOptions so;
  so.max_connections = 2;
  Harness h({}, so);

  auto a = h.Connect();
  auto b = h.Connect();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // The third connection is refused at accept: ERROR then close, before any
  // handshake.
  RawConn raw(h.server->port());
  EXPECT_TRUE(raw.AwaitClose());
  EXPECT_GE(h.pool->metrics().counter("net.accept_rejected").value(), 1u);
  // Existing sessions are unaffected.
  EXPECT_TRUE((*a)->Ping().ok());
  EXPECT_TRUE((*b)->Ping().ok());
}

TEST(ServerTest, PeriodicModePoolStillServesSubscriptions) {
  // event_driven=false: the server falls back to pumping subscriptions at
  // the pool's poll period instead of doorbell nudges.
  runtime::RuntimeOptions po;
  po.event_driven = false;
  po.subscription_poll_period = 2'000;
  Harness h(po);

  auto c = h.Connect();
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE((*c)->CreateTopic("periodic", {.partitions = 1}).ok());
  auto sub = (*c)->Subscribe("periodic", 0, 0);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE((*c)->Publish("periodic", "k", "v").ok());

  std::vector<pubsub::StoredMessage> got;
  ASSERT_TRUE(h.Eventually([&] {
    (*sub)->Poll(&got, 10, 100'000);
    return !got.empty();
  }));
  EXPECT_EQ(got[0].message.value, "v");
}

}  // namespace
}  // namespace server
