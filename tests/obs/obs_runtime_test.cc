// Observability under the concurrent runtime (designed to also run under
// TSan): tracing across producer threads and shard workers, per-shard
// histogram families, delivery-lag gauges sampled at quiesce, and the
// guarantee that tracing never perturbs the runtime's exact accounting.
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/types.h"
#include "obs/collector.h"
#include "obs/trace.h"
#include "runtime/concurrent_broker.h"
#include "runtime/concurrent_watch.h"
#include "runtime/shard_pool.h"

namespace runtime {
namespace {

class CountingCallback : public watch::WatchCallback {
 public:
  void OnEvent(const common::ChangeEvent&) override { events.fetch_add(1); }
  void OnProgress(const common::ProgressEvent&) override {}
  void OnResync() override { resyncs.fetch_add(1); }

  std::atomic<std::uint64_t> events{0};
  std::atomic<int> resyncs{0};
};

class ObsRuntimeTest : public ::testing::Test {
 protected:
  ~ObsRuntimeTest() override { obs::SetTracingEnabled(false); }
};

TEST_F(ObsRuntimeTest, WatchPathTracedAcrossThreadsWithExactAccounting) {
  constexpr int kProducers = 2;
  constexpr int kPerProducer = 500;
  constexpr std::size_t kShards = 2;

  common::MetricsRegistry registry;
  obs::Collector collector(&registry, {.shards = kShards});
  RuntimeOptions options;
  options.shards = kShards;
  options.obs = &collector;
  options.watch_splits = {"e"};  // Keys a*..d* on shard 0, e*..h* on shard 1.
  ShardPool pool(options, &registry);
  ConcurrentWatchService watch(&pool);
  pool.Start();

  CountingCallback cb;
  auto handle = watch.Watch(common::Key(), common::Key(), 0, &cb);

  obs::SetTracingEnabled(true);
  std::atomic<std::int64_t> accepted{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        common::ChangeEvent event;
        event.key = std::string(1, static_cast<char>('a' + (i % 8))) + std::to_string(t);
        event.mutation = common::Mutation::Put("v");
        event.version = static_cast<common::Version>(t) * 1000000 + i + 1;
        if (watch.TryIngest(event).ok()) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  pool.Quiesce();
  pool.Stop();

  // Tracing changed nothing semantically: exact delivery accounting holds.
  ASSERT_EQ(cb.resyncs.load(), 0);
  EXPECT_EQ(cb.events.load(), static_cast<std::uint64_t>(accepted.load()));
  // Every delivered event completed a watch-path trace.
  EXPECT_EQ(collector.traces_completed(), static_cast<std::uint64_t>(accepted.load()));
  EXPECT_EQ(registry.histogram("obs.watch.origin_to_ack_us").count(),
            static_cast<std::size_t>(accepted.load()));
  // Per-shard families partition the aggregate.
  const std::size_t s0 = registry.histogram("obs.s0.watch.append_to_deliver_us").count();
  const std::size_t s1 = registry.histogram("obs.s1.watch.append_to_deliver_us").count();
  EXPECT_EQ(s0 + s1, static_cast<std::size_t>(accepted.load()));
  EXPECT_GT(s0, 0u);  // The key spread covers both shards.
  EXPECT_GT(s1, 0u);
  // The worst-trace sampler retained complete stage breakdowns.
  auto worst = collector.WorstTraces();
  ASSERT_FALSE(worst.empty());
  EXPECT_GT(worst[0].at[static_cast<std::size_t>(obs::Stage::kAck)], 0);
}

TEST_F(ObsRuntimeTest, QuiesceSamplesBacklogLagAndQueueDepthGauges) {
  constexpr std::size_t kShards = 2;
  common::MetricsRegistry registry;
  obs::Collector collector(&registry, {.shards = kShards});
  RuntimeOptions options;
  options.shards = kShards;
  options.obs = &collector;
  ShardPool pool(options, &registry);
  ConcurrentBroker broker(&pool);
  ConcurrentWatchService watch(&pool);
  pool.Start();

  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 2}).ok());
  ASSERT_TRUE(broker.JoinGroup("g", "t", "m1").ok());
  // The fenced join rebalanced every shard's coordinator, with a cause.
  EXPECT_EQ(registry.counter("obs.event.rebalance.member_join").value(),
            static_cast<std::int64_t>(kShards));

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(broker
                    .PublishSync("t", {"k" + std::to_string(i), "m", 0},
                                 static_cast<pubsub::PartitionId>(i % 2))
                    .ok());
  }
  broker.CommitOffset("g", 0, 3);  // Shard 0 backlog: 5-3; shard 1: all 5.

  CountingCallback cb;
  auto handle = watch.Watch(common::Key(), common::Key(), 0, &cb);
  for (common::Version v = 1; v <= 6; ++v) {
    watch.Append(common::ChangeEvent{"k" + std::to_string(v), common::Mutation::Put("v"),
                                     v, true});
  }
  pool.Quiesce();  // Samples the gauges inside the fence.
  pool.Stop();

  EXPECT_EQ(registry.gauge("obs.pubsub.group_backlog").value(), 7);
  EXPECT_EQ(registry.gauge("obs.s0.pubsub.group_backlog").value(), 2);
  EXPECT_EQ(registry.gauge("obs.s1.pubsub.group_backlog").value(), 5);
  // No progress was ever fed, so the session's lag is the ingest frontier.
  EXPECT_EQ(registry.gauge("obs.watch.max_session_lag").value(), 6);
  EXPECT_EQ(registry.gauge("obs.s0.queue_depth").value(), 0);
  EXPECT_EQ(registry.gauge("obs.s1.queue_depth").value(), 0);
  // The snapshot surfaces everything in one quiesced read.
  const std::string json = obs::DumpJson(collector);
  EXPECT_NE(json.find("obs.pubsub.group_backlog"), std::string::npos);
  EXPECT_NE(json.find("member_join"), std::string::npos);
}

TEST_F(ObsRuntimeTest, TracingDisabledLeavesRuntimeRecordsUntraced) {
  common::MetricsRegistry registry;
  obs::Collector collector(&registry, {.shards = 1});
  RuntimeOptions options;
  options.shards = 1;
  options.obs = &collector;
  ShardPool pool(options, &registry);
  ConcurrentWatchService watch(&pool);
  pool.Start();
  CountingCallback cb;
  auto handle = watch.Watch(common::Key(), common::Key(), 0, &cb);
  ASSERT_TRUE(
      watch.TryIngest(common::ChangeEvent{"k", common::Mutation::Put("v"), 1, true}).ok());
  pool.Quiesce();
  pool.Stop();
  EXPECT_EQ(cb.events.load(), 1u);
  EXPECT_EQ(collector.traces_completed(), 0u);
  EXPECT_TRUE(collector.TakeSnapshot().stages.empty());
}

}  // namespace
}  // namespace runtime
