// Tests for the observability layer: TraceContext semantics, Collector
// histogram/event/sampler behaviour, trace-exclusion from record equality,
// and end-to-end stage coverage on both delivery paths in the simulated
// (single-threaded) composition.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cdc/feeds.h"
#include "common/metrics.h"
#include "common/types.h"
#include "obs/collector.h"
#include "obs/trace.h"
#include "pubsub/broker.h"
#include "pubsub/consumer.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/watch_system.h"

namespace obs {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;

// Every test must leave the global tracing flag off: the rest of the suite
// (determinism / equivalence tests) assumes untraced records.
class ObsTest : public ::testing::Test {
 protected:
  ~ObsTest() override { SetTracingEnabled(false); }
};

// -- TraceContext ---------------------------------------------------------------

TEST_F(ObsTest, DefaultContextIsInactiveAndStampsAreNoOps) {
  TraceContext t;
  EXPECT_FALSE(t.active());
  t.Stamp(Stage::kAppend, 123);
  EXPECT_EQ(t.stamp(Stage::kAppend), 0);
}

TEST_F(ObsTest, StartIsInactiveWhileTracingDisabled) {
  SetTracingEnabled(false);
  EXPECT_FALSE(TracingEnabled());
  EXPECT_FALSE(TraceContext::Start().active());
}

TEST_F(ObsTest, StartStampsOriginAndAllocatesUniqueIds) {
  SetTracingEnabled(true);
  TraceContext a = TraceContext::Start();
  TraceContext b = TraceContext::Start();
  ASSERT_TRUE(a.active());
  ASSERT_TRUE(b.active());
  EXPECT_NE(a.id, b.id);
  EXPECT_GT(a.stamp(Stage::kOrigin), 0);
  a.Stamp(Stage::kDeliver, a.stamp(Stage::kOrigin) + 5);
  EXPECT_EQ(a.stamp(Stage::kDeliver), a.stamp(Stage::kOrigin) + 5);
}

// -- Equality excludes the trace -------------------------------------------------

TEST_F(ObsTest, ChangeEventEqualityIgnoresTrace) {
  common::ChangeEvent a{"k", common::Mutation::Put("v"), 3, true};
  common::ChangeEvent b = a;
  b.trace.id = 42;
  b.trace.at[0] = 12345;
  EXPECT_EQ(a, b);  // Tracing is measurement, not semantics.
  b.version = 4;
  EXPECT_FALSE(a == b);
}

TEST_F(ObsTest, MessageEqualityIgnoresTrace) {
  pubsub::Message a{"k", "payload", 7};
  pubsub::Message b = a;
  b.trace.id = 42;
  EXPECT_EQ(a, b);
  b.value = "other";
  EXPECT_FALSE(a == b);
}

// -- Collector ------------------------------------------------------------------

// An active trace with chosen stamps (no global flag needed).
TraceContext ManualTrace(std::uint64_t id,
                         std::initializer_list<std::pair<Stage, std::int64_t>> stamps) {
  TraceContext t;
  t.id = id;
  for (const auto& [stage, at] : stamps) {
    t.Stamp(stage, at);
  }
  return t;
}

TEST_F(ObsTest, CompleteRecordsConsecutivePairsBridgingUnstampedStages) {
  common::MetricsRegistry registry;
  Collector collector(&registry);
  // kFeed and kFetch unstamped: the watch path bridges straight over them.
  collector.Complete(Path::kWatch, ManualTrace(1, {{Stage::kOrigin, 100},
                                                   {Stage::kAppend, 150},
                                                   {Stage::kDeliver, 400},
                                                   {Stage::kAck, 450}}));
  EXPECT_EQ(collector.traces_completed(), 1u);
  EXPECT_EQ(registry.counter("obs.traces_completed").value(), 1);
  auto& pair = registry.histogram("obs.watch.origin_to_append_us");
  ASSERT_EQ(pair.count(), 1u);
  EXPECT_DOUBLE_EQ(pair.Max(), 50.0);
  EXPECT_EQ(registry.histogram("obs.watch.append_to_deliver_us").count(), 1u);
  EXPECT_DOUBLE_EQ(registry.histogram("obs.watch.append_to_deliver_us").Max(), 250.0);
  auto& e2e = registry.histogram("obs.watch.origin_to_ack_us");
  ASSERT_EQ(e2e.count(), 1u);
  EXPECT_DOUBLE_EQ(e2e.Max(), 350.0);
}

TEST_F(ObsTest, TwoStageTraceIsNotDoubleCounted) {
  common::MetricsRegistry registry;
  Collector collector(&registry);
  // With exactly two stamps the pair IS the end-to-end: one sample, not two.
  collector.Complete(Path::kPubsub,
                     ManualTrace(1, {{Stage::kOrigin, 10}, {Stage::kAck, 30}}));
  EXPECT_EQ(registry.histogram("obs.pubsub.origin_to_ack_us").count(), 1u);
}

TEST_F(ObsTest, InactiveAndSingleStampTracesAreIgnored) {
  common::MetricsRegistry registry;
  Collector collector(&registry);
  collector.Complete(Path::kPubsub, TraceContext{});
  collector.Complete(Path::kPubsub, ManualTrace(1, {{Stage::kOrigin, 10}}));
  EXPECT_EQ(collector.traces_completed(), 0u);
  EXPECT_TRUE(collector.TakeSnapshot().stages.empty());
}

TEST_F(ObsTest, NegativeDeltasClampToZero) {
  common::MetricsRegistry registry;
  Collector collector(&registry);
  collector.Complete(Path::kPubsub, ManualTrace(1, {{Stage::kOrigin, 100},
                                                    {Stage::kAppend, 90},  // Skewed.
                                                    {Stage::kAck, 120}}));
  EXPECT_DOUBLE_EQ(registry.histogram("obs.pubsub.origin_to_append_us").Max(), 0.0);
}

TEST_F(ObsTest, ShardFamiliesRecordAlongsideAggregate) {
  common::MetricsRegistry registry;
  Collector collector(&registry, {.shards = 2});
  collector.Complete(Path::kPubsub,
                     ManualTrace(1, {{Stage::kOrigin, 10}, {Stage::kAppend, 20}}),
                     /*shard=*/1);
  EXPECT_EQ(registry.histogram("obs.pubsub.origin_to_append_us").count(), 1u);
  EXPECT_EQ(registry.histogram("obs.s1.pubsub.origin_to_append_us").count(), 1u);
  EXPECT_EQ(registry.histogram("obs.s0.pubsub.origin_to_append_us").count(), 0u);
}

TEST_F(ObsTest, OutOfRangeShardClampsToAggregateOnly) {
  common::MetricsRegistry registry;
  Collector collector(&registry, {.shards = 1});
  collector.Complete(Path::kPubsub,
                     ManualTrace(1, {{Stage::kOrigin, 10}, {Stage::kAppend, 20}}),
                     /*shard=*/5);
  EXPECT_EQ(registry.histogram("obs.pubsub.origin_to_append_us").count(), 1u);
  for (const auto& [name, h] : registry.histograms()) {
    EXPECT_EQ(name.find("obs.s5."), std::string::npos) << name;
  }
}

TEST_F(ObsTest, WorstTraceSamplerKeepsKSlowestSortedSlowestFirst) {
  common::MetricsRegistry registry;
  Collector collector(&registry, {.worst_traces = 2});
  const std::int64_t totals[] = {10, 30, 20, 5, 25};
  std::uint64_t id = 1;
  for (std::int64_t total : totals) {
    // A stamp of 0 means "stage not reached", so anchor origin at t=1.
    collector.Complete(Path::kWatch,
                       ManualTrace(id++, {{Stage::kOrigin, 1}, {Stage::kAck, 1 + total}}));
  }
  auto worst = collector.WorstTraces();
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(worst[0].total_us, 30);
  EXPECT_EQ(worst[1].total_us, 25);
  EXPECT_EQ(collector.traces_completed(), 5u);
}

TEST_F(ObsTest, EventLogIsBoundedAndCountsDropsAndCauses) {
  common::MetricsRegistry registry;
  Collector collector(&registry, {.max_events = 2});
  collector.LogEvent(EventKind::kResync, "window_floor", "session=1");
  collector.LogEvent(EventKind::kResync, "window_floor", "session=2");
  collector.LogEvent(EventKind::kRebalance, "member_join", "group=g", 1);
  auto events = collector.Events();
  ASSERT_EQ(events.size(), 2u);  // Oldest evicted.
  EXPECT_EQ(events[0].seq, 2u);
  EXPECT_EQ(events[1].cause, "member_join");
  EXPECT_EQ(events[1].shard, 1u);
  EXPECT_EQ(registry.counter("obs.event.resync.window_floor").value(), 2);
  EXPECT_EQ(registry.counter("obs.event.rebalance.member_join").value(), 1);
  EXPECT_EQ(collector.TakeSnapshot().events_dropped, 1u);
}

TEST_F(ObsTest, SnapshotExposesStagesGaugesEventsAndJson) {
  common::MetricsRegistry registry;
  Collector collector(&registry);
  registry.gauge("obs.watch.max_session_lag").Set(17);
  collector.Complete(Path::kPubsub, ManualTrace(1, {{Stage::kOrigin, 10},
                                                    {Stage::kAppend, 50},
                                                    {Stage::kAck, 110}}));
  collector.LogEvent(EventKind::kSoftStateCrash, "crash", "sessions=3");
  Snapshot snap = collector.TakeSnapshot();
  EXPECT_EQ(snap.traces_completed, 1u);
  ASSERT_FALSE(snap.stages.empty());
  bool saw_aggregate = false;
  bool saw_shard0 = false;
  for (const auto& s : snap.stages) {
    if (s.path == "pubsub" && s.from == "origin" && s.to == "append") {
      (s.shard == -1 ? saw_aggregate : saw_shard0) = true;
      EXPECT_EQ(s.count, 1u);
      EXPECT_DOUBLE_EQ(s.p50_us, 40.0);
    }
  }
  EXPECT_TRUE(saw_aggregate);  // Aggregate family plus the shard-0 family.
  EXPECT_TRUE(saw_shard0);
  bool saw_gauge = false;
  for (const auto& [name, v] : snap.gauges) {
    if (name == "obs.watch.max_session_lag") {
      saw_gauge = true;
      EXPECT_EQ(v, 17);
    }
  }
  EXPECT_TRUE(saw_gauge);

  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"traces_completed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"origin\""), std::string::npos);
  EXPECT_NE(json.find("\"soft_state_crash\""), std::string::npos);
  EXPECT_NE(json.find("\"worst_traces\""), std::string::npos);
  EXPECT_NE(json.find("obs.watch.max_session_lag"), std::string::npos);
  const std::string text = snap.ToText();
  EXPECT_NE(text.find("pubsub origin->append"), std::string::npos);
  EXPECT_NE(text.find("cause=crash"), std::string::npos);
  EXPECT_EQ(DumpJson(collector), collector.TakeSnapshot().ToJson());
}

// -- Gauge (common::Metrics addition) --------------------------------------------

TEST_F(ObsTest, GaugeIsLastWriterWinsAndResettable) {
  common::MetricsRegistry registry;
  common::Gauge& g = registry.gauge("lag");
  EXPECT_EQ(g.value(), 0);
  g.Set(42);
  g.Set(7);  // A level, not a rate: overwrites.
  EXPECT_EQ(g.value(), 7);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(registry.gauges().size(), 1u);
  registry.Reset();
  EXPECT_TRUE(registry.gauges().empty());
}

// -- Simulated end-to-end: pubsub path -------------------------------------------

TEST_F(ObsTest, PubsubPathTracedThroughPublishAppendFetchDeliverAck) {
  sim::Simulator sim;
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  pubsub::Broker broker(&sim, &net);
  common::MetricsRegistry registry;
  Collector collector(&registry);
  broker.set_obs(&collector);
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 2}).ok());

  pubsub::ConsumerOptions options;
  options.obs = &collector;
  pubsub::GroupConsumer consumer(
      &sim, &net, &broker, "g", "t", "m1",
      [](pubsub::PartitionId, const pubsub::StoredMessage&) { return true; }, options);
  consumer.Start();

  SetTracingEnabled(true);
  constexpr int kMessages = 20;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(broker.Publish("t", {"k" + std::to_string(i), "m", 0}).ok());
  }
  sim.RunUntil(2000 * kMs);
  EXPECT_EQ(consumer.delivered(), static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(collector.traces_completed(), static_cast<std::uint64_t>(kMessages));
  // Every stage pair of the pubsub pipeline was exercised.
  for (const char* name :
       {"obs.pubsub.origin_to_append_us", "obs.pubsub.append_to_fetch_us",
        "obs.pubsub.fetch_to_deliver_us", "obs.pubsub.deliver_to_ack_us",
        "obs.pubsub.origin_to_ack_us"}) {
    EXPECT_EQ(registry.histogram(name).count(), static_cast<std::size_t>(kMessages))
        << name;
  }
  // A rebalance with a cause was logged when the member joined.
  auto events = collector.Events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].kind, EventKind::kRebalance);
  EXPECT_EQ(events[0].cause, "member_join");
}

TEST_F(ObsTest, UntracedPubsubRunRecordsNothing) {
  sim::Simulator sim;
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  pubsub::Broker broker(&sim, &net);
  common::MetricsRegistry registry;
  Collector collector(&registry);
  broker.set_obs(&collector);
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  pubsub::ConsumerOptions options;
  options.obs = &collector;
  pubsub::GroupConsumer consumer(
      &sim, &net, &broker, "g", "t", "m1",
      [](pubsub::PartitionId, const pubsub::StoredMessage&) { return true; }, options);
  consumer.Start();
  ASSERT_TRUE(broker.Publish("t", {"k", "m", 0}).ok());  // Tracing off.
  sim.RunUntil(1000 * kMs);
  EXPECT_EQ(consumer.delivered(), 1u);
  EXPECT_EQ(collector.traces_completed(), 0u);
  EXPECT_TRUE(collector.TakeSnapshot().stages.empty());
}

// -- Simulated end-to-end: watch path --------------------------------------------

class CountingCallback : public watch::WatchCallback {
 public:
  void OnEvent(const common::ChangeEvent& event) override { events.push_back(event); }
  void OnProgress(const common::ProgressEvent&) override {}
  void OnResync() override { ++resyncs; }

  std::vector<common::ChangeEvent> events;
  int resyncs = 0;
};

TEST_F(ObsTest, WatchPathTracedThroughCommitFeedAppendDeliverAck) {
  sim::Simulator sim;
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore store;
  watch::WatchSystem ws(&sim, &net, "watch", {.delivery_latency = 1 * kMs});
  common::MetricsRegistry registry;
  Collector collector(&registry);
  ws.set_obs(&collector);
  cdc::CdcIngesterFeed feed(&sim, &store, nullptr, &ws, {});

  CountingCallback cb;
  auto handle = ws.Watch("", "", 0, &cb);

  SetTracingEnabled(true);
  constexpr int kCommits = 10;
  for (int i = 0; i < kCommits; ++i) {
    store.Apply("k" + std::to_string(i), common::Mutation::Put("v"));
  }
  sim.RunUntil(1000 * kMs);
  ASSERT_EQ(cb.events.size(), static_cast<std::size_t>(kCommits));
  EXPECT_EQ(collector.traces_completed(), static_cast<std::uint64_t>(kCommits));
  for (const char* name :
       {"obs.watch.origin_to_feed_us", "obs.watch.feed_to_append_us",
        "obs.watch.append_to_deliver_us", "obs.watch.deliver_to_ack_us",
        "obs.watch.origin_to_ack_us"}) {
    EXPECT_EQ(registry.histogram(name).count(), static_cast<std::size_t>(kCommits))
        << name;
  }
  // The slow sampler retained real traces with full stage breakdowns.
  auto worst = collector.WorstTraces();
  ASSERT_FALSE(worst.empty());
  EXPECT_EQ(worst[0].path, Path::kWatch);
  EXPECT_GT(worst[0].at[static_cast<std::size_t>(Stage::kAck)], 0);
}

TEST_F(ObsTest, WatchLifecycleEventsCarryCauses) {
  sim::Simulator sim;
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  watch::WatchSystem ws(&sim, &net, "watch", {.window = {.max_events = 2}});
  common::MetricsRegistry registry;
  Collector collector(&registry);
  ws.set_obs(&collector);

  for (common::Version v = 1; v <= 10; ++v) {
    ws.Append(common::ChangeEvent{"k", common::Mutation::Put("v"), v, true});
  }
  CountingCallback below;
  auto h1 = ws.Watch("", "", 1, &below);  // Below the retained floor.
  CountingCallback live;
  auto h2 = ws.Watch("", "", 10, &live);
  ws.CrashSoftState();
  sim.RunUntil(100 * kMs);

  EXPECT_EQ(registry.counter("obs.event.resync.window_floor").value(), 1);
  EXPECT_EQ(registry.counter("obs.event.soft_state_crash.crash").value(), 1);
  EXPECT_EQ(registry.counter("obs.event.resync.soft_state_crash").value(), 1);
  bool saw_floor = false;
  for (const auto& ev : collector.Events()) {
    if (ev.kind == EventKind::kResync && ev.cause == "window_floor") {
      saw_floor = true;
    }
  }
  EXPECT_TRUE(saw_floor);
}

}  // namespace
}  // namespace obs
