#include "oracle/invariant_oracle.h"

#include <deque>
#include <string>

#include <gtest/gtest.h>

#include "pubsub/broker.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "watch/watch_system.h"

namespace oracle {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;

common::ChangeEvent Ev(const std::string& key, common::Version v) {
  return common::ChangeEvent{key, common::Mutation::Put("v" + std::to_string(v)), v, true};
}

pubsub::StoredMessage Stored(pubsub::Offset offset, const std::string& key,
                             common::TimeMicros published) {
  return pubsub::StoredMessage{offset, pubsub::Message{key, "v", published}};
}

bool HasViolation(const InvariantOracle& oracle, const std::string& invariant) {
  for (const Violation& v : oracle.violations()) {
    if (v.invariant == invariant) {
      return true;
    }
  }
  return false;
}

class InvariantOracleTest : public ::testing::Test {
 protected:
  InvariantOracleTest() : net_(&sim_, {.base = 0, .jitter = 0}), oracle_(&sim_) {}

  sim::Simulator sim_;
  sim::Network net_;
  InvariantOracle oracle_;
};

// -- FindShadowedSurvivor (pure predicate behind log-compaction-shadow) --------

TEST_F(InvariantOracleTest, ShadowedSurvivorDetected) {
  // The buggy Compact kept offset 2 ("latest old copy of a") even though
  // offset 3 shadows it. The predicate must flag that exact leftover.
  std::deque<pubsub::StoredMessage> log;
  log.push_back(Stored(1, "b", 20));
  log.push_back(Stored(2, "a", 30));  // Shadowed by offset 3 — must be gone.
  log.push_back(Stored(3, "a", 90));
  auto found = FindShadowedSurvivor(log, /*horizon=*/50, /*compact_end=*/4);
  ASSERT_TRUE(found.has_value());
  EXPECT_NE(found->find("offset 2"), std::string::npos);
}

TEST_F(InvariantOracleTest, CompactionCleanLogHasNoShadowedSurvivor) {
  std::deque<pubsub::StoredMessage> log;
  log.push_back(Stored(1, "b", 20));
  log.push_back(Stored(3, "a", 90));
  EXPECT_FALSE(FindShadowedSurvivor(log, /*horizon=*/50, /*compact_end=*/4).has_value());
  // Records appended after the compaction pass (offset >= compact_end) are
  // exempt until the next pass, even if they shadow a pre-horizon record.
  log.push_back(Stored(4, "b", 95));
  EXPECT_FALSE(FindShadowedSurvivor(log, /*horizon=*/50, /*compact_end=*/4).has_value());
  // Once a pass has seen offset 4, offset 1 counts as shadowed.
  EXPECT_TRUE(FindShadowedSurvivor(log, /*horizon=*/50, /*compact_end=*/5).has_value());
  EXPECT_FALSE(FindShadowedSurvivor(log, /*horizon=*/0, /*compact_end=*/5).has_value());
}

// -- Group-coordinator invariants ----------------------------------------------

TEST_F(InvariantOracleTest, SpuriousRebalanceFlagged) {
  const std::vector<pubsub::MemberId> members = {"m1", "m2"};
  const std::map<pubsub::PartitionId, pubsub::MemberId> assignment = {{0, "m1"}, {1, "m2"}};
  oracle_.OnRebalance("g", 1, members, assignment);
  EXPECT_TRUE(oracle_.ok());
  // The old JoinGroup bug: a rejoin by an already-present member bumped the
  // generation and re-ran assignment with identical membership.
  oracle_.OnRebalance("g", 2, members, assignment);
  EXPECT_TRUE(HasViolation(oracle_, "group-spurious-rebalance"));
}

TEST_F(InvariantOracleTest, MembershipChangeRebalanceAccepted) {
  oracle_.OnRebalance("g", 1, {"m1"}, {{0, "m1"}});
  oracle_.OnRebalance("g", 2, {"m1", "m2"}, {{0, "m1"}, {1, "m2"}});
  oracle_.OnRebalance("g", 3, {"m2"}, {{0, "m2"}, {1, "m2"}});
  EXPECT_TRUE(oracle_.ok()) << oracle_.Report();
}

TEST_F(InvariantOracleTest, GenerationRegressionAndNonMemberOwnerFlagged) {
  oracle_.OnRebalance("g", 5, {"m1"}, {{0, "m1"}});
  oracle_.OnRebalance("g", 4, {"m1", "m2"}, {{0, "ghost"}});
  EXPECT_TRUE(HasViolation(oracle_, "group-generation-monotonic"));
  EXPECT_TRUE(HasViolation(oracle_, "group-assignment-soundness"));
}

// -- Watch no-gap shadow stream ------------------------------------------------

TEST_F(InvariantOracleTest, SkippedDeliveryIsAGap) {
  oracle_.OnSessionStart(7, common::KeyRange::All(), 0);
  oracle_.OnIngest(Ev("a", 1));
  oracle_.OnIngest(Ev("b", 2));
  oracle_.OnDeliver(7, Ev("b", 2));  // "a"@1 silently skipped.
  EXPECT_TRUE(HasViolation(oracle_, "watch-no-gap"));
}

TEST_F(InvariantOracleTest, InOrderDeliveryIsClean) {
  oracle_.OnIngest(Ev("a", 1));  // Pre-session history, replayed to the session.
  oracle_.OnSessionStart(7, common::KeyRange{"a", "m"}, 0);
  oracle_.OnIngest(Ev("b", 2));
  oracle_.OnIngest(Ev("z", 3));  // Out of range: not owed.
  oracle_.OnDeliver(7, Ev("a", 1));
  oracle_.OnDeliver(7, Ev("b", 2));
  EXPECT_TRUE(oracle_.ok()) << oracle_.Report();
}

TEST_F(InvariantOracleTest, ResyncDischargesOwedEvents) {
  oracle_.OnSessionStart(7, common::KeyRange::All(), 0);
  oracle_.OnIngest(Ev("a", 1));
  oracle_.OnResync(7);  // Loud fallback: the watcher re-snapshots.
  oracle_.OnDeliver(7, Ev("a", 1));  // Post-resync delivery is itself a bug.
  EXPECT_TRUE(HasViolation(oracle_, "watch-no-gap"));
}

// -- End-to-end against the real broker ----------------------------------------

TEST_F(InvariantOracleTest, RealBrokerHappyPathIsClean) {
  pubsub::Broker broker(&sim_, &net_);
  oracle_.ObserveBroker(&broker);
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 4}).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(broker.Publish("t", pubsub::Message{"k" + std::to_string(i % 5), "v",
                                                    sim_.Now()}).ok());
    sim_.RunUntil(sim_.Now() + 1 * kMs);
  }
  ASSERT_TRUE(broker.JoinGroup("g", "t", "m1").ok());
  oracle_.Check();
  ASSERT_TRUE(broker.JoinGroup("g", "t", "m2").ok());
  oracle_.Check();
  broker.CommitOffset("g", 0, 2);
  broker.CommitOffset("g", 0, 4);
  oracle_.Check();
  broker.LeaveGroup("g", "m1");
  oracle_.Check();
  EXPECT_TRUE(oracle_.ok()) << oracle_.Report();
  EXPECT_GE(oracle_.checks_run(), 4u);
}

TEST_F(InvariantOracleTest, SeekRewindIsNotACommittedRegression) {
  pubsub::Broker broker(&sim_, &net_);
  oracle_.ObserveBroker(&broker);
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(broker.Publish("t", pubsub::Message{"k", "v", (i + 1) * 10}).ok());
  }
  ASSERT_TRUE(broker.JoinGroup("g", "t", "m1").ok());
  broker.CommitOffset("g", 0, 8);
  oracle_.Check();
  // An explicit seek is the one legitimate rewind; the oracle lowers its floor.
  broker.SeekGroupToTime("g", "t", /*timestamp=*/35);
  oracle_.Check();
  EXPECT_TRUE(oracle_.ok()) << oracle_.Report();
  // But an unexplained rewind is still flagged. CommitOffset itself is
  // monotonic, so the only rewind path is a seek — detach the observer so
  // this one happens behind the oracle's back.
  broker.CommitOffset("g", 0, 7);
  oracle_.Check();  // Raises the oracle's committed floor to 7.
  broker.set_observer(nullptr);
  broker.SeekGroup("g", 0, 5);
  oracle_.Check();
  EXPECT_TRUE(HasViolation(oracle_, "group-committed-monotonic"));
}

TEST_F(InvariantOracleTest, RealWatchSystemHappyPathIsClean) {
  watch::WatchSystem ws(&sim_, &net_, "watch");
  oracle_.ObserveWatchSystem(&ws);

  class NullCallback : public watch::WatchCallback {
   public:
    void OnEvent(const watch::ChangeEvent&) override {}
    void OnProgress(const watch::ProgressEvent&) override {}
    void OnResync() override {}
  } cb;

  auto handle = ws.Watch("", "", 0, &cb);
  for (common::Version v = 1; v <= 10; ++v) {
    ws.Append(Ev("k" + std::to_string(v % 3), v));
    ws.Progress(common::ProgressEvent{common::KeyRange::All(), v});
    sim_.RunUntil(sim_.Now() + 2 * kMs);
    oracle_.Check();
  }
  sim_.RunUntil(sim_.Now() + 100 * kMs);
  oracle_.CheckQuiesced();
  EXPECT_TRUE(oracle_.ok()) << oracle_.Report();
}

}  // namespace
}  // namespace oracle
