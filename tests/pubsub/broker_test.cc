#include "pubsub/broker.h"

#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/simulator.h"

namespace pubsub {
namespace {

class BrokerTest : public ::testing::Test {
 protected:
  BrokerTest() : net_(&sim_, {.base = 0, .jitter = 0}), broker_(&sim_, &net_) {}

  sim::Simulator sim_;
  sim::Network net_;
  Broker broker_;
};

TEST_F(BrokerTest, CreateTopicValidation) {
  EXPECT_TRUE(broker_.CreateTopic("t", {.partitions = 4}).ok());
  EXPECT_EQ(broker_.CreateTopic("t", {.partitions = 1}).code(),
            common::StatusCode::kAlreadyExists);
  EXPECT_EQ(broker_.CreateTopic("bad", {.partitions = 0}).code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_EQ(broker_.PartitionCount("t"), 4u);
  EXPECT_EQ(broker_.PartitionCount("none"), 0u);
}

TEST_F(BrokerTest, PublishToMissingTopicFails) {
  auto res = broker_.Publish("nope", Message{"k", "v", 0});
  EXPECT_EQ(res.status().code(), common::StatusCode::kNotFound);
}

TEST_F(BrokerTest, KeyHashRoutingIsDeterministic) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 8}).ok());
  auto r1 = broker_.Publish("t", Message{"same-key", "v1", 0});
  auto r2 = broker_.Publish("t", Message{"same-key", "v2", 0});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->partition, r2->partition);
  EXPECT_EQ(r2->offset, r1->offset + 1);
}

TEST_F(BrokerTest, KeylessPublishRoundRobins) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 3}).ok());
  EXPECT_EQ(broker_.Publish("t", Message{"", "a", 0})->partition, 0u);
  EXPECT_EQ(broker_.Publish("t", Message{"", "b", 0})->partition, 1u);
  EXPECT_EQ(broker_.Publish("t", Message{"", "c", 0})->partition, 2u);
  EXPECT_EQ(broker_.Publish("t", Message{"", "d", 0})->partition, 0u);
}

TEST_F(BrokerTest, ExplicitPartitionRespected) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 2}).ok());
  EXPECT_EQ(broker_.Publish("t", Message{"k", "v", 0}, 1)->partition, 1u);
  EXPECT_EQ(broker_.Publish("t", Message{"k", "v", 0}, 5).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST_F(BrokerTest, FetchRoundTrip) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 1}).ok());
  broker_.Publish("t", Message{"k", "hello", 0}, 0);
  auto msgs = broker_.Fetch("t", 0, 0, 10);
  ASSERT_TRUE(msgs.ok());
  ASSERT_EQ(msgs->size(), 1u);
  EXPECT_EQ((*msgs)[0].message.value, "hello");
}

TEST_F(BrokerTest, PublishStampsSimTime) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 1}).ok());
  sim_.RunUntil(12345);
  broker_.Publish("t", Message{"k", "v", 0}, 0);
  auto msgs = broker_.Fetch("t", 0, 0, 1);
  EXPECT_EQ((*msgs)[0].message.publish_time, 12345);
}

TEST_F(BrokerTest, RetentionEnforcedPeriodically) {
  ASSERT_TRUE(broker_.CreateTopic(
      "t", {.partitions = 1,
            .retention = {.retention = 1 * common::kMicrosPerSecond}}).ok());
  broker_.Publish("t", Message{"k", "old", 0}, 0);
  sim_.RunUntil(3 * common::kMicrosPerSecond);  // GC timer fires at 500ms cadence.
  EXPECT_EQ(broker_.TotalGced("t"), 1u);
  EXPECT_EQ(broker_.FirstOffset("t", 0), 1u);
}

TEST_F(BrokerTest, GroupJoinAssignsAllPartitions) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 4}).ok());
  const std::uint64_t gen = *broker_.JoinGroup("g", "t", "m1");
  auto assigned = broker_.AssignedPartitions("g", "m1", gen);
  EXPECT_EQ(assigned.size(), 4u);
}

TEST_F(BrokerTest, RebalanceSplitsPartitionsAcrossMembers) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 4}).ok());
  (void)broker_.JoinGroup("g", "t", "m1");
  const std::uint64_t gen = *broker_.JoinGroup("g", "t", "m2");
  auto a1 = broker_.AssignedPartitions("g", "m1", gen);
  auto a2 = broker_.AssignedPartitions("g", "m2", gen);
  EXPECT_EQ(a1.size(), 2u);
  EXPECT_EQ(a2.size(), 2u);
}

TEST_F(BrokerTest, StaleGenerationGetsNothing) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 2}).ok());
  const std::uint64_t old_gen = *broker_.JoinGroup("g", "t", "m1");
  (void)broker_.JoinGroup("g", "t", "m2");  // Bumps generation.
  EXPECT_TRUE(broker_.AssignedPartitions("g", "m1", old_gen).empty());
}

TEST_F(BrokerTest, LeaveGroupReassigns) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 2}).ok());
  (void)broker_.JoinGroup("g", "t", "m1");
  (void)broker_.JoinGroup("g", "t", "m2");
  broker_.LeaveGroup("g", "m2");
  const std::uint64_t gen = broker_.GroupGeneration("g");
  EXPECT_EQ(broker_.AssignedPartitions("g", "m1", gen).size(), 2u);
}

TEST_F(BrokerTest, DeadMemberEvictedAfterSessionTimeout) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 2}).ok());
  broker_.set_session_timeout(1 * common::kMicrosPerSecond);
  (void)broker_.JoinGroup("g", "t", "m1");
  (void)broker_.JoinGroup("g", "t", "m2");
  // m1 heartbeats; m2 goes silent.
  for (int i = 1; i <= 10; ++i) {
    sim_.At(i * 300 * common::kMicrosPerMilli, [this] { broker_.Heartbeat("g", "m1"); });
  }
  sim_.RunUntil(3 * common::kMicrosPerSecond);
  const std::uint64_t gen = broker_.GroupGeneration("g");
  EXPECT_EQ(broker_.AssignedPartitions("g", "m1", gen).size(), 2u);
  EXPECT_TRUE(broker_.AssignedPartitions("g", "m2", gen).empty());
}

TEST_F(BrokerTest, JoinGroupWithDifferentTopicRejected) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 2}).ok());
  ASSERT_TRUE(broker_.CreateTopic("other", {.partitions = 2}).ok());
  const std::uint64_t gen = *broker_.JoinGroup("g", "t", "m1");
  // A late joiner naming a different topic must not hijack the group.
  auto res = broker_.JoinGroup("g", "other", "m2");
  EXPECT_EQ(res.status().code(), common::StatusCode::kFailedPrecondition);
  // The original binding and assignment are untouched.
  EXPECT_EQ(broker_.GroupGeneration("g"), gen);
  EXPECT_EQ(broker_.AssignedPartitions("g", "m1", gen).size(), 2u);
  EXPECT_TRUE(broker_.AssignedPartitions("g", "m2", gen).empty());
}

TEST_F(BrokerTest, RejoinByPresentMemberKeepsGeneration) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 4}).ok());
  (void)broker_.JoinGroup("g", "t", "m1");
  const std::uint64_t gen = *broker_.JoinGroup("g", "t", "m2");
  // A heartbeat-style rejoin must not invalidate everyone's assignments.
  EXPECT_EQ(*broker_.JoinGroup("g", "t", "m1"), gen);
  EXPECT_EQ(broker_.GroupGeneration("g"), gen);
  EXPECT_EQ(broker_.AssignedPartitions("g", "m1", gen).size(), 2u);
  EXPECT_EQ(broker_.AssignedPartitions("g", "m2", gen).size(), 2u);
}

TEST_F(BrokerTest, RejoinRefreshesHeartbeat) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 1}).ok());
  broker_.set_session_timeout(1 * common::kMicrosPerSecond);
  (void)broker_.JoinGroup("g", "t", "m1");
  // Rejoins (not Heartbeat calls) keep m1 alive across the sweep cadence.
  for (int i = 1; i <= 10; ++i) {
    sim_.At(i * 300 * common::kMicrosPerMilli,
            [this] { (void)broker_.JoinGroup("g", "t", "m1"); });
  }
  sim_.RunUntil(3 * common::kMicrosPerSecond);
  const std::uint64_t gen = broker_.GroupGeneration("g");
  EXPECT_EQ(broker_.AssignedPartitions("g", "m1", gen).size(), 1u);
}

TEST_F(BrokerTest, CommittedOffsetsMonotonic) {
  broker_.CommitOffset("g", 0, 5);
  broker_.CommitOffset("g", 0, 3);  // Regression ignored.
  EXPECT_EQ(broker_.CommittedOffset("g", 0), 5u);
  EXPECT_EQ(broker_.CommittedOffset("g", 1), 0u);
  EXPECT_EQ(broker_.CommittedOffset("other", 0), 0u);
}

TEST_F(BrokerTest, GroupBacklogSumsLagAcrossPartitions) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 2}).ok());
  for (int i = 0; i < 6; ++i) {
    broker_.Publish("t", Message{"", "v", 0});  // Round robin: 3 per partition.
  }
  EXPECT_EQ(broker_.GroupBacklog("g", "t"), 6u);
  broker_.CommitOffset("g", 0, 2);
  EXPECT_EQ(broker_.GroupBacklog("g", "t"), 4u);
}


TEST_F(BrokerTest, SeekGroupRewindsForReplay) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 1}).ok());
  for (int i = 0; i < 5; ++i) {
    broker_.Publish("t", Message{"k", std::to_string(i), 0}, 0);
  }
  broker_.CommitOffset("g", 0, 5);
  EXPECT_EQ(broker_.GroupBacklog("g", "t"), 0u);
  // Replay from offset 2: messages 2..4 become pending again.
  broker_.SeekGroup("g", 0, 2);
  EXPECT_EQ(broker_.CommittedOffset("g", 0), 2u);
  EXPECT_EQ(broker_.GroupBacklog("g", "t"), 3u);
}

TEST_F(BrokerTest, SeekToTimeLandsOnFirstMessageAtOrAfter) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 1}).ok());
  sim_.RunUntil(100);
  broker_.Publish("t", Message{"k", "early", 0}, 0);   // publish_time 100.
  sim_.RunUntil(200);
  broker_.Publish("t", Message{"k", "late", 0}, 0);    // publish_time 200.
  broker_.CommitOffset("g", 0, 2);
  broker_.SeekGroupToTime("g", "t", 150);
  EXPECT_EQ(broker_.CommittedOffset("g", 0), 1u);  // The "late" message.
  broker_.SeekGroupToTime("g", "t", 500);          // Future: nothing replays.
  EXPECT_EQ(broker_.CommittedOffset("g", 0), 2u);
}

TEST_F(BrokerTest, SeekToTimeMatchesFullScanEquivalent) {
  ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 2}).ok());
  for (int i = 0; i < 20; ++i) {
    sim_.RunUntil((i + 1) * 10);
    broker_.Publish("t", Message{"k" + std::to_string(i % 5), "v", 0},
                    static_cast<PartitionId>(i % 2));
  }
  for (common::TimeMicros ts : {0, 55, 101, 150, 200, 999}) {
    broker_.SeekGroupToTime("g", "t", ts);
    for (PartitionId p = 0; p < 2; ++p) {
      // Reference: the first retained message at or after ts, by full read.
      auto all = broker_.Fetch("t", p, 0, 0);
      ASSERT_TRUE(all.ok());
      Offset want = broker_.EndOffset("t", p);
      for (const StoredMessage& m : *all) {
        if (m.message.publish_time >= ts) {
          want = m.offset;
          break;
        }
      }
      EXPECT_EQ(broker_.CommittedOffset("g", p), want) << "ts=" << ts << " p=" << p;
    }
  }
}

TEST_F(BrokerTest, SeekBelowRetainedHistorySilentlyLandsAtEarliest) {
  ASSERT_TRUE(broker_.CreateTopic(
      "t", {.partitions = 1, .retention = {.max_messages = 2}}).ok());
  for (int i = 0; i < 5; ++i) {
    broker_.Publish("t", Message{"k", std::to_string(i), 0}, 0);
  }
  // Offsets 0..2 are gone. Seeking to 0 succeeds, then the fetch quietly
  // begins at 3 — the §3.3 critique: an ad hoc storage API with no
  // out-of-range signal.
  broker_.SeekGroup("g", 0, 0);
  auto msgs = broker_.Fetch("t", 0, broker_.CommittedOffset("g", 0), 10);
  ASSERT_TRUE(msgs.ok());
  ASSERT_FALSE(msgs->empty());
  EXPECT_EQ((*msgs)[0].offset, 3u);
}

}  // namespace
}  // namespace pubsub
