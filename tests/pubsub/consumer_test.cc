#include "pubsub/consumer.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pubsub/broker.h"
#include "pubsub/producer.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pubsub {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

class ConsumerTest : public ::testing::Test {
 protected:
  ConsumerTest() : net_(&sim_, {.base = 0, .jitter = 0}), broker_(&sim_, &net_) {
    EXPECT_TRUE(broker_.CreateTopic("t", {.partitions = 4}).ok());
  }

  void PublishN(int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(broker_.Publish("t", Message{"key" + std::to_string(i),
                                               "v" + std::to_string(i), 0}).ok());
    }
  }

  sim::Simulator sim_;
  sim::Network net_;
  Broker broker_;
};

TEST_F(ConsumerTest, SingleMemberReceivesEverything) {
  std::vector<std::string> got;
  GroupConsumer c(&sim_, &net_, &broker_, "g", "t", "m1",
                  [&](PartitionId, const StoredMessage& m) {
                    got.push_back(m.message.value);
                    return true;
                  });
  c.Start();
  PublishN(20);
  sim_.RunUntil(1 * kSec);
  EXPECT_EQ(got.size(), 20u);
  EXPECT_EQ(c.delivered(), 20u);
  EXPECT_EQ(broker_.GroupBacklog("g", "t"), 0u);
}

TEST_F(ConsumerTest, GroupMembersPartitionTheWork) {
  std::map<std::string, int> per_member;
  auto handler = [&per_member](const std::string& who) {
    return [&per_member, who](PartitionId, const StoredMessage&) {
      ++per_member[who];
      return true;
    };
  };
  GroupConsumer c1(&sim_, &net_, &broker_, "g", "t", "m1", handler("m1"));
  GroupConsumer c2(&sim_, &net_, &broker_, "g", "t", "m2", handler("m2"));
  c1.Start();
  c2.Start();
  PublishN(40);
  sim_.RunUntil(1 * kSec);
  EXPECT_EQ(per_member["m1"] + per_member["m2"], 40);
  EXPECT_GT(per_member["m1"], 0);
  EXPECT_GT(per_member["m2"], 0);
}

TEST_F(ConsumerTest, EachMessageDeliveredToExactlyOneGroupMember) {
  std::multiset<std::string> seen;
  auto handler = [&seen](PartitionId, const StoredMessage& m) {
    seen.insert(m.message.value);
    return true;
  };
  GroupConsumer c1(&sim_, &net_, &broker_, "g", "t", "m1", handler);
  GroupConsumer c2(&sim_, &net_, &broker_, "g", "t", "m2", handler);
  GroupConsumer c3(&sim_, &net_, &broker_, "g", "t", "m3", handler);
  c1.Start();
  c2.Start();
  c3.Start();
  PublishN(30);
  sim_.RunUntil(1 * kSec);
  EXPECT_EQ(seen.size(), 30u);
  for (const auto& v : seen) {
    EXPECT_EQ(seen.count(v), 1u) << v;
  }
}

TEST_F(ConsumerTest, NackCausesRedeliveryAtLeastOnce) {
  int attempts = 0;
  GroupConsumer c(&sim_, &net_, &broker_, "g", "t", "m1",
                  [&](PartitionId, const StoredMessage&) {
                    ++attempts;
                    return attempts >= 3;  // Fail twice, then succeed.
                  });
  c.Start();
  broker_.Publish("t", Message{"k", "v", 0});
  sim_.RunUntil(1 * kSec);
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(c.delivered(), 1u);
  EXPECT_EQ(broker_.GroupBacklog("g", "t"), 0u);
}

TEST_F(ConsumerTest, NackBlocksPartitionHeadOfLine) {
  // One poisoned message at the head of a partition blocks everything behind
  // it (no redelivery cap configured).
  std::vector<std::string> processed;
  GroupConsumer c(&sim_, &net_, &broker_, "g", "t", "m1",
                  [&](PartitionId, const StoredMessage& m) {
                    if (m.message.value == "poison") {
                      return false;
                    }
                    processed.push_back(m.message.value);
                    return true;
                  });
  c.Start();
  // Force same partition via explicit partition.
  broker_.Publish("t", Message{"", "poison", 0}, 0);
  broker_.Publish("t", Message{"", "behind", 0}, 0);
  sim_.RunUntil(2 * kSec);
  EXPECT_TRUE(processed.empty());
  EXPECT_GE(broker_.GroupBacklog("g", "t"), 2u);
}

TEST_F(ConsumerTest, DeadLetterUnblocksAfterMaxRedeliveries) {
  ASSERT_TRUE(broker_.CreateTopic("dlq", {.partitions = 1}).ok());
  std::vector<std::string> processed;
  GroupConsumer c(&sim_, &net_, &broker_, "g", "t", "m1",
                  [&](PartitionId, const StoredMessage& m) {
                    if (m.message.value == "poison") {
                      return false;
                    }
                    processed.push_back(m.message.value);
                    return true;
                  },
                  {.max_redeliveries = 3, .dead_letter_topic = "dlq"});
  c.Start();
  broker_.Publish("t", Message{"", "poison", 0}, 0);
  broker_.Publish("t", Message{"", "behind", 0}, 0);
  sim_.RunUntil(2 * kSec);
  EXPECT_EQ(processed, std::vector<std::string>{"behind"});
  EXPECT_EQ(c.dead_lettered(), 1u);
  auto dlq = broker_.Fetch("dlq", 0, 0, 10);
  ASSERT_TRUE(dlq.ok());
  ASSERT_EQ(dlq->size(), 1u);
  EXPECT_EQ((*dlq)[0].message.value, "poison");
}

TEST_F(ConsumerTest, CrashedMemberLosesUncommittedWorkToPeer) {
  broker_.set_session_timeout(500 * kMs);
  std::multiset<std::string> seen;
  auto handler = [&seen](PartitionId, const StoredMessage& m) {
    seen.insert(m.message.value);
    return true;
  };
  GroupConsumer c1(&sim_, &net_, &broker_, "g", "t", "m1", handler,
                   {.poll_period = 50 * kMs, .heartbeat_period = 100 * kMs});
  GroupConsumer c2(&sim_, &net_, &broker_, "g", "t", "m2", handler,
                   {.poll_period = 50 * kMs, .heartbeat_period = 100 * kMs});
  c1.Start();
  c2.Start();
  sim_.RunUntil(200 * kMs);

  // Crash m2; publish while it is down.
  net_.SetUp("m2", false);
  c2.OnCrash();
  PublishN(20);
  sim_.RunUntil(3 * kSec);  // m2 evicted; m1 takes over all partitions.
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(broker_.GroupBacklog("g", "t"), 0u);
}

TEST_F(ConsumerTest, RestartedMemberRejoins) {
  broker_.set_session_timeout(500 * kMs);
  int m1_count = 0;
  GroupConsumer c(&sim_, &net_, &broker_, "g", "t", "m1",
                  [&](PartitionId, const StoredMessage&) {
                    ++m1_count;
                    return true;
                  },
                  {.poll_period = 50 * kMs, .heartbeat_period = 100 * kMs});
  c.Start();
  sim_.RunUntil(200 * kMs);
  net_.SetUp("m1", false);
  c.OnCrash();
  sim_.RunUntil(2 * kSec);  // Evicted.
  EXPECT_TRUE(broker_.AssignedPartitions("g", "m1", broker_.GroupGeneration("g")).empty());

  net_.SetUp("m1", true);
  c.OnRestart();
  PublishN(5);
  sim_.RunUntil(4 * kSec);
  EXPECT_EQ(m1_count, 5);
}

TEST_F(ConsumerTest, ThroughputBoundedByPollBudget) {
  int count = 0;
  GroupConsumer c(&sim_, &net_, &broker_, "g", "t", "m1",
                  [&](PartitionId, const StoredMessage&) {
                    ++count;
                    return true;
                  },
                  {.poll_period = 100 * kMs, .max_poll_messages = 10});
  c.Start();
  PublishN(100);
  sim_.RunUntil(500 * kMs);  // 5 polls * 10 messages.
  EXPECT_LE(count, 50);
  EXPECT_GE(count, 40);
  sim_.RunUntil(2 * kSec);
  EXPECT_EQ(count, 100);  // Eventually drains.
}

TEST_F(ConsumerTest, FreeConsumerSeesAllMessagesFromEarliest) {
  PublishN(10);
  std::vector<std::string> got;
  FreeConsumer fc(&sim_, &net_, &broker_, "t", "fc1",
                  [&](PartitionId, const StoredMessage& m) {
                    got.push_back(m.message.value);
                    return true;
                  });
  fc.Start();
  sim_.RunUntil(1 * kSec);
  EXPECT_EQ(got.size(), 10u);
  EXPECT_EQ(fc.Backlog(), 0u);
}

TEST_F(ConsumerTest, FreeConsumerFromLatestSkipsHistory) {
  PublishN(10);
  sim_.RunUntil(100 * kMs);
  int count = 0;
  FreeConsumer fc(&sim_, &net_, &broker_, "t", "fc1",
                  [&](PartitionId, const StoredMessage&) {
                    ++count;
                    return true;
                  },
                  {}, FreeConsumer::StartAt::kLatest);
  fc.Start();
  sim_.RunUntil(200 * kMs);  // First poll initializes positions at latest.
  PublishN(5);
  sim_.RunUntil(1 * kSec);
  EXPECT_EQ(count, 5);
}

TEST_F(ConsumerTest, TwoFreeConsumersBothGetFullFeed) {
  int count1 = 0;
  int count2 = 0;
  FreeConsumer fc1(&sim_, &net_, &broker_, "t", "fc1",
                   [&](PartitionId, const StoredMessage&) { ++count1; return true; });
  FreeConsumer fc2(&sim_, &net_, &broker_, "t", "fc2",
                   [&](PartitionId, const StoredMessage&) { ++count2; return true; });
  fc1.Start();
  fc2.Start();
  PublishN(15);
  sim_.RunUntil(1 * kSec);
  // Unlike a consumer group, every free consumer receives every message.
  EXPECT_EQ(count1, 15);
  EXPECT_EQ(count2, 15);
}

TEST_F(ConsumerTest, DisconnectedFreeConsumerMakesNoProgress) {
  int count = 0;
  FreeConsumer fc(&sim_, &net_, &broker_, "t", "fc1",
                  [&](PartitionId, const StoredMessage&) { ++count; return true; });
  fc.Start();
  sim_.RunUntil(100 * kMs);
  net_.SetUp("fc1", false);
  PublishN(10);
  sim_.RunUntil(1 * kSec);
  EXPECT_EQ(count, 0);
  net_.SetUp("fc1", true);
  sim_.RunUntil(2 * kSec);
  EXPECT_EQ(count, 10);
}

}  // namespace
}  // namespace pubsub
