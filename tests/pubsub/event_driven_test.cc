// Tests for the event-driven delivery subsystem (broker long-poll waiters,
// doorbell-driven consumer pumps) and regression tests for the consumer-path
// bugs fixed alongside it:
//
//   * FreeConsumer one-shot partition discovery (partitions added after the
//     first poll were silently never fetched);
//   * GroupConsumer redelivery counters surviving rebalances for partitions
//     the member no longer owns;
//   * dead-letter publishes forwarding the original message's TraceContext;
//   * FreeConsumer stamping neither deliver nor ack (free-consumer traces
//     never completed into the collector).
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/collector.h"
#include "obs/trace.h"
#include "oracle/invariant_oracle.h"
#include "pubsub/broker.h"
#include "pubsub/consumer.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pubsub {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

struct ScopedTracing {
  explicit ScopedTracing(bool on) { obs::SetTracingEnabled(on); }
  ~ScopedTracing() { obs::SetTracingEnabled(false); }
};

class EventDrivenTest : public ::testing::Test {
 protected:
  EventDrivenTest() : net_(&sim_, {.base = 0, .jitter = 0}), broker_(&sim_, &net_) {
    EXPECT_TRUE(broker_.CreateTopic("t", {.partitions = 4}).ok());
  }

  void PublishN(int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(
          broker_.Publish("t", Message{"key" + std::to_string(i), "v" + std::to_string(i), 0})
              .ok());
    }
  }

  sim::Simulator sim_;
  sim::Network net_;
  Broker broker_;
};

// -- Broker waiter registry ----------------------------------------------------

TEST_F(EventDrivenTest, WaitForAppendFiresImmediatelyWhenDataAvailable) {
  PublishN(1);
  int fired = 0;
  const auto ticket = broker_.WaitForAppend("t", 0, 0, [&] { ++fired; });
  EXPECT_EQ(ticket, 0u);  // Data available: no registration, immediate event.
  sim_.RunUntil(sim_.Now());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(broker_.PendingWaiters(), 0u);
}

TEST_F(EventDrivenTest, WaitForAppendParksUntilPublishAndIsOneShot) {
  int fired = 0;
  const auto ticket = broker_.WaitForAppend("t", 0, broker_.EndOffset("t", 0), [&] { ++fired; });
  EXPECT_NE(ticket, 0u);
  EXPECT_EQ(broker_.PendingWaiters(), 1u);
  sim_.RunUntil(100 * kMs);
  EXPECT_EQ(fired, 0);  // Nothing published: still parked.

  ASSERT_TRUE(broker_.Publish("t", Message{"", "a", 0}, 0).ok());
  sim_.RunUntil(sim_.Now());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(broker_.PendingWaiters(), 0u);  // Consumed.

  ASSERT_TRUE(broker_.Publish("t", Message{"", "b", 0}, 0).ok());
  sim_.RunUntil(sim_.Now());
  EXPECT_EQ(fired, 1);  // One-shot: no re-fire without re-arm.
}

TEST_F(EventDrivenTest, WaitForAppendOnOtherPartitionStaysParked) {
  int fired = 0;
  (void)broker_.WaitForAppend("t", 1, broker_.EndOffset("t", 1), [&] { ++fired; });
  ASSERT_TRUE(broker_.Publish("t", Message{"", "a", 0}, 0).ok());  // Partition 0.
  sim_.RunUntil(sim_.Now());
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(broker_.PendingWaiters(), 1u);
}

TEST_F(EventDrivenTest, CancelWaitPreventsWakeup) {
  int fired = 0;
  const auto ticket = broker_.WaitForAppend("t", 0, broker_.EndOffset("t", 0), [&] { ++fired; });
  EXPECT_TRUE(broker_.CancelWait(ticket));
  EXPECT_FALSE(broker_.CancelWait(ticket));  // Idempotent no-op.
  ASSERT_TRUE(broker_.Publish("t", Message{"", "a", 0}, 0).ok());
  sim_.RunUntil(sim_.Now());
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(broker_.PendingWaiters(), 0u);
}

TEST_F(EventDrivenTest, RemoveTopicFiresParkedWaiters) {
  // Regression: waiters parked on a partition that was then removed with its
  // topic never fired — the registry entry was erased with the topic and the
  // long-poller hung forever. Teardown must wake them so their re-check can
  // observe the removal.
  int fired = 0;
  const auto ticket = broker_.WaitForAppend("t", 0, broker_.EndOffset("t", 0), [&] { ++fired; });
  ASSERT_NE(ticket, 0u);
  ASSERT_EQ(broker_.PendingWaiters(), 1u);

  ASSERT_TRUE(broker_.RemoveTopic("t").ok());
  EXPECT_EQ(broker_.PendingWaiters(), 0u);
  sim_.RunUntil(sim_.Now());
  EXPECT_EQ(fired, 1) << "waiter on removed topic was never fired";
  EXPECT_FALSE(broker_.HasTopic("t"));
  // The fired ticket is dead: cancelling it is a harmless no-op.
  EXPECT_FALSE(broker_.CancelWait(ticket));
}

TEST_F(EventDrivenTest, RemoveTopicLeavesOtherTopicsWaitersParked) {
  ASSERT_TRUE(broker_.CreateTopic("u", {.partitions = 1}).ok());
  int fired_t = 0;
  int fired_u = 0;
  (void)broker_.WaitForAppend("t", 0, broker_.EndOffset("t", 0), [&] { ++fired_t; });
  (void)broker_.WaitForAppend("u", 0, broker_.EndOffset("u", 0), [&] { ++fired_u; });
  ASSERT_EQ(broker_.PendingWaiters(), 2u);

  ASSERT_TRUE(broker_.RemoveTopic("t").ok());
  sim_.RunUntil(sim_.Now());
  EXPECT_EQ(fired_t, 1);
  EXPECT_EQ(fired_u, 0);  // Unrelated topic's waiter stays parked.
  EXPECT_EQ(broker_.PendingWaiters(), 1u);

  ASSERT_TRUE(broker_.Publish("u", Message{"", "a", 0}, 0).ok());
  sim_.RunUntil(sim_.Now());
  EXPECT_EQ(fired_u, 1);
}

TEST_F(EventDrivenTest, RemoveTopicRejectsUnknownTopic) {
  EXPECT_EQ(broker_.RemoveTopic("nope").code(), common::StatusCode::kNotFound);
}

TEST_F(EventDrivenTest, BrokerDestructionFiresParkedWaiters) {
  // Same bug at whole-broker granularity: a failover tears down the shard's
  // broker while subscriptions hold parked waiters. Destruction must fire
  // them (the wakeup re-resolves the shard's *new* broker and re-arms there).
  int fired = 0;
  {
    Broker doomed(&sim_, &net_);
    ASSERT_TRUE(doomed.CreateTopic("d", {.partitions = 1}).ok());
    (void)doomed.WaitForAppend("d", 0, doomed.EndOffset("d", 0), [&] { ++fired; });
    ASSERT_EQ(doomed.PendingWaiters(), 1u);
    sim_.RunUntil(100 * kMs);
    ASSERT_EQ(fired, 0);  // Parked; nothing published.
  }
  sim_.RunUntil(sim_.Now());
  EXPECT_EQ(fired, 1) << "waiter parked on destroyed broker was never fired";
}

TEST_F(EventDrivenTest, WaitForRebalanceFiresOnMembershipChange) {
  int fired = 0;
  (void)broker_.WaitForRebalance("g", [&] { ++fired; });
  ASSERT_TRUE(broker_.JoinGroup("g", "t", "m1").ok());
  sim_.RunUntil(sim_.Now());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(broker_.PendingWaiters(), 0u);
}

// -- Partition growth ----------------------------------------------------------

TEST_F(EventDrivenTest, AddPartitionsGrowsTopicAndRebalancesGroups) {
  ASSERT_TRUE(broker_.JoinGroup("g", "t", "m1").ok());
  const std::uint64_t gen_before = broker_.GroupGeneration("g");
  ASSERT_TRUE(broker_.AddPartitions("t", 2).ok());
  EXPECT_EQ(broker_.PartitionCount("t"), 6u);
  EXPECT_GT(broker_.GroupGeneration("g"), gen_before);
  // The sole member owns every partition, including the new ones.
  const GroupView view = broker_.ViewGroup("g");
  EXPECT_EQ(view.assignment.size(), 6u);
  // The new partitions accept publishes.
  EXPECT_TRUE(broker_.Publish("t", Message{"", "new", 0}, 5).ok());
  EXPECT_EQ(broker_.EndOffset("t", 5), 1u);
}

TEST_F(EventDrivenTest, AddPartitionsRejectsUnknownTopic) {
  EXPECT_FALSE(broker_.AddPartitions("nope", 1).ok());
}

// -- Regression: FreeConsumer one-shot partition discovery ---------------------

TEST_F(EventDrivenTest, FreeConsumerDiscoversPartitionsAddedAfterStart) {
  std::map<PartitionId, std::vector<std::string>> got;
  FreeConsumer fc(&sim_, &net_, &broker_, "t", "fc1",
                  [&](PartitionId p, const StoredMessage& m) {
                    got[p].push_back(m.message.value);
                    return true;
                  });
  fc.Start();
  PublishN(4);
  sim_.RunUntil(500 * kMs);  // Initial discovery done, feed drained.
  ASSERT_EQ(fc.delivered(), 4u);

  // Grow the topic and publish to a partition that did not exist at the
  // consumer's first poll. Before the fix, discovery ran exactly once and
  // the new partition was silently never fetched — a full-feed consumer
  // losing data with Backlog() blind to it.
  ASSERT_TRUE(broker_.AddPartitions("t", 1).ok());
  ASSERT_TRUE(broker_.Publish("t", Message{"", "late", 0}, 4).ok());
  sim_.RunUntil(2 * kSec);
  ASSERT_EQ(got.count(4), 1u);
  EXPECT_EQ(got[4], std::vector<std::string>{"late"});
  EXPECT_EQ(fc.delivered(), 5u);
  EXPECT_EQ(fc.Backlog(), 0u);
}

TEST_F(EventDrivenTest, FreeConsumerFromLatestTakesLatePartitionsFromTheStart) {
  PublishN(8);
  sim_.RunUntil(100 * kMs);
  std::vector<std::string> got;
  FreeConsumer fc(&sim_, &net_, &broker_, "t", "fc1",
                  [&](PartitionId, const StoredMessage& m) {
                    got.push_back(m.message.value);
                    return true;
                  },
                  {}, FreeConsumer::StartAt::kLatest);
  fc.Start();
  sim_.RunUntil(300 * kMs);
  EXPECT_TRUE(got.empty());  // kLatest: history skipped.

  // "Latest" predates a partition that did not exist yet: a late-added
  // partition is consumed from its first offset, nothing skipped.
  ASSERT_TRUE(broker_.AddPartitions("t", 1).ok());
  ASSERT_TRUE(broker_.Publish("t", Message{"", "first-on-new", 0}, 4).ok());
  sim_.RunUntil(1 * kSec);
  EXPECT_EQ(got, std::vector<std::string>{"first-on-new"});
}

// -- Regression: redelivery counters across rebalances -------------------------

TEST_F(EventDrivenTest, RedeliveryCountsResetWhenPartitionMovesAway) {
  ASSERT_TRUE(broker_.CreateTopic("one", {.partitions = 1}).ok());
  ASSERT_TRUE(broker_.CreateTopic("dlq", {.partitions = 1}).ok());
  int b_nacks = 0;
  int a_nacks = 0;
  // Member ids sort "a" < "b", so once "a" joins, the single partition moves
  // to it; when "a" leaves, the partition returns to "b".
  GroupConsumer cb(&sim_, &net_, &broker_, "g", "one", "b",
                   [&](PartitionId, const StoredMessage&) {
                     ++b_nacks;
                     return false;
                   },
                   {.max_redeliveries = 3, .dead_letter_topic = "dlq"});
  GroupConsumer ca(&sim_, &net_, &broker_, "g", "one", "a",
                   [&](PartitionId, const StoredMessage&) {
                     ++a_nacks;
                     return false;
                   },
                   {.max_redeliveries = 3, .dead_letter_topic = "dlq"});
  cb.Start();
  ASSERT_TRUE(broker_.Publish("one", Message{"", "poison", 0}, 0).ok());
  // Two failed deliveries on "b" (poll_period 50ms), then the partition is
  // taken over by "a" for one failed delivery, then handed back.
  sim_.RunUntil(120 * kMs);
  ASSERT_EQ(b_nacks, 2);
  ca.Start();
  sim_.RunUntil(180 * kMs);
  ASSERT_GE(a_nacks, 1);
  ca.Stop();
  sim_.RunUntil(2 * kSec);

  // Ownership epochs: on regaining the partition "b" must start a fresh
  // redelivery count (3 more attempts before dead-lettering), not resume at
  // the stale pre-rebalance count (which dead-letters after 1).
  EXPECT_EQ(b_nacks, 2 + 3);
  EXPECT_EQ(cb.dead_lettered(), 1u);
}

// -- Regression: dead-letter trace forwarding ----------------------------------

TEST_F(EventDrivenTest, DeadLetterRecordStartsFreshTrace) {
  ScopedTracing tracing(true);
  ASSERT_TRUE(broker_.CreateTopic("dlq", {.partitions = 1}).ok());
  GroupConsumer c(&sim_, &net_, &broker_, "g", "t", "m1",
                  [&](PartitionId, const StoredMessage&) { return false; },
                  {.max_redeliveries = 2, .dead_letter_topic = "dlq"});
  c.Start();
  ASSERT_TRUE(broker_.Publish("t", Message{"", "poison", 0}, 0).ok());
  sim_.RunUntil(2 * kSec);
  ASSERT_EQ(c.dead_lettered(), 1u);

  auto orig = broker_.Fetch("t", 0, 0, 1);
  auto dlq = broker_.Fetch("dlq", 0, 0, 1);
  ASSERT_TRUE(orig.ok());
  ASSERT_TRUE(dlq.ok());
  ASSERT_EQ(orig->size(), 1u);
  ASSERT_EQ(dlq->size(), 1u);
  const obs::TraceContext& original = (*orig)[0].message.trace;
  const obs::TraceContext& forwarded = (*dlq)[0].message.trace;
  ASSERT_TRUE(original.active());
  ASSERT_TRUE(forwarded.active());
  // The dead-letter record is a fresh publish with its own trace. Before the
  // fix it carried the original's id and stamps, so the DLQ delivery
  // completed the same trace a second time with origin→append spanning the
  // whole nack saga.
  EXPECT_NE(forwarded.id, original.id);
  EXPECT_GE(forwarded.stamp(obs::Stage::kOrigin), original.stamp(obs::Stage::kOrigin));
}

// -- Regression: FreeConsumer deliver/ack stamping -----------------------------

TEST_F(EventDrivenTest, FreeConsumerCompletesTracesIntoCollector) {
  ScopedTracing tracing(true);
  common::MetricsRegistry metrics;
  obs::Collector collector(&metrics);
  FreeConsumer fc(&sim_, &net_, &broker_, "t", "fc1",
                  [&](PartitionId, const StoredMessage&) { return true; },
                  {.obs = &collector});
  fc.Start();
  PublishN(5);
  sim_.RunUntil(1 * kSec);
  ASSERT_EQ(fc.delivered(), 5u);
  // Before the fix FreeConsumer stamped neither deliver nor ack and never
  // completed traces: the entire free-consumer path was invisible to obs.
  EXPECT_EQ(collector.traces_completed(), 5u);
}

// -- Batched offset commits ----------------------------------------------------

struct CommitCounter : public BrokerObserver {
  int commits = 0;
  void OnRebalance(const GroupId&, std::uint64_t, const std::vector<MemberId>&,
                   const std::map<PartitionId, MemberId>&) override {}
  void OnSeek(const GroupId&, PartitionId, Offset) override {}
  void OnCommitOffset(const GroupId&, PartitionId, Offset) override { ++commits; }
};

TEST_F(EventDrivenTest, CommitsOncePerDrainedBatchNotPerMessage) {
  ASSERT_TRUE(broker_.CreateTopic("one", {.partitions = 1}).ok());
  CommitCounter counter;
  broker_.AddObserver(&counter);
  GroupConsumer c(&sim_, &net_, &broker_, "g", "one", "m1",
                  [&](PartitionId, const StoredMessage&) { return true; });
  c.Start();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(broker_.Publish("one", Message{"", "v" + std::to_string(i), 0}, 0).ok());
  }
  sim_.RunUntil(60 * kMs);  // One poll drains all 50 (max_poll_messages 100).
  ASSERT_EQ(c.delivered(), 50u);
  EXPECT_EQ(counter.commits, 1);
  EXPECT_EQ(broker_.CommittedOffset("g", 0), 50u);
  broker_.RemoveObserver(&counter);
}

// -- Event-driven delivery -----------------------------------------------------

TEST_F(EventDrivenTest, EventDrivenDeliversWithoutPollTimers) {
  // Poll and heartbeat periods far beyond the horizon: only broker wakeups
  // can drive delivery. Every message must still arrive, at its publish
  // instant (zero simulated delivery latency).
  std::vector<common::TimeMicros> delivered_at;
  GroupConsumer c(&sim_, &net_, &broker_, "g", "t", "m1",
                  [&](PartitionId, const StoredMessage&) {
                    delivered_at.push_back(sim_.Now());
                    return true;
                  },
                  {.poll_period = 5 * kSec, .heartbeat_period = 10 * kSec, .event_driven = true});
  c.Start();
  for (int i = 0; i < 10; ++i) {
    sim_.After((100 + 10 * i) * kMs,
               [this, i] { (void)broker_.Publish("t", Message{"", "v" + std::to_string(i), 0}); });
  }
  sim_.RunUntil(1500 * kMs);
  ASSERT_EQ(delivered_at.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(delivered_at[i], (100 + 10 * i) * kMs) << i;
  }
  EXPECT_EQ(broker_.GroupBacklog("g", "t"), 0u);
}

TEST_F(EventDrivenTest, EventDrivenFreeConsumerDeliversImmediately) {
  std::vector<common::TimeMicros> delivered_at;
  FreeConsumer fc(&sim_, &net_, &broker_, "t", "fc1",
                  [&](PartitionId, const StoredMessage&) {
                    delivered_at.push_back(sim_.Now());
                    return true;
                  },
                  {.poll_period = 5 * kSec, .heartbeat_period = 10 * kSec, .event_driven = true});
  fc.Start();
  sim_.After(250 * kMs, [this] { (void)broker_.Publish("t", Message{"", "x", 0}); });
  sim_.RunUntil(1 * kSec);
  ASSERT_EQ(delivered_at.size(), 1u);
  EXPECT_EQ(delivered_at[0], 250 * kMs);
}

TEST_F(EventDrivenTest, LateJoinerIsWokenByRebalanceNotTimers) {
  std::map<std::string, int> per_member;
  auto handler = [&per_member](const std::string& who) {
    return [&per_member, who](PartitionId, const StoredMessage&) {
      ++per_member[who];
      return true;
    };
  };
  ConsumerOptions opts{
      .poll_period = 5 * kSec, .heartbeat_period = 10 * kSec, .event_driven = true};
  GroupConsumer c1(&sim_, &net_, &broker_, "g", "t", "m1", handler("m1"), opts);
  GroupConsumer c2(&sim_, &net_, &broker_, "g", "t", "m2", handler("m2"), opts);
  c1.Start();
  sim_.RunUntil(100 * kMs);
  c2.Start();  // Rebalance wakeup re-pumps m1 with its shrunken assignment.
  sim_.RunUntil(200 * kMs);
  PublishN(40);
  sim_.RunUntil(1 * kSec);
  EXPECT_EQ(per_member["m1"] + per_member["m2"], 40);
  EXPECT_GT(per_member["m1"], 0);
  EXPECT_GT(per_member["m2"], 0);
  EXPECT_EQ(broker_.GroupBacklog("g", "t"), 0u);
}

TEST_F(EventDrivenTest, EventDrivenNackRetriesOnPollPeriodNotInstantly) {
  // A nacked head-of-line message must not wake the consumer at the same
  // instant forever (data is still "available" at the committed offset); it
  // retries on the poll_period redelivery timer, like periodic mode.
  int attempts = 0;
  GroupConsumer c(&sim_, &net_, &broker_, "g", "t", "m1",
                  [&](PartitionId, const StoredMessage&) {
                    ++attempts;
                    return false;
                  },
                  {.poll_period = 50 * kMs,
                   .heartbeat_period = 10 * kSec,  // Park the safety net: isolate the retry timer.
                   .event_driven = true});
  c.Start();
  ASSERT_TRUE(broker_.Publish("t", Message{"", "poison", 0}, 0).ok());
  sim_.RunUntil(1 * kSec);
  // First delivery at publish time, then ~one per poll_period. A spin would
  // hang RunUntil; a forgotten retry would stop at 1.
  EXPECT_GE(attempts, 15);
  EXPECT_LE(attempts, 25);
}

TEST_F(EventDrivenTest, StopCancelsParkedWaiters) {
  GroupConsumer c(&sim_, &net_, &broker_, "g", "t", "m1",
                  [&](PartitionId, const StoredMessage&) { return true; },
                  {.event_driven = true});
  FreeConsumer fc(&sim_, &net_, &broker_, "t", "fc1",
                  [&](PartitionId, const StoredMessage&) { return true; },
                  {.event_driven = true});
  c.Start();
  fc.Start();
  PublishN(8);
  sim_.RunUntil(500 * kMs);
  EXPECT_GT(broker_.PendingWaiters(), 0u);  // Caught up and parked.
  c.Stop();
  fc.Stop();
  EXPECT_EQ(broker_.PendingWaiters(), 0u);  // No leaked registrations.
  PublishN(4);
  sim_.RunUntil(1 * kSec);  // Late publishes must not wake stopped consumers.
  EXPECT_EQ(c.delivered(), 8u);
  EXPECT_EQ(fc.delivered(), 8u);
}

// -- Mode equivalence ----------------------------------------------------------

struct GroupRun {
  std::map<PartitionId, std::vector<std::string>> sequence;  // Acked, in order.
  std::uint64_t delivered = 0;
  std::uint64_t backlog = 0;
  bool oracle_ok = false;
  std::string oracle_report;
};

// One deterministic group scenario — staggered publishes, two members, a
// deterministic nack on every fifth message, a mid-run partition growth —
// run under either delivery mode.
GroupRun RunGroupScenario(bool event_driven) {
  sim::Simulator sim(42);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  Broker broker(&sim, &net);
  oracle::InvariantOracle oracle(&sim);
  oracle.ObserveBroker(&broker);
  EXPECT_TRUE(broker.CreateTopic("t", {.partitions = 4}).ok());

  GroupRun run;
  std::set<std::string> nacked_once;
  auto handler = [&](PartitionId p, const StoredMessage& m) {
    const std::string& v = m.message.value;
    if (m.offset % 5 == 0 && nacked_once.insert(v).second) {
      return false;  // Deterministic: first delivery of every fifth offset.
    }
    run.sequence[p].push_back(v);
    return true;
  };
  ConsumerOptions opts;
  opts.event_driven = event_driven;
  GroupConsumer c1(&sim, &net, &broker, "g", "t", "m1", handler, opts);
  GroupConsumer c2(&sim, &net, &broker, "g", "t", "m2", handler, opts);
  c1.Start();
  c2.Start();
  for (int i = 0; i < 60; ++i) {
    sim.After((10 + 7 * i) * kMs, [&broker, i] {
      (void)broker.Publish("t", Message{"key" + std::to_string(i % 8), "v" + std::to_string(i), 0});
    });
  }
  sim.After(300 * kMs, [&broker] { EXPECT_TRUE(broker.AddPartitions("t", 2).ok()); });
  sim.RunUntil(5 * kSec);
  oracle.Check();
  run.delivered = c1.delivered() + c2.delivered();
  run.backlog = broker.GroupBacklog("g", "t");
  run.oracle_ok = oracle.ok();
  run.oracle_report = oracle.Report();
  c1.Stop();
  c2.Stop();
  return run;
}

TEST(EventDrivenEquivalence, GroupDeliverySequencesMatchPeriodicMode) {
  const GroupRun periodic = RunGroupScenario(false);
  const GroupRun event = RunGroupScenario(true);
  ASSERT_TRUE(periodic.oracle_ok) << periodic.oracle_report;
  ASSERT_TRUE(event.oracle_ok) << event.oracle_report;
  EXPECT_EQ(periodic.delivered, 60u);
  EXPECT_EQ(event.delivered, 60u);
  EXPECT_EQ(periodic.backlog, 0u);
  EXPECT_EQ(event.backlog, 0u);
  // The modes must deliver the identical per-partition sequences — event
  // driving changes *when* deliveries happen, never *what* or in what order.
  EXPECT_EQ(periodic.sequence, event.sequence);
}

std::map<PartitionId, std::vector<std::string>> RunFreeScenario(bool event_driven) {
  sim::Simulator sim(7);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  Broker broker(&sim, &net);
  EXPECT_TRUE(broker.CreateTopic("t", {.partitions = 2}).ok());
  std::map<PartitionId, std::vector<std::string>> sequence;
  ConsumerOptions opts;
  opts.event_driven = event_driven;
  FreeConsumer fc(&sim, &net, &broker, "t", "fc1",
                  [&](PartitionId p, const StoredMessage& m) {
                    sequence[p].push_back(m.message.value);
                    return true;
                  },
                  opts);
  fc.Start();
  for (int i = 0; i < 30; ++i) {
    sim.After((5 + 11 * i) * kMs, [&broker, i] {
      (void)broker.Publish("t", Message{"", "v" + std::to_string(i), 0},
                           static_cast<PartitionId>(i % 3 == 0 ? 0 : i % 2));
    });
  }
  sim.After(200 * kMs, [&broker] { EXPECT_TRUE(broker.AddPartitions("t", 1).ok()); });
  sim.After(400 * kMs,
            [&broker] { (void)broker.Publish("t", Message{"", "late", 0}, 2); });
  sim.RunUntil(5 * kSec);
  EXPECT_EQ(fc.Backlog(), 0u);
  fc.Stop();
  return sequence;
}

TEST(EventDrivenEquivalence, FreeConsumerSequencesMatchPeriodicMode) {
  const auto periodic = RunFreeScenario(false);
  const auto event = RunFreeScenario(true);
  ASSERT_EQ(periodic.size(), 3u);
  EXPECT_EQ(periodic, event);
}

}  // namespace
}  // namespace pubsub
