// Property suite for pubsub::Filter and pubsub::InterestIndex: over seeded
// random filter populations and record streams, InterestIndex::Match must
// visit exactly the subscribers a brute-force scan of every filter would —
// the index's classification (exact / prefix / range / broad homes,
// shared-lane subgrouping) is an efficiency decision and can never change
// match semantics. Failures are shrunk to a minimal filter-set + record
// before reporting, so a red run prints a hand-checkable repro.
#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/types.h"
#include "pubsub/filter.h"
#include "pubsub/interest_index.h"

namespace {

using pubsub::Filter;
using pubsub::Headers;
using pubsub::HeaderPredicate;
using pubsub::InterestIndex;

constexpr std::uint64_t kSeed = 0x9e3779b97f4a7c15ULL;

// Tiny alphabets on purpose: collisions (prefix-vs-exact, shared boundary
// keys, equal filters joining one lane) must be common, not freak events.
std::string RandomKey(common::Rng& rng, std::size_t max_len = 4) {
  const std::size_t len = rng.Below(max_len + 1);
  std::string key;
  for (std::size_t i = 0; i < len; ++i) {
    key.push_back(static_cast<char>('a' + rng.Below(3)));
  }
  return key;
}

Headers RandomHeaders(common::Rng& rng) {
  Headers headers;
  const std::size_t n = rng.Below(3);
  for (std::size_t i = 0; i < n; ++i) {
    headers.emplace_back(rng.Below(2) == 0 ? "h0" : "h1", rng.Below(2) == 0 ? "x" : "y");
  }
  return headers;
}

Filter RandomFilter(common::Rng& rng) {
  Filter f;
  switch (rng.Below(6)) {
    case 0:  // Exact key (the hash-lane home).
      f.range = common::KeyRange::Single(RandomKey(rng));
      break;
    case 1: {  // Bounded or half-bounded range, possibly empty.
      f.range.low = RandomKey(rng);
      f.range.high = rng.Below(4) == 0 ? std::string() : RandomKey(rng);
      break;
    }
    case 2:  // Prefix-only (the trie home).
      f.key_prefix = RandomKey(rng, 3);
      break;
    case 3:  // Range and prefix together (residual check must hold both).
      f.range.low = RandomKey(rng);
      f.range.high = rng.Below(2) == 0 ? std::string() : RandomKey(rng);
      f.key_prefix = RandomKey(rng, 2);
      break;
    case 4:  // Match-everything / header-only (the broad home).
      break;
    default:
      f.key_prefix = RandomKey(rng, 2);
      break;
  }
  const std::size_t preds = rng.Below(3);
  for (std::size_t i = 0; i < preds; ++i) {
    HeaderPredicate p;
    p.name = rng.Below(2) == 0 ? "h0" : "h1";
    p.op = static_cast<HeaderPredicate::Op>(rng.Below(3));
    p.value = rng.Below(2) == 0 ? "x" : "y";
    f.headers.push_back(std::move(p));
  }
  return f;
}

struct Record {
  std::string key;
  Headers headers;
};

// A self-contained repro: the filter population (by subscriber id) plus one
// record. `Mismatches` rebuilds a fresh index each time, so shrinking can
// re-evaluate candidates cheaply and without cross-contamination.
struct Repro {
  std::vector<std::pair<InterestIndex::SubscriberId, Filter>> filters;
  Record record;
};

std::set<InterestIndex::SubscriberId> BruteForce(const Repro& r) {
  std::set<InterestIndex::SubscriberId> out;
  for (const auto& [id, filter] : r.filters) {
    if (filter.Matches(r.record.key, r.record.headers)) {
      out.insert(id);
    }
  }
  return out;
}

std::set<InterestIndex::SubscriberId> Indexed(const Repro& r) {
  InterestIndex index;
  for (const auto& [id, filter] : r.filters) {
    index.Add(id, filter);
  }
  std::set<InterestIndex::SubscriberId> out;
  index.Match(r.record.key, r.record.headers,
              [&](InterestIndex::SubscriberId id) { out.insert(id); });
  return out;
}

bool Mismatches(const Repro& r) { return Indexed(r) != BruteForce(r); }

std::string OpName(HeaderPredicate::Op op) {
  switch (op) {
    case HeaderPredicate::Op::kExists: return "exists";
    case HeaderPredicate::Op::kEq: return "eq";
    case HeaderPredicate::Op::kNe: return "ne";
  }
  return "?";
}

std::string Dump(const Repro& r) {
  std::ostringstream os;
  os << "record key=\"" << r.record.key << "\" headers={";
  for (const auto& [n, v] : r.record.headers) {
    os << n << "=" << v << ",";
  }
  os << "}\n";
  for (const auto& [id, f] : r.filters) {
    os << "  filter id=" << id << " range=[\"" << f.range.low << "\",\"" << f.range.high
       << "\") prefix=\"" << f.key_prefix << "\" preds={";
    for (const HeaderPredicate& p : f.headers) {
      os << p.name << " " << OpName(p.op) << " " << p.value << ",";
    }
    os << "}\n";
  }
  return os.str();
}

// Greedy shrink: drop whole filters, then header predicates, then trim the
// record, re-checking the mismatch after each candidate removal. The result
// is locally minimal — removing any single remaining element makes the bug
// disappear — which is what a human wants to stare at.
Repro Shrink(Repro r) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < r.filters.size(); ++i) {
      Repro candidate = r;
      candidate.filters.erase(candidate.filters.begin() + static_cast<std::ptrdiff_t>(i));
      if (Mismatches(candidate)) {
        r = std::move(candidate);
        progress = true;
        break;
      }
    }
    if (progress) {
      continue;
    }
    for (std::size_t i = 0; i < r.filters.size(); ++i) {
      for (std::size_t j = 0; j < r.filters[i].second.headers.size(); ++j) {
        Repro candidate = r;
        candidate.filters[i].second.headers.erase(candidate.filters[i].second.headers.begin() +
                                                  static_cast<std::ptrdiff_t>(j));
        if (Mismatches(candidate)) {
          r = std::move(candidate);
          progress = true;
          break;
        }
      }
      if (progress) {
        break;
      }
    }
    if (progress) {
      continue;
    }
    for (std::size_t j = 0; j < r.record.headers.size(); ++j) {
      Repro candidate = r;
      candidate.record.headers.erase(candidate.record.headers.begin() +
                                     static_cast<std::ptrdiff_t>(j));
      if (Mismatches(candidate)) {
        r = std::move(candidate);
        progress = true;
        break;
      }
    }
    if (progress) {
      continue;
    }
    while (!r.record.key.empty()) {
      Repro candidate = r;
      candidate.record.key.pop_back();
      if (!Mismatches(candidate)) {
        break;
      }
      r = std::move(candidate);
      progress = true;
    }
  }
  return r;
}

void ExpectEquivalent(const Repro& r) {
  const auto brute = BruteForce(r);
  const auto indexed = Indexed(r);
  if (indexed == brute) {
    return;
  }
  const Repro minimal = Shrink(r);
  ADD_FAILURE() << "InterestIndex::Match != brute force. Minimal repro:\n"
                << Dump(minimal) << "brute={"
                << [&] {
                     std::ostringstream os;
                     for (auto id : BruteForce(minimal)) os << id << ",";
                     return os.str();
                   }()
                << "} indexed={" << [&] {
                     std::ostringstream os;
                     for (auto id : Indexed(minimal)) os << id << ",";
                     return os.str();
                   }() << "}";
}

TEST(FilterPropertyTest, RandomPopulationsMatchBruteForce) {
  common::Rng rng(kSeed);
  for (int round = 0; round < 200; ++round) {
    Repro r;
    const std::size_t nfilters = 1 + rng.Below(24);
    for (std::size_t i = 0; i < nfilters; ++i) {
      r.filters.emplace_back(i + 1, RandomFilter(rng));
    }
    for (int rec = 0; rec < 32; ++rec) {
      r.record.key = RandomKey(rng);
      r.record.headers = RandomHeaders(rng);
      ExpectEquivalent(r);
      if (::testing::Test::HasFailure()) {
        return;  // One shrunk repro is worth more than a failure storm.
      }
    }
  }
}

// Equivalence must survive churn: interleaved Add/Remove against a model
// map, matching after every step. This exercises shared-lane refcounting
// (identical filters joining/leaving one lane) and home dismantling.
TEST(FilterPropertyTest, EquivalenceHoldsUnderChurn) {
  common::Rng rng(kSeed ^ 0xc0ffee);
  InterestIndex index;
  std::map<InterestIndex::SubscriberId, Filter> model;
  InterestIndex::SubscriberId next_id = 1;
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t dice = rng.Below(10);
    if (dice < 4 || model.empty()) {
      Filter f = RandomFilter(rng);
      index.Add(next_id, f);
      model.emplace(next_id, std::move(f));
      ++next_id;
    } else if (dice < 7) {
      auto it = model.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.Below(model.size())));
      EXPECT_TRUE(index.Remove(it->first));
      model.erase(it);
    } else {
      const std::string key = RandomKey(rng);
      const Headers headers = RandomHeaders(rng);
      std::set<InterestIndex::SubscriberId> expect;
      for (const auto& [id, f] : model) {
        if (f.Matches(key, headers)) {
          expect.insert(id);
        }
      }
      std::set<InterestIndex::SubscriberId> got;
      index.Match(key, headers, [&](InterestIndex::SubscriberId id) { got.insert(id); });
      ASSERT_EQ(got, expect) << "step " << step << " key=\"" << key << "\"";
    }
  }
  EXPECT_EQ(index.subscriber_count(), model.size());
  for (const auto& [id, f] : model) {
    EXPECT_TRUE(index.Remove(id));
  }
  EXPECT_EQ(index.subscriber_count(), 0u);
  EXPECT_EQ(index.lane_count(), 0u);
  EXPECT_EQ(index.broad_lane_count(), 0u);
}

// -- Directed edge cases -------------------------------------------------------

TEST(FilterPropertyTest, RangeBoundariesAreHalfOpen) {
  Repro r;
  Filter f;
  f.range = common::KeyRange{"b", "c"};
  r.filters.emplace_back(1, f);
  for (const char* key : {"a", "az", "b", "bz", "bzzz", "c", "ca", "d", ""}) {
    r.record = Record{key, {}};
    ExpectEquivalent(r);
  }
  // Spot-check the semantics themselves, not just agreement.
  EXPECT_FALSE(f.MatchesKey("a"));
  EXPECT_TRUE(f.MatchesKey("b"));
  EXPECT_TRUE(f.MatchesKey("bz"));
  EXPECT_FALSE(f.MatchesKey("c"));
}

TEST(FilterPropertyTest, EmptyRangeMatchesNothingAndUnregistersCleanly) {
  InterestIndex index;
  Filter f;
  f.range = common::KeyRange{"m", "a"};  // high < low: empty.
  index.Add(7, f);
  EXPECT_EQ(index.subscriber_count(), 1u);
  std::size_t hits = 0;
  for (const char* key : {"", "a", "m", "z"}) {
    index.Match(key, {}, [&](InterestIndex::SubscriberId) { ++hits; });
  }
  EXPECT_EQ(hits, 0u);
  EXPECT_TRUE(index.Remove(7));
  EXPECT_EQ(index.lane_count(), 0u);
}

TEST(FilterPropertyTest, PrefixAndExactKeyCollide) {
  Repro r;
  Filter prefix;
  prefix.key_prefix = "ab";
  Filter exact;
  exact.range = common::KeyRange::Single("ab");
  r.filters.emplace_back(1, prefix);
  r.filters.emplace_back(2, exact);
  for (const char* key : {"ab", "abc", "a", "abab", "b", ""}) {
    r.record = Record{key, {}};
    ExpectEquivalent(r);
  }
  // "ab" hits both homes; "abc" only the trie.
  Repro both = r;
  both.record = Record{"ab", {}};
  EXPECT_EQ(Indexed(both), (std::set<InterestIndex::SubscriberId>{1, 2}));
  both.record = Record{"abc", {}};
  EXPECT_EQ(Indexed(both), (std::set<InterestIndex::SubscriberId>{1}));
}

TEST(FilterPropertyTest, IdenticalFiltersShareOneLane) {
  InterestIndex index;
  Filter f;
  f.key_prefix = "a";
  HeaderPredicate p;
  p.name = "h0";
  p.op = HeaderPredicate::Op::kEq;
  p.value = "x";
  f.headers.push_back(p);
  // Same canonical form in different pre-canonical orders.
  Filter g = f;
  g.headers.push_back(p);  // Duplicate predicate: canonicalization dedups.
  index.Add(1, f);
  index.Add(2, g);
  EXPECT_EQ(index.subscriber_count(), 2u);
  EXPECT_EQ(index.lane_count(), 1u);
  std::set<InterestIndex::SubscriberId> got;
  index.Match("aa", {{"h0", "x"}}, [&](InterestIndex::SubscriberId id) { got.insert(id); });
  EXPECT_EQ(got, (std::set<InterestIndex::SubscriberId>{1, 2}));
  EXPECT_TRUE(index.Remove(1));
  EXPECT_EQ(index.lane_count(), 1u);  // Lane survives its other member.
  EXPECT_TRUE(index.Remove(2));
  EXPECT_EQ(index.lane_count(), 0u);
}

TEST(FilterPropertyTest, UnsubscribeDuringMatchIsSafe) {
  // A match callback that removes subscribers (the watch layer resyncing a
  // session mid-dispatch does exactly this) must not invalidate the fanout.
  InterestIndex index;
  Filter broad;  // Everything matches: all lanes are candidates.
  index.Add(1, broad);
  index.Add(2, broad);
  index.Add(3, broad);
  std::vector<InterestIndex::SubscriberId> visited;
  index.Match("k", {}, [&](InterestIndex::SubscriberId id) {
    visited.push_back(id);
    index.Remove(2);  // Removing a sibling (or self) mid-fanout.
    index.Remove(id);
  });
  // All members of the lane snapshot are visited even as the lane dies.
  EXPECT_EQ(visited, (std::vector<InterestIndex::SubscriberId>{1, 2, 3}));
  EXPECT_EQ(index.subscriber_count(), 0u);
  EXPECT_EQ(index.lane_count(), 0u);
}

TEST(FilterPropertyTest, MatchedNeverExceedsScannedAndBroadIsVisible) {
  common::Rng rng(kSeed ^ 0xbead);
  InterestIndex index;
  for (std::uint64_t id = 1; id <= 64; ++id) {
    index.Add(id, RandomFilter(rng));
  }
  for (int i = 0; i < 256; ++i) {
    index.Match(RandomKey(rng), RandomHeaders(rng), [](InterestIndex::SubscriberId) {});
  }
  EXPECT_LE(index.lanes_matched(), index.lanes_scanned());
  EXPECT_GE(index.subscribers_matched(), index.lanes_matched());
  // Broad lanes are scanned on every append: with any broad lanes present,
  // scanned grows at least that fast.
  EXPECT_GE(index.lanes_scanned(), 256u * index.broad_lane_count());
}

}  // namespace
