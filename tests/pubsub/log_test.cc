#include "pubsub/log.h"

#include <gtest/gtest.h>

namespace pubsub {
namespace {

Message Msg(const std::string& key, const std::string& value, common::TimeMicros t) {
  return Message{key, value, t};
}

TEST(PartitionLogTest, AppendAssignsSequentialOffsets) {
  PartitionLog log({});
  EXPECT_EQ(log.Append(Msg("a", "1", 0)), 0u);
  EXPECT_EQ(log.Append(Msg("b", "2", 0)), 1u);
  EXPECT_EQ(log.end_offset(), 2u);
  EXPECT_EQ(log.first_offset(), 0u);
}

TEST(PartitionLogTest, ReadFromOffset) {
  PartitionLog log({});
  for (int i = 0; i < 5; ++i) {
    log.Append(Msg("k", std::to_string(i), 0));
  }
  auto msgs = log.Read(2);
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_EQ(msgs[0].offset, 2u);
  EXPECT_EQ(msgs[0].message.value, "2");
}

TEST(PartitionLogTest, ReadHonorsMax) {
  PartitionLog log({});
  for (int i = 0; i < 10; ++i) {
    log.Append(Msg("k", "v", 0));
  }
  EXPECT_EQ(log.Read(0, 4).size(), 4u);
  EXPECT_EQ(log.Read(0, 0).size(), 10u);  // 0 == unlimited.
}

TEST(PartitionLogTest, TimeRetentionDropsOldMessages) {
  PartitionLog log({});
  log.Append(Msg("a", "1", 100));
  log.Append(Msg("b", "2", 200));
  log.Append(Msg("c", "3", 300));
  EXPECT_EQ(log.GcBefore(250), 2u);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.first_offset(), 2u);
  EXPECT_EQ(log.gced(), 2u);
}

TEST(PartitionLogTest, SilentSkipOnGcedRead) {
  PartitionLog log({});
  for (int i = 0; i < 10; ++i) {
    log.Append(Msg("k", "v", i));
  }
  log.GcBefore(5);  // Offsets 0-4 gone.
  // A reader at offset 0 is silently repositioned — the messages are simply
  // absent from what it receives, with no error.
  auto msgs = log.Read(0, 3);
  ASSERT_FALSE(msgs.empty());
  EXPECT_EQ(msgs[0].offset, 5u);
  EXPECT_EQ(log.silent_skips(), 5u);
}

TEST(PartitionLogTest, SilentSkipWhenLogFullyGced) {
  PartitionLog log({});
  log.Append(Msg("k", "v", 0));
  log.Append(Msg("k", "v", 1));
  log.GcBefore(100);
  EXPECT_TRUE(log.Read(0).empty());
  EXPECT_EQ(log.silent_skips(), 2u);
}

TEST(PartitionLogTest, SizeCapTruncatesHead) {
  PartitionLog log({.max_messages = 3});
  for (int i = 0; i < 5; ++i) {
    log.Append(Msg("k", std::to_string(i), 0));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.first_offset(), 2u);
  EXPECT_EQ(log.gced(), 2u);
}

TEST(PartitionLogTest, CompactionKeepsLatestPerKeyBeforeHorizon) {
  PartitionLog log({});
  log.Append(Msg("a", "a1", 10));  // offset 0 — shadowed by offset 3.
  log.Append(Msg("b", "b1", 20));  // offset 1 — kept (newest "b" anywhere).
  log.Append(Msg("a", "a2", 30));  // offset 2 — shadowed by offset 3 too.
  log.Append(Msg("a", "a3", 90));  // offset 3 — kept (inside window).
  const std::uint64_t removed = log.Compact(/*horizon=*/50);
  // Kafka semantics: a pre-horizon copy shadowed by ANY newer record — even
  // one inside the compaction window — is dropped.
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(log.compacted_away(), 2u);
  auto msgs = log.Read(0);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].offset, 1u);
  EXPECT_EQ(msgs[1].offset, 3u);
}

TEST(PartitionLogTest, CompactionDropsPreHorizonRecordShadowedInWindow) {
  PartitionLog log({});
  log.Append(Msg("k", "stale", 10));   // offset 0 — old copy of "k".
  log.Append(Msg("x", "other", 15));   // offset 1 — only copy of "x".
  log.Append(Msg("k", "fresh", 80));   // offset 2 — newer "k", inside window.
  EXPECT_EQ(log.Compact(/*horizon=*/50), 1u);
  auto msgs = log.Read(0);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].offset, 1u);
  EXPECT_EQ(msgs[1].offset, 2u);
  // A second pass at the same horizon finds nothing more to drop.
  EXPECT_EQ(log.Compact(/*horizon=*/50), 0u);
}

TEST(PartitionLogTest, CompactionCreatesUndetectableOffsetGaps) {
  PartitionLog log({});
  log.Append(Msg("a", "a1", 10));
  log.Append(Msg("a", "a2", 20));
  log.Append(Msg("b", "b1", 30));
  log.Compact(100);
  // A consumer at offset 0 receives offset 1 next — there is no signal that
  // offset 0 once held a version it never saw.
  auto msgs = log.Read(0, 1);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].offset, 1u);
  EXPECT_EQ(log.compacted_away(), 1u);
}

TEST(PartitionLogTest, CompactionIdempotentWhenClean) {
  PartitionLog log({});
  log.Append(Msg("a", "1", 10));
  log.Append(Msg("b", "2", 20));
  EXPECT_EQ(log.Compact(100), 0u);
  EXPECT_EQ(log.Compact(100), 0u);
  EXPECT_EQ(log.size(), 2u);
}

TEST(PartitionLogTest, OffsetAtOrAfterScansRetainedMessages) {
  PartitionLog log({});
  log.Append(Msg("a", "1", 100));  // offset 0.
  log.Append(Msg("b", "2", 200));  // offset 1.
  log.Append(Msg("c", "3", 300));  // offset 2.
  EXPECT_EQ(log.OffsetAtOrAfter(0), 0u);
  EXPECT_EQ(log.OffsetAtOrAfter(100), 0u);
  EXPECT_EQ(log.OffsetAtOrAfter(150), 1u);
  EXPECT_EQ(log.OffsetAtOrAfter(300), 2u);
  EXPECT_EQ(log.OffsetAtOrAfter(999), log.end_offset());  // All older: no replay.
}

TEST(PartitionLogTest, OffsetAtOrAfterHonorsGcAndEmptyLog) {
  PartitionLog log({});
  EXPECT_EQ(log.OffsetAtOrAfter(0), 0u);  // Empty: end offset.
  for (int i = 0; i < 5; ++i) {
    log.Append(Msg("k", "v", i * 100));  // publish times 0..400.
  }
  log.GcBefore(250);  // Offsets 0-2 gone.
  // A timestamp inside the GCed prefix lands at the earliest retained message.
  EXPECT_EQ(log.OffsetAtOrAfter(50), 3u);
  EXPECT_EQ(log.OffsetAtOrAfter(400), 4u);
}

TEST(PartitionLogTest, EmptyLogEdgeCases) {
  PartitionLog log({});
  EXPECT_EQ(log.first_offset(), 0u);
  EXPECT_EQ(log.end_offset(), 0u);
  EXPECT_TRUE(log.Read(0).empty());
  EXPECT_EQ(log.GcBefore(100), 0u);
  EXPECT_EQ(log.Compact(100), 0u);
  EXPECT_EQ(log.silent_skips(), 0u);  // Reading at end of empty log is not a skip.
}

}  // namespace
}  // namespace pubsub
