// Zero-copy span reads and the ReadPin retention guard. The contract under
// test: ReadSpansInto returns views byte-identical to what ReadInto copies
// (including the silent-reset accounting), and while a pin is held every
// reclamation path — time GC, compaction, size-cap trim — defers instead of
// invalidating outstanding spans, then runs (callbacks included) when the
// last pin drops. Retention is delayed by one read, never skipped.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "pubsub/broker.h"
#include "pubsub/log.h"
#include "pubsub/span.h"
#include "pubsub/types.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pubsub {
namespace {

Message Msg(const std::string& key, const std::string& value, common::TimeMicros t,
            Headers headers = {}) {
  Message m;
  m.key = key;
  m.value = value;
  m.publish_time = t;
  m.headers = std::move(headers);
  return m;
}

TEST(SpanReadTest, SpansMirrorReadIntoExactly) {
  PartitionLog log({});
  log.Append(Msg("k0", "v0", 10));
  log.Append(Msg("", "v1", 20, {{"h", "x"}, {"i", "y"}}));
  log.Append(Msg("k2", "v2", 30));

  std::vector<StoredMessage> copies;
  std::vector<MessageSpan> spans;
  ReadPin pin(&log);
  ASSERT_EQ(log.ReadInto(0, 0, &copies), 3u);
  ASSERT_EQ(log.ReadSpansInto(0, 0, &spans), 3u);
  for (std::size_t i = 0; i < copies.size(); ++i) {
    EXPECT_EQ(spans[i].offset, copies[i].offset);
    EXPECT_EQ(spans[i].key, copies[i].message.key);
    EXPECT_EQ(spans[i].value, copies[i].message.value);
    EXPECT_EQ(spans[i].publish_time, copies[i].message.publish_time);
    if (copies[i].message.headers.empty()) {
      EXPECT_EQ(spans[i].headers, nullptr);
    } else {
      ASSERT_NE(spans[i].headers, nullptr);
      EXPECT_EQ(*spans[i].headers, copies[i].message.headers);
    }
  }

  // `max` truncates identically, `from` positions identically.
  spans.clear();
  EXPECT_EQ(log.ReadSpansInto(1, 1, &spans), 1u);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].offset, 1u);
  EXPECT_EQ(spans[0].value, "v1");
}

TEST(SpanReadTest, SilentResetAccountingMatchesCopyPath) {
  // Two identical logs, trimmed identically; one read via copies, one via
  // spans. The silent-skip ledger (the paper's §3.1 hidden-loss counter) must
  // advance the same way on both paths.
  PartitionLog copy_log({});
  PartitionLog span_log({});
  for (int i = 0; i < 6; ++i) {
    copy_log.Append(Msg("k", "v" + std::to_string(i), 10 * (i + 1)));
    span_log.Append(Msg("k", "v" + std::to_string(i), 10 * (i + 1)));
  }
  EXPECT_EQ(copy_log.GcBefore(35), 3u);  // Offsets 0..2 gone.
  EXPECT_EQ(span_log.GcBefore(35), 3u);

  std::vector<StoredMessage> copies;
  std::vector<MessageSpan> spans;
  ReadPin pin(&span_log);
  EXPECT_EQ(copy_log.ReadInto(0, 0, &copies), 3u);
  EXPECT_EQ(span_log.ReadSpansInto(0, 0, &spans), 3u);
  EXPECT_EQ(spans[0].offset, 3u);  // Silently repositioned, like the copy read.
  EXPECT_EQ(span_log.silent_skips(), copy_log.silent_skips());
  EXPECT_EQ(span_log.silent_skips(), 3u);

  // Reading past the end with `from` below retention also matches.
  copies.clear();
  spans.clear();
  EXPECT_EQ(copy_log.ReadInto(100, 0, &copies), 0u);
  EXPECT_EQ(span_log.ReadSpansInto(100, 0, &spans), 0u);
  EXPECT_EQ(span_log.silent_skips(), copy_log.silent_skips());
}

TEST(SpanReadTest, PinDefersTimeGcUntilRelease) {
  PartitionLog log({});
  std::vector<RetentionEvent> events;
  log.set_retention_callback([&](const RetentionEvent& e) { events.push_back(e); });
  log.Append(Msg("k0", "old-value-zero", 10));
  log.Append(Msg("k1", "old-value-one", 20));
  log.Append(Msg("k2", "new-value", 100));

  std::vector<MessageSpan> spans;
  {
    ReadPin pin(&log);
    EXPECT_EQ(log.pins(), 1);
    ASSERT_EQ(log.ReadSpansInto(0, 0, &spans), 3u);

    // GC under pin: deferred, loudly reported as "0 dropped now".
    EXPECT_EQ(log.GcBefore(50), 0u);
    EXPECT_EQ(log.size(), 3u);
    EXPECT_TRUE(events.empty());  // No callback until it actually runs.
    // The spans the pin protects still read their bytes.
    EXPECT_EQ(spans[0].value, "old-value-zero");
    EXPECT_EQ(spans[1].value, "old-value-one");

    // A higher horizon while still pinned wins (max, not last).
    EXPECT_EQ(log.GcBefore(30), 0u);
  }  // Pin drops: deferred GC runs with horizon 50.

  EXPECT_EQ(log.pins(), 0);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.gced(), 2u);
  EXPECT_EQ(log.first_offset(), 2u);
  ASSERT_EQ(events.size(), 1u);  // The journal-facing callback fired on apply.
  EXPECT_EQ(events[0].kind, RetentionEvent::Kind::kGcBefore);
  EXPECT_EQ(events[0].horizon, 50);
  EXPECT_EQ(events[0].removed, 2u);
}

TEST(SpanReadTest, PinDefersCompactionUntilRelease) {
  PartitionLog log({});
  std::vector<RetentionEvent> events;
  log.set_retention_callback([&](const RetentionEvent& e) { events.push_back(e); });
  log.Append(Msg("k", "stale-version", 10));
  log.Append(Msg("k", "fresh-version", 20));

  std::vector<MessageSpan> spans;
  {
    ReadPin pin(&log);
    ASSERT_EQ(log.ReadSpansInto(0, 0, &spans), 2u);
    // Compaction rebuilds the deque (moves SSO-small strings) — exactly what
    // must not happen under outstanding spans.
    EXPECT_EQ(log.Compact(50), 0u);
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(spans[0].value, "stale-version");
  }
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.compacted_away(), 1u);
  EXPECT_EQ(log.entries().front().message.value, "fresh-version");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, RetentionEvent::Kind::kCompact);
}

TEST(SpanReadTest, PinDefersSizeCapAndAppendsStaySafe) {
  RetentionPolicy policy;
  policy.max_messages = 2;
  PartitionLog log(policy);
  std::vector<RetentionEvent> events;
  log.set_retention_callback([&](const RetentionEvent& e) { events.push_back(e); });
  log.Append(Msg("k0", "value-zero", 10));
  log.Append(Msg("k1", "value-one", 20));

  std::vector<MessageSpan> spans;
  {
    ReadPin pin(&log);
    ASSERT_EQ(log.ReadSpansInto(0, 0, &spans), 2u);
    // Appends during a pinned read are allowed (deque push_back never moves
    // existing elements); only the size-cap trim they trigger is deferred.
    log.Append(Msg("k2", "value-two", 30));
    log.Append(Msg("k3", "value-three", 40));
    EXPECT_EQ(log.size(), 4u);  // Over cap, trim pending.
    EXPECT_EQ(spans[0].value, "value-zero");
    EXPECT_EQ(spans[1].value, "value-one");
    EXPECT_TRUE(events.empty());
  }
  EXPECT_EQ(log.size(), 2u);  // Cap enforced at release.
  EXPECT_EQ(log.first_offset(), 2u);
  EXPECT_EQ(log.gced(), 2u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, RetentionEvent::Kind::kSizeCap);
  EXPECT_EQ(events[0].removed, 2u);
}

TEST(SpanReadTest, RebindingAPinAcrossBatchesKeepsTheLogPinned) {
  PartitionLog log({});
  log.Append(Msg("k", "batch-one", 10));
  log.Append(Msg("k", "batch-two", 20));

  ReadPin pin(&log);
  std::vector<MessageSpan> spans;
  ASSERT_EQ(log.ReadSpansInto(0, 1, &spans), 1u);
  EXPECT_EQ(log.GcBefore(100), 0u);  // Deferred under the first batch's pin.

  // The consumer moves to its next batch: rebinding constructs the new pin
  // BEFORE releasing the old one (move-assign), so the pin count never
  // touches zero between batches and the deferred GC cannot fire mid-loop.
  pin = ReadPin(&log);
  EXPECT_EQ(log.pins(), 1);
  EXPECT_EQ(log.size(), 2u);  // Still deferred.
  spans.clear();
  ASSERT_EQ(log.ReadSpansInto(1, 1, &spans), 1u);
  EXPECT_EQ(spans[0].value, "batch-two");

  pin.Release();
  pin.Release();  // Idempotent.
  EXPECT_EQ(log.pins(), 0);
  EXPECT_EQ(log.size(), 0u);  // The horizon-100 GC finally ran.
  EXPECT_EQ(log.gced(), 2u);
}

TEST(SpanReadTest, OverlappingPinsDeferUntilTheLastDrops) {
  PartitionLog log({});
  log.Append(Msg("k", "v", 10));

  ReadPin a(&log);
  ReadPin b(&log);
  EXPECT_EQ(log.pins(), 2);
  EXPECT_EQ(log.GcBefore(100), 0u);
  a.Release();
  EXPECT_EQ(log.size(), 1u);  // b still holds the log.
  b.Release();
  EXPECT_EQ(log.size(), 0u);

  // Moved-from pins guard nothing; the moved-to pin carries the count.
  ReadPin c(&log);
  ReadPin d(std::move(c));
  EXPECT_FALSE(c.pinned());
  EXPECT_TRUE(d.pinned());
  EXPECT_EQ(log.pins(), 1);
  d.Release();
  EXPECT_EQ(log.pins(), 0);
}

TEST(SpanReadTest, BrokerFetchSpansAndErrors) {
  sim::Simulator sim(1);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  Broker broker(&sim, &net, "b");
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 2}).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(broker.Publish("t", Msg("key", "v" + std::to_string(i), 0), 1).ok());
  }

  std::vector<MessageSpan> spans;
  ReadPin pin;
  const auto n = broker.FetchSpans("t", 1, 1, 3, &spans, &pin);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  EXPECT_TRUE(pin.pinned());
  EXPECT_EQ(broker.Log("t", 1)->pins(), 1);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].offset, 1u);
  EXPECT_EQ(spans[0].value, "v1");
  EXPECT_EQ(spans[2].value, "v3");
  pin.Release();
  EXPECT_EQ(broker.Log("t", 1)->pins(), 0);

  spans.clear();
  EXPECT_EQ(broker.FetchSpans("missing", 0, 0, 1, &spans, &pin).status().code(),
            common::StatusCode::kNotFound);
  EXPECT_EQ(broker.FetchSpans("t", 9, 0, 1, &spans, &pin).status().code(),
            common::StatusCode::kInvalidArgument);
  // A null pin is allowed for callers managing their own pin lifetime.
  const auto unpinned = broker.FetchSpans("t", 1, 0, 1, &spans, nullptr);
  ASSERT_TRUE(unpinned.ok());
  EXPECT_EQ(*unpinned, 1u);
}

TEST(SpanReadTest, PublishSpanMatchesPublish) {
  sim::Simulator sim(1);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  Broker ref(&sim, &net, "ref");
  Broker got(&sim, &net, "got");
  ASSERT_TRUE(ref.CreateTopic("t", {.partitions = 4}).ok());
  ASSERT_TRUE(got.CreateTopic("t", {.partitions = 4}).ok());

  const Headers headers = {{"content-type", "test"}};
  for (int i = 0; i < 50; ++i) {
    const std::string key = i % 3 == 0 ? "" : "user-" + std::to_string(i % 7);
    const std::string value = "v" + std::to_string(i);
    const auto want = ref.Publish("t", Msg(key, value, 0, i % 2 ? headers : Headers{}));
    const auto have = got.PublishSpan("t", key, value, i % 2 ? &headers : nullptr);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(have.ok());
    // Same routing (key hash / round robin) and same assigned offset...
    EXPECT_EQ(have->partition, want->partition) << "message " << i;
    EXPECT_EQ(have->offset, want->offset) << "message " << i;
  }
  // ...and byte-identical logs: PublishSpan owns its copy at append time, so
  // the borrowed-view input leaves no aliasing behind.
  for (PartitionId p = 0; p < 4; ++p) {
    EXPECT_EQ(got.Log("t", p)->entries(), ref.Log("t", p)->entries()) << "partition " << p;
  }
}

}  // namespace
}  // namespace pubsub
