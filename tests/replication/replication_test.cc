#include <string>

#include <gtest/gtest.h>

#include "cdc/feeds.h"
#include "common/rng.h"
#include "replication/checker.h"
#include "replication/pubsub_replicator.h"
#include "replication/target_store.h"
#include "replication/watch_replicator.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/watch_system.h"

namespace replication {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;
using common::Mutation;

TEST(TargetStoreTest, BlindApplyLastWriterWins) {
  TargetStore t;
  t.ApplyBlind({"k", Mutation::Put("v2"), 2, true});
  t.ApplyBlind({"k", Mutation::Put("v1"), 1, true});  // Stale arrives late.
  EXPECT_EQ(*t.Get("k"), "v1");                        // Blind: stale wins.
}

TEST(TargetStoreTest, VersionedApplyRejectsStale) {
  TargetStore t;
  t.ApplyVersioned({"k", Mutation::Put("v2"), 2, true});
  t.ApplyVersioned({"k", Mutation::Put("v1"), 1, true});
  EXPECT_EQ(*t.Get("k"), "v2");
  EXPECT_EQ(t.version_rejects(), 1u);
}

TEST(TargetStoreTest, TombstonePreventsResurrection) {
  TargetStore t;
  t.ApplyVersioned({"k", Mutation::Put("v1"), 1, true});
  t.ApplyVersioned({"k", Mutation::Delete(), 3, true});
  t.ApplyVersioned({"k", Mutation::Put("zombie"), 2, true});  // Late, pre-delete.
  EXPECT_EQ(t.Get("k").status().code(), common::StatusCode::kNotFound);
}

TEST(TargetStoreTest, BlindDeleteAllowsResurrection) {
  TargetStore t;
  t.ApplyBlind({"k", Mutation::Put("v1"), 1, true});
  t.ApplyBlind({"k", Mutation::Delete(), 3, true});
  t.ApplyBlind({"k", Mutation::Put("zombie"), 2, true});
  EXPECT_EQ(*t.Get("k"), "zombie");  // The failure mode version checks fix.
}

TEST(TargetStoreTest, StateHashTracksContents) {
  TargetStore a;
  TargetStore b;
  a.ApplyBlind({"x", Mutation::Put("1"), 1, true});
  a.ApplyBlind({"y", Mutation::Put("2"), 2, true});
  b.ApplyBlind({"y", Mutation::Put("2"), 2, true});
  b.ApplyBlind({"x", Mutation::Put("1"), 1, true});
  EXPECT_EQ(a.state_hash(), b.state_hash());  // Order independent.
  a.ApplyBlind({"x", Mutation::Delete(), 3, true});
  EXPECT_NE(a.state_hash(), b.state_hash());
  b.ApplyBlind({"x", Mutation::Delete(), 3, true});
  EXPECT_EQ(a.state_hash(), b.state_hash());
}

TEST(TargetStoreTest, BatchExternalizesOnce) {
  TargetStore t;
  int externalizations = 0;
  t.AddExternalizeHook([&externalizations](const TargetStore&) { ++externalizations; });
  std::vector<common::ChangeEvent> batch = {
      {"a", Mutation::Put("1"), 5, false},
      {"b", Mutation::Put("2"), 5, true},
  };
  t.ApplyBatch(batch);
  EXPECT_EQ(externalizations, 1);
  EXPECT_EQ(t.applied(), 2u);
}

TEST(SourceHistoryTest, TracksEveryCommitState) {
  storage::MvccStore store;
  SourceHistory history(&store);
  store.Apply("a", Mutation::Put("1"));
  const std::uint64_t h1 = history.final_hash();
  store.Apply("b", Mutation::Put("2"));
  EXPECT_TRUE(history.Existed(0));   // Empty initial state.
  EXPECT_TRUE(history.Existed(h1));  // Intermediate state.
  EXPECT_TRUE(history.Existed(history.final_hash()));
  EXPECT_EQ(history.states(), 3u);

  // A state that never existed: {a:1, b:WRONG}.
  TargetStore fake;
  fake.ApplyBlind({"a", Mutation::Put("1"), 1, true});
  fake.ApplyBlind({"b", Mutation::Put("WRONG"), 2, true});
  EXPECT_FALSE(history.Existed(fake.state_hash()));
}

// -- Full-stack replication fixtures -------------------------------------------------

struct AclWorkloadResult {
  std::uint64_t acl_violations = 0;
  std::uint64_t snapshot_anomalies = 0;
  bool converged = false;
};

// Runs the paper's ACL scenario through a pubsub replicator in `mode`:
// remove member from group, THEN grant group access — repeatedly, across
// partitions — and checks whether the target ever externalizes the forbidden
// combined state.
AclWorkloadResult RunAclScenario(PubsubReplicationMode mode, std::uint32_t partitions,
                                 std::uint32_t appliers) {
  sim::Simulator sim(7);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  pubsub::Broker broker(&sim, &net);
  EXPECT_TRUE(broker.CreateTopic("repl", {.partitions = partitions}).ok());
  storage::MvccStore source;
  SourceHistory history(&source);
  cdc::CdcPubsubFeed feed(&sim, &net, &source, nullptr, &broker, "repl",
                          {.keyed = mode != PubsubReplicationMode::kConcurrentNaive &&
                                    mode != PubsubReplicationMode::kConcurrentVersioned});
  TargetStore target;
  PointInTimeChecker pit(&history, &target);
  AclInvariantChecker acl(&target, "group/eng/member/mallory", "IN",
                          "doc/secret/acl", "eng:ALLOW");
  PubsubReplicatorOptions options;
  options.appliers = appliers;
  options.consumer.poll_period = 3 * kMs;
  PubsubReplicator replicator(&sim, &net, &broker, "repl", "repl-group", &target, mode,
                              options);
  sim.RunUntil(100 * kMs);

  for (int round = 0; round < 40; ++round) {
    // Setup: mallory in group, doc denied.
    {
      storage::Transaction txn = source.Begin();
      txn.Put("group/eng/member/mallory", "IN");
      txn.Put("doc/secret/acl", "eng:DENY");
      EXPECT_TRUE(source.Commit(std::move(txn)).ok());
    }
    sim.RunUntil(sim.Now() + 30 * kMs);
    // The ordered pair whose reversal is the violation.
    source.Apply("group/eng/member/mallory", Mutation::Put("OUT"));
    source.Apply("doc/secret/acl", Mutation::Put("eng:ALLOW"));
    sim.RunUntil(sim.Now() + 30 * kMs);
  }
  sim.RunUntil(sim.Now() + 3 * kSec);

  AclWorkloadResult out;
  out.acl_violations = acl.violations();
  out.snapshot_anomalies = pit.anomalies();
  out.converged = pit.Converged(target);
  return out;
}

TEST(PubsubReplicationTest, SerialModeIsPointInTimeConsistent) {
  auto result = RunAclScenario(PubsubReplicationMode::kSerial, 1, 1);
  EXPECT_EQ(result.acl_violations, 0u);
  EXPECT_EQ(result.snapshot_anomalies, 0u);
  EXPECT_TRUE(result.converged);
}

TEST(PubsubReplicationTest, PartitionedModeConvergesButTearsTransactions) {
  auto result = RunAclScenario(PubsubReplicationMode::kPartitioned, 8, 4);
  EXPECT_TRUE(result.converged);           // Per-key order held.
  EXPECT_GT(result.snapshot_anomalies, 0u);  // Cross-partition txns torn.
}

TEST(PubsubReplicationTest, PartitionedModeViolatesAclInvariant) {
  // The member-removal and the ACL-grant live on different partitions; the
  // grant can apply before the removal.
  auto result = RunAclScenario(PubsubReplicationMode::kPartitioned, 8, 4);
  EXPECT_GT(result.acl_violations, 0u);
}

TEST(PubsubReplicationTest, ConcurrentVersionedConvergesWithAnomalies) {
  auto result = RunAclScenario(PubsubReplicationMode::kConcurrentVersioned, 8, 4);
  EXPECT_TRUE(result.converged);  // Version checks restore eventual consistency.
  EXPECT_GT(result.snapshot_anomalies, 0u);
}

TEST(PubsubReplicationTest, ConcurrentNaiveCanLoseEventualConsistency) {
  // Round-robin partitioning + blind writes: per-key order is lost entirely;
  // with hot keys rewritten constantly, stale overwrites strand wrong finals.
  sim::Simulator sim(11);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  pubsub::Broker broker(&sim, &net);
  ASSERT_TRUE(broker.CreateTopic("repl", {.partitions = 8}).ok());
  storage::MvccStore source;
  SourceHistory history(&source);
  cdc::CdcPubsubFeed feed(&sim, &net, &source, nullptr, &broker, "repl", {.keyed = false});
  TargetStore target;
  PointInTimeChecker pit(&history, &target);
  PubsubReplicatorOptions options;
  options.appliers = 4;
  options.consumer.poll_period = 3 * kMs;
  PubsubReplicator replicator(&sim, &net, &broker, "repl", "g", &target,
                              PubsubReplicationMode::kConcurrentNaive, options);
  common::Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    source.Apply(common::IndexKey(rng.Below(5)), Mutation::Put("v" + std::to_string(i)));
    if (i % 10 == 0) {
      sim.RunUntil(sim.Now() + 4 * kMs);
    }
  }
  sim.RunUntil(sim.Now() + 5 * kSec);
  EXPECT_FALSE(pit.Converged(target));  // Stale overwrites stuck in the final state.
}

TEST(WatchReplicationTest, PointInTimeConsistentAndConverges) {
  sim::Simulator sim(13);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore source;
  SourceHistory history(&source);
  watch::WatchSystem ws(&sim, &net, "snappy",
                        {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &source, nullptr, &ws,
                            {.shards = cdc::UniformShards(100, 4, 2),
                             .base_latency = 1 * kMs,
                             .stagger = 2 * kMs,
                             .progress_period = 5 * kMs});
  watch::StoreSnapshotSource snap(&source);
  TargetStore target;
  PointInTimeChecker pit(&history, &target);
  AclInvariantChecker acl(&target, "group", "IN", "doc", "ALLOW");
  WatchReplicator replicator(&sim, &ws, &snap, &target, cdc::UniformShards(100, 4, 2));
  replicator.Start();
  sim.RunUntil(100 * kMs);

  common::Rng rng(17);
  for (int round = 0; round < 50; ++round) {
    storage::Transaction setup = source.Begin();
    setup.Put("group", "IN");
    setup.Put("doc", "DENY");
    ASSERT_TRUE(source.Commit(std::move(setup)).ok());
    sim.RunUntil(sim.Now() + 10 * kMs);
    source.Apply("group", Mutation::Put("OUT"));
    source.Apply("doc", Mutation::Put("ALLOW"));
    // Plus random traffic across the key space.
    for (int i = 0; i < 5; ++i) {
      source.Apply(common::IndexKey(rng.Below(100), 2),
                   Mutation::Put("r" + std::to_string(round)));
    }
    sim.RunUntil(sim.Now() + 10 * kMs);
  }
  sim.RunUntil(sim.Now() + 3 * kSec);

  EXPECT_EQ(acl.violations(), 0u);
  EXPECT_EQ(pit.anomalies(), 0u);
  EXPECT_TRUE(pit.Converged(target));
  EXPECT_EQ(replicator.applied_version(), source.LatestVersion());
  EXPECT_EQ(replicator.resyncs(), 0u);
}

TEST(WatchReplicationTest, DeletesReplicate) {
  sim::Simulator sim(19);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore source;
  watch::WatchSystem ws(&sim, &net, "snappy",
                        {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &source, nullptr, &ws, {.progress_period = 5 * kMs});
  watch::StoreSnapshotSource snap(&source);
  TargetStore target;
  WatchReplicator replicator(&sim, &ws, &snap, &target, {common::KeyRange::All()});
  replicator.Start();
  sim.RunUntil(50 * kMs);
  source.Apply("k", Mutation::Put("v"));
  sim.RunUntil(200 * kMs);
  EXPECT_TRUE(target.Get("k").ok());
  source.Apply("k", Mutation::Delete());
  sim.RunUntil(400 * kMs);
  EXPECT_EQ(target.Get("k").status().code(), common::StatusCode::kNotFound);
}

TEST(WatchReplicationTest, BootstrapsFromNonEmptySource) {
  sim::Simulator sim(23);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore source;
  source.Apply("pre/a", Mutation::Put("1"));
  source.Apply("pre/b", Mutation::Put("2"));
  watch::WatchSystem ws(&sim, &net, "snappy",
                        {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &source, nullptr, &ws, {.progress_period = 5 * kMs});
  watch::StoreSnapshotSource snap(&source);
  TargetStore target;
  SourceHistory history(&source);  // Note: attached after the pre-writes.
  WatchReplicator replicator(&sim, &ws, &snap, &target, {common::KeyRange::All()});
  replicator.Start();
  sim.RunUntil(200 * kMs);
  EXPECT_EQ(*target.Get("pre/a"), "1");
  EXPECT_EQ(*target.Get("pre/b"), "2");
  source.Apply("post/c", Mutation::Put("3"));
  sim.RunUntil(400 * kMs);
  EXPECT_EQ(*target.Get("post/c"), "3");
}

}  // namespace
}  // namespace replication
