// The WatchReplicator's resync path: when a shard falls below the watch
// system's retained window (e.g. after a soft-state crash or a long stall),
// it must re-bootstrap from the source and still converge — and the frontier
// must stall while any shard is resyncing so the target is never torn by a
// half-resynced fleet.
#include <gtest/gtest.h>

#include "cdc/feeds.h"
#include "common/rng.h"
#include "replication/checker.h"
#include "replication/target_store.h"
#include "replication/watch_replicator.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/watch_system.h"

namespace replication {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;
using common::Mutation;

TEST(WatchReplicatorResyncTest, RecoversFromSoftStateCrash) {
  sim::Simulator sim(3);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore source("src");
  watch::WatchSystem ws(&sim, &net, "snappy",
                        {.window = {.max_events = 100000},
                         .delivery_latency = 1 * kMs,
                         .progress_period = 5 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &source, nullptr, &ws,
                            {.shards = cdc::UniformShards(100, 4, 2),
                             .base_latency = 1 * kMs,
                             .stagger = 2 * kMs,
                             .progress_period = 5 * kMs});
  watch::StoreSnapshotSource snap(&source);
  TargetStore target;
  WatchReplicator replicator(&sim, &ws, &snap, &target, cdc::UniformShards(100, 4, 2));
  replicator.Start();
  sim.RunUntil(100 * kMs);

  common::Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    source.Apply(common::IndexKey(rng.Below(100), 2), Mutation::Put("a" + std::to_string(i)));
    if (i % 20 == 0) {
      sim.RunUntil(sim.Now() + 5 * kMs);
    }
  }
  sim.RunUntil(sim.Now() + 500 * kMs);
  const common::Version before_crash = replicator.applied_version();
  EXPECT_EQ(before_crash, source.LatestVersion());

  // Nuke the watch system's soft state mid-stream; keep writing.
  ws.CrashSoftState();
  for (int i = 0; i < 200; ++i) {
    source.Apply(common::IndexKey(rng.Below(100), 2), Mutation::Put("b" + std::to_string(i)));
    if (i % 20 == 0) {
      sim.RunUntil(sim.Now() + 5 * kMs);
    }
  }
  sim.RunUntil(sim.Now() + 5 * kSec);

  EXPECT_GE(replicator.resyncs(), 1u);
  EXPECT_EQ(replicator.applied_version(), source.LatestVersion());
  // Final state byte-identical to the source.
  auto truth = source.Scan(common::KeyRange::All(), source.LatestVersion());
  ASSERT_TRUE(truth.ok());
  auto mine = target.ScanAll();
  ASSERT_EQ(mine.size(), truth->size());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    EXPECT_EQ(mine[i].first, (*truth)[i].key);
    EXPECT_EQ(mine[i].second, (*truth)[i].value);
  }
}

TEST(WatchReplicatorResyncTest, TinyWindowForcesResyncsYetConverges) {
  sim::Simulator sim(5);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore source("src");
  // A pathologically small retained window with slow progress: shards get
  // resynced repeatedly. Convergence must survive anyway.
  watch::WatchSystem ws(&sim, &net, "snappy",
                        {.window = {.max_events = 16},
                         .delivery_latency = 1 * kMs,
                         .progress_period = 20 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &source, nullptr, &ws,
                            {.shards = cdc::UniformShards(50, 2, 2),
                             .base_latency = 1 * kMs,
                             .stagger = 5 * kMs,
                             .progress_period = 20 * kMs});
  watch::StoreSnapshotSource snap(&source);
  TargetStore target;
  WatchReplicator replicator(&sim, &ws, &snap, &target, cdc::UniformShards(50, 2, 2),
                             {.apply_period = 10 * kMs, .resync_delay = 10 * kMs});
  replicator.Start();
  sim.RunUntil(100 * kMs);

  common::Rng rng(13);
  for (int burst = 0; burst < 10; ++burst) {
    // Bursts larger than the window arrive "instantly" (no sim time passes),
    // so replicator sessions repeatedly fall off the retained window.
    for (int i = 0; i < 60; ++i) {
      source.Apply(common::IndexKey(rng.Below(50), 2),
                   Mutation::Put("burst" + std::to_string(burst)));
    }
    sim.RunUntil(sim.Now() + 200 * kMs);
  }
  sim.RunUntil(sim.Now() + 10 * kSec);

  auto truth = source.Scan(common::KeyRange::All(), source.LatestVersion());
  ASSERT_TRUE(truth.ok());
  auto mine = target.ScanAll();
  ASSERT_EQ(mine.size(), truth->size());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    EXPECT_EQ(mine[i].second, (*truth)[i].value) << mine[i].first;
  }
}

}  // namespace
}  // namespace replication
