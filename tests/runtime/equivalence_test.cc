// Equivalence: for the same routed input, the concurrent facades must produce
// exactly what the single-threaded core produces — identical per-partition
// broker logs and identical per-session watch delivery sequences. This is the
// contract that lets every simulator-validated result carry over to the
// multi-threaded runtime: the shards *are* the single-threaded core, and the
// routing layer adds no behavior of its own.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "pubsub/broker.h"
#include "pubsub/log.h"
#include "runtime/concurrent_broker.h"
#include "runtime/concurrent_watch.h"
#include "runtime/shard_pool.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "watch/watch_system.h"

namespace runtime {
namespace {

TEST(RuntimeEquivalenceTest, BrokerLogsMatchSingleThreadedCore) {
  constexpr std::size_t kShards = 4;
  constexpr pubsub::PartitionId kPartitions = 8;
  constexpr int kMessages = 2000;

  // Reference: the plain single-threaded broker, driven directly.
  sim::Simulator ref_sim(1);
  sim::Network ref_net(&ref_sim, {.base = 0, .jitter = 0});
  pubsub::Broker ref(&ref_sim, &ref_net, "ref");
  ASSERT_TRUE(ref.CreateTopic("t", {.partitions = kPartitions}).ok());

  ShardPool pool({.shards = kShards});
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = kPartitions}).ok());
  EXPECT_FALSE(broker.CreateTopic("t", {.partitions = kPartitions}).ok());

  // One submitting thread exercising all three routing modes. Per-shard FIFO
  // then guarantees each partition sees the same append sequence as the
  // reference.
  common::Rng rng(42);
  for (int i = 0; i < kMessages; ++i) {
    pubsub::Message msg;
    msg.value = "v" + std::to_string(i);
    std::optional<pubsub::PartitionId> part;
    switch (rng.Below(3)) {
      case 0:  // Key-hash routing.
        msg.key = "user-" + std::to_string(rng.Below(64));
        break;
      case 1:  // Explicit partition.
        part = static_cast<pubsub::PartitionId>(rng.Below(kPartitions));
        break;
      default:  // Round robin (empty key, no partition).
        break;
    }
    const auto want = ref.Publish("t", msg, part);
    ASSERT_TRUE(want.ok());
    const auto got = broker.PublishSync("t", msg, part);
    ASSERT_TRUE(got.ok());
    // Routing itself is reproduced, not just the final logs.
    EXPECT_EQ(got->partition, want->partition) << "message " << i;
    EXPECT_EQ(got->offset, want->offset) << "message " << i;
  }
  pool.Quiesce();
  pool.Stop();

  for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
    const std::size_t owner = broker.OwnerShard(p);
    const pubsub::PartitionLog* got = pool.core(owner).broker->Log("t", p);
    const pubsub::PartitionLog* want = ref.Log("t", p);
    ASSERT_NE(got, nullptr);
    ASSERT_NE(want, nullptr);
    EXPECT_EQ(got->entries(), want->entries()) << "partition " << p;
    // Non-owner shards hold the topic (created fenced on every shard) but see
    // none of its traffic.
    for (std::size_t s = 0; s < kShards; ++s) {
      if (s != owner) {
        EXPECT_EQ(pool.core(s).broker->Log("t", p)->entries().size(), 0u);
      }
    }
  }
}

TEST(RuntimeEquivalenceTest, ConsumerGroupStateMatchesSingleThreadedCore) {
  constexpr std::size_t kShards = 2;
  constexpr pubsub::PartitionId kPartitions = 4;

  sim::Simulator ref_sim(1);
  sim::Network ref_net(&ref_sim, {.base = 0, .jitter = 0});
  pubsub::Broker ref(&ref_sim, &ref_net, "ref");
  ASSERT_TRUE(ref.CreateTopic("t", {.partitions = kPartitions}).ok());

  ShardPool pool({.shards = kShards});
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = kPartitions}).ok());

  for (const std::string member : {"m1", "m2", "m3"}) {
    const auto want = ref.JoinGroup("g", "t", member);
    const auto got = broker.JoinGroup("g", "t", member);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *want);
  }
  EXPECT_EQ(broker.GroupGeneration("g"), ref.GroupGeneration("g"));
  for (const std::string member : {"m1", "m2", "m3"}) {
    EXPECT_EQ(broker.AssignedPartitions("g", member, broker.GroupGeneration("g")),
              ref.AssignedPartitions("g", member, ref.GroupGeneration("g")));
  }

  for (int i = 0; i < 50; ++i) {
    pubsub::Message msg{"", "m" + std::to_string(i), 0};
    ASSERT_TRUE(ref.Publish("t", msg).ok());
    ASSERT_TRUE(broker.PublishSync("t", msg).ok());
  }
  for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
    const pubsub::Offset end = ref.EndOffset("t", p);
    EXPECT_EQ(broker.EndOffset("t", p), end);
    ref.CommitOffset("g", p, end);
    broker.CommitOffset("g", p, end);
    EXPECT_EQ(broker.CommittedOffset("g", p), ref.CommittedOffset("g", p));
  }
  EXPECT_EQ(broker.TotalBacklog("g", "t"), ref.GroupBacklog("g", "t"));
  EXPECT_EQ(broker.TotalBacklog("g", "t"), 0u);

  broker.LeaveGroup("g", "m2");
  ref.LeaveGroup("g", "m2");
  EXPECT_EQ(broker.GroupGeneration("g"), ref.GroupGeneration("g"));
  EXPECT_EQ(broker.AssignedPartitions("g", "m1", broker.GroupGeneration("g")),
            ref.AssignedPartitions("g", "m1", ref.GroupGeneration("g")));

  pool.Quiesce();
  pool.Stop();
  // Membership is replicated: every shard's coordinator derived the same
  // assignment; commits live only with each partition's owner shard.
  for (std::size_t s = 0; s < kShards; ++s) {
    const pubsub::GroupView view = pool.core(s).broker->ViewGroup("g");
    EXPECT_EQ(view.generation, ref.GroupGeneration("g"));
    EXPECT_EQ(view.assignment, ref.ViewGroup("g").assignment);
    for (const auto& [p, offset] : view.committed) {
      EXPECT_EQ(broker.OwnerShard(p), s) << "commit stored off-owner";
      EXPECT_EQ(offset, ref.CommittedOffset("g", p));
    }
  }
}

// Callback that records the delivery sequence; used from shard worker
// threads, so recording is mutex-guarded.
class RecordingCallback : public watch::WatchCallback {
 public:
  void OnEvent(const common::ChangeEvent& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }
  void OnProgress(const common::ProgressEvent&) override {}
  void OnResync() override {
    std::lock_guard<std::mutex> lock(mu_);
    ++resyncs_;
  }

  std::vector<common::ChangeEvent> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }
  int resyncs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return resyncs_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<common::ChangeEvent> events_;
  int resyncs_ = 0;
};

bool InRange(const common::KeyRange& range, const common::Key& key) {
  return key >= range.low && (range.high.empty() || key < range.high);
}

std::vector<common::ChangeEvent> Filter(const std::vector<common::ChangeEvent>& events,
                                        const common::KeyRange& range) {
  std::vector<common::ChangeEvent> out;
  for (const auto& e : events) {
    if (InRange(range, e.key)) {
      out.push_back(e);
    }
  }
  return out;
}

TEST(RuntimeEquivalenceTest, WatchDeliverySequencesMatchSingleThreadedCore) {
  constexpr std::size_t kShards = 4;
  constexpr int kEvents = 1500;

  // Reference: one single-threaded watch system over the whole key space.
  sim::Simulator ref_sim(1);
  watch::WatchSystem ref(&ref_sim, nullptr, "ref",
                         {.delivery_latency = 0, .progress_period = 0});

  RuntimeOptions options;
  options.shards = kShards;
  options.watch_splits = {"b", "c", "d"};
  ShardPool pool(options);
  ConcurrentWatchService watch(&pool);
  pool.Start();

  // Sessions: two confined to one shard, one spanning two, one over all.
  struct Spec {
    common::Key low, high;
  };
  const std::vector<Spec> specs = {
      {"a", "b"},  // Shard 0 only.
      {"c", "cm"},  // Shard 2 only.
      {"b", "d"},  // Shards 1+2.
      {"", ""},    // All shards.
  };
  std::vector<RecordingCallback> ref_cbs(specs.size());
  std::vector<RecordingCallback> got_cbs(specs.size());
  std::vector<std::unique_ptr<watch::WatchHandle>> handles;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    handles.push_back(ref.Watch(specs[i].low, specs[i].high, 0, &ref_cbs[i]));
    handles.push_back(watch.Watch(specs[i].low, specs[i].high, 0, &got_cbs[i]));
  }

  // One submitting thread, same event sequence to both.
  common::Rng rng(7);
  for (int i = 0; i < kEvents; ++i) {
    common::ChangeEvent event;
    event.key = std::string(1, static_cast<char>('a' + rng.Below(6))) + std::to_string(rng.Below(40));
    event.mutation = rng.Below(10) == 0 ? common::Mutation::Delete()
                                        : common::Mutation::Put("v" + std::to_string(i));
    event.version = i + 1;
    ref.Append(event);
    ref_sim.Run();
    watch.Append(event);
  }
  pool.Quiesce();

  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    EXPECT_EQ(ref_cbs[i].resyncs(), 0);
    EXPECT_EQ(got_cbs[i].resyncs(), 0);
    const auto want = ref_cbs[i].events();
    const auto got = got_cbs[i].events();
    ASSERT_EQ(got.size(), want.size());
    // Within each shard's slice the delivery sequence is identical — each
    // shard is the single-threaded core. Across slices the runtime only
    // guarantees interleaving, so compare per-slice subsequences (for
    // single-shard sessions this degenerates to full equality).
    for (std::size_t s = 0; s < kShards; ++s) {
      const common::KeyRange slice = watch.ShardRange(s);
      EXPECT_EQ(Filter(got, slice), Filter(want, slice)) << "slice " << s;
    }
  }

  pool.Stop();
  handles.clear();
}

TEST(RuntimeEquivalenceTest, RunsAreBitDeterministic) {
  // Two identical concurrent runs produce identical logs — the tick=0
  // discipline keeps shard clocks at zero so nothing batch-dependent leaks
  // into the output.
  auto run = [] {
    ShardPool pool({.shards = 2});
    ConcurrentBroker broker(&pool);
    pool.Start();
    EXPECT_TRUE(broker.CreateTopic("t", {.partitions = 4}).ok());
    for (int i = 0; i < 400; ++i) {
      EXPECT_TRUE(broker.PublishSync("t", {"k" + std::to_string(i % 17), "v", 0}).ok());
    }
    pool.Quiesce();
    pool.Stop();
    std::vector<std::vector<pubsub::StoredMessage>> logs;
    for (pubsub::PartitionId p = 0; p < 4; ++p) {
      const auto& entries = pool.core(broker.OwnerShard(p)).broker->Log("t", p)->entries();
      logs.emplace_back(entries.begin(), entries.end());
    }
    return logs;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace runtime
