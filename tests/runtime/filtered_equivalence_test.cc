// Filtered-delivery equivalence: a broker-side filter must deliver exactly
// the subsequence an unfiltered subscription delivers after client-side
// filtering — same records, same order, same offsets, same headers, same
// commit state. Proven over a seeded random workload both in-process
// (runtime::Subscription against the ConcurrentBroker) and over the socket
// (client::Subscription against pubsubd with the v2 filter block). The
// broker-side path is the whole point of the interest index; this suite is
// the proof that it buys O(matching) fanout without changing semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "common/rng.h"
#include "common/types.h"
#include "obs/collector.h"
#include "pubsub/filter.h"
#include "runtime/concurrent_broker.h"
#include "runtime/concurrent_watch.h"
#include "runtime/shard_pool.h"
#include "server/pubsubd.h"

namespace runtime {
namespace {

constexpr std::uint64_t kSeed = 0x9e3779b97f4a7c15ULL;

std::string RandomKey(common::Rng& rng, std::size_t max_len = 4) {
  const std::size_t len = rng.Below(max_len + 1);
  std::string key;
  for (std::size_t i = 0; i < len; ++i) {
    key.push_back(static_cast<char>('a' + rng.Below(3)));
  }
  return key;
}

pubsub::Headers RandomHeaders(common::Rng& rng) {
  pubsub::Headers headers;
  const std::size_t n = rng.Below(3);
  for (std::size_t i = 0; i < n; ++i) {
    headers.emplace_back(rng.Below(2) == 0 ? "h0" : "h1", rng.Below(2) == 0 ? "x" : "y");
  }
  return headers;
}

pubsub::Filter RandomFilter(common::Rng& rng) {
  pubsub::Filter f;
  switch (rng.Below(5)) {
    case 0:
      f.range = common::KeyRange::Single(RandomKey(rng));
      break;
    case 1:
      f.range.low = RandomKey(rng);
      f.range.high = rng.Below(3) == 0 ? std::string() : RandomKey(rng);
      break;
    case 2:
      f.key_prefix = RandomKey(rng, 2);
      break;
    case 3: {
      pubsub::HeaderPredicate p;
      p.name = rng.Below(2) == 0 ? "h0" : "h1";
      p.op = static_cast<pubsub::HeaderPredicate::Op>(rng.Below(3));
      p.value = rng.Below(2) == 0 ? "x" : "y";
      f.headers.push_back(std::move(p));
      f.key_prefix = rng.Below(2) == 0 ? std::string() : RandomKey(rng, 1);
      break;
    }
    default:
      f.key_prefix = RandomKey(rng, 1);
      break;
  }
  return f;
}

void ExpectSameSequence(const std::vector<pubsub::StoredMessage>& filtered,
                        const std::vector<pubsub::StoredMessage>& dropped,
                        const std::string& what) {
  ASSERT_EQ(filtered.size(), dropped.size()) << what;
  for (std::size_t i = 0; i < filtered.size(); ++i) {
    EXPECT_EQ(filtered[i].offset, dropped[i].offset) << what << " at " << i;
    EXPECT_EQ(filtered[i].message.key, dropped[i].message.key) << what << " at " << i;
    EXPECT_EQ(filtered[i].message.value, dropped[i].message.value) << what << " at " << i;
    EXPECT_EQ(filtered[i].message.headers, dropped[i].message.headers) << what << " at " << i;
  }
}

TEST(FilteredEquivalenceTest, InProcessFilteredMatchesUnfilteredPlusDrop) {
  RuntimeOptions po;
  ShardPool pool(po);
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("f", {.partitions = 1}).ok());

  common::Rng rng(kSeed);
  constexpr std::size_t kFilters = 12;
  constexpr std::size_t kMessages = 600;

  struct Pair {
    pubsub::Filter filter;
    std::unique_ptr<Subscription> filtered;
    std::unique_ptr<Subscription> plain;
  };
  std::vector<Pair> pairs;
  for (std::size_t i = 0; i < kFilters; ++i) {
    Pair p;
    p.filter = RandomFilter(rng);
    SubscriptionOptions opts;
    opts.filter = p.filter;
    p.filtered = broker.Subscribe("f", 0, 0, opts);
    ASSERT_NE(p.filtered, nullptr);
    p.plain = broker.Subscribe("f", 0, 0);
    ASSERT_NE(p.plain, nullptr);
    pairs.push_back(std::move(p));
  }

  std::vector<pubsub::Message> published;
  for (std::size_t i = 0; i < kMessages; ++i) {
    pubsub::Message msg;
    msg.key = RandomKey(rng);
    msg.value = "v" + std::to_string(i);
    msg.headers = RandomHeaders(rng);
    ASSERT_TRUE(broker.PublishSync("f", msg, 0).ok());
    published.push_back(std::move(msg));
  }

  for (std::size_t i = 0; i < pairs.size(); ++i) {
    Pair& p = pairs[i];
    std::size_t expect = 0;
    for (const pubsub::Message& m : published) {
      if (p.filter.Matches(m)) {
        ++expect;
      }
    }
    // Drain both sides to exhaustion (the filtered side may need several
    // pump rounds to scan past long non-matching stretches).
    std::vector<pubsub::StoredMessage> filtered;
    std::vector<pubsub::StoredMessage> dropped;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (filtered.size() < expect && std::chrono::steady_clock::now() < deadline) {
      if (p.filtered->PollBatch(&filtered, 64) == 0) {
        (void)p.filtered->Wait(5'000);
      }
    }
    std::vector<pubsub::StoredMessage> all;
    while (all.size() < kMessages && std::chrono::steady_clock::now() < deadline) {
      if (p.plain->PollBatch(&all, 256) == 0) {
        (void)p.plain->Wait(5'000);
      }
    }
    ASSERT_EQ(all.size(), kMessages) << "pair " << i;
    for (pubsub::StoredMessage& sm : all) {
      if (p.filter.Matches(sm.message)) {
        dropped.push_back(std::move(sm));
      }
    }
    ExpectSameSequence(filtered, dropped, "pair " + std::to_string(i));
    // No phantom extras: one more poll on the filtered side stays empty.
    std::vector<pubsub::StoredMessage> extra;
    EXPECT_EQ(p.filtered->PollBatch(&extra, 16), 0u) << "pair " << i;

    // Commit/ack state agrees: committing each side's last-delivered offset
    // reads back identically (sequences are identical, so cursors are too).
    if (!filtered.empty()) {
      const std::string group_f = "gf" + std::to_string(i);
      const std::string group_d = "gd" + std::to_string(i);
      broker.CommitOffset(group_f, 0, filtered.back().offset + 1);
      broker.CommitOffset(group_d, 0, dropped.back().offset + 1);
      EXPECT_EQ(broker.CommittedOffset(group_f, 0), broker.CommittedOffset(group_d, 0));
    }
  }

  pairs.clear();
  pool.Stop();
}

struct NetHarness {
  NetHarness() {
    runtime::RuntimeOptions po;
    po.obs = &obs;
    pool = std::make_unique<runtime::ShardPool>(po);
    broker = std::make_unique<runtime::ConcurrentBroker>(pool.get());
    watch = std::make_unique<runtime::ConcurrentWatchService>(pool.get());
    pool->Start();
    server::ServerOptions so;
    so.obs = &obs;
    server = std::make_unique<server::Server>(broker.get(), watch.get(), &pool->metrics(), so);
    EXPECT_TRUE(server->Start().ok());
  }

  ~NetHarness() {
    server->Stop();
    pool->Stop();
  }

  common::MetricsRegistry obs_metrics;
  obs::Collector obs{&obs_metrics};
  std::unique_ptr<runtime::ShardPool> pool;
  std::unique_ptr<runtime::ConcurrentBroker> broker;
  std::unique_ptr<runtime::ConcurrentWatchService> watch;
  std::unique_ptr<server::Server> server;
};

TEST(FilteredEquivalenceTest, OverTheSocketFilteredMatchesUnfilteredPlusDrop) {
  NetHarness h;
  ASSERT_TRUE(h.broker->CreateTopic("f", {.partitions = 1}).ok());

  common::Rng rng(kSeed ^ 0x50c4e7);
  constexpr std::size_t kFilters = 4;
  constexpr std::size_t kMessages = 200;

  auto publisher = client::Client::Connect("127.0.0.1", h.server->port());
  ASSERT_TRUE(publisher.ok());
  ASSERT_EQ((*publisher)->wire_version(), 2u);

  std::vector<pubsub::Filter> filters;
  std::vector<std::unique_ptr<client::Client>> clients;
  std::vector<std::unique_ptr<client::Subscription>> filtered_subs;
  std::vector<std::unique_ptr<client::Subscription>> plain_subs;
  for (std::size_t i = 0; i < kFilters; ++i) {
    filters.push_back(RandomFilter(rng));
    auto cf = client::Client::Connect("127.0.0.1", h.server->port());
    ASSERT_TRUE(cf.ok());
    auto sf = (*cf)->Subscribe("f", 0, 0, 64, filters.back());
    ASSERT_TRUE(sf.ok()) << sf.status().message();
    filtered_subs.push_back(std::move(*sf));
    clients.push_back(std::move(*cf));
    auto cp = client::Client::Connect("127.0.0.1", h.server->port());
    ASSERT_TRUE(cp.ok());
    auto sp = (*cp)->Subscribe("f", 0, 0, 256);
    ASSERT_TRUE(sp.ok());
    plain_subs.push_back(std::move(*sp));
    clients.push_back(std::move(*cp));
  }

  std::vector<pubsub::Message> published;
  for (std::size_t i = 0; i < kMessages; ++i) {
    pubsub::Message msg;
    msg.key = RandomKey(rng);
    msg.value = "v" + std::to_string(i);
    msg.headers = RandomHeaders(rng);
    ASSERT_TRUE((*publisher)
                    ->Publish("f", msg.key, msg.value, 0, net::PublishAck::kOffset, nullptr, 0,
                              msg.headers)
                    .ok());
    published.push_back(std::move(msg));
  }

  for (std::size_t i = 0; i < kFilters; ++i) {
    std::size_t expect = 0;
    for (const pubsub::Message& m : published) {
      if (filters[i].Matches(m)) {
        ++expect;
      }
    }
    std::vector<pubsub::StoredMessage> filtered;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (filtered.size() < expect && std::chrono::steady_clock::now() < deadline) {
      (void)filtered_subs[i]->Poll(&filtered, 64, 100'000);
    }
    std::vector<pubsub::StoredMessage> all;
    while (all.size() < kMessages && std::chrono::steady_clock::now() < deadline) {
      (void)plain_subs[i]->Poll(&all, 256, 100'000);
    }
    ASSERT_EQ(all.size(), kMessages) << "filter " << i;
    std::vector<pubsub::StoredMessage> dropped;
    for (pubsub::StoredMessage& sm : all) {
      if (filters[i].Matches(sm.message)) {
        dropped.push_back(std::move(sm));
      }
    }
    ExpectSameSequence(filtered, dropped, "socket filter " + std::to_string(i));
  }
  filtered_subs.clear();
  plain_subs.clear();
  clients.clear();
}

TEST(FilteredEquivalenceTest, V1ClientRoundTripsAgainstV2Server) {
  NetHarness h;
  ASSERT_TRUE(h.broker->CreateTopic("old", {.partitions = 1}).ok());

  client::ClientOptions co;
  co.wire_version = 1;
  auto c = client::Client::Connect("127.0.0.1", h.server->port(), co);
  ASSERT_TRUE(c.ok()) << c.status().message();
  EXPECT_EQ((*c)->wire_version(), 1u);
  EXPECT_EQ((*c)->server_hello().wire_version, 1u);

  // The v1 surface is fully functional: publish (headerless), fetch,
  // subscribe, watch, commit.
  pubsub::PublishResult pr;
  ASSERT_TRUE((*c)->Publish("old", "k1", "v1", 0, net::PublishAck::kOffset, &pr).ok());
  auto fetched = (*c)->Fetch("old", 0, 0, 16);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched->size(), 1u);
  EXPECT_EQ((*fetched)[0].message.key, "k1");
  EXPECT_TRUE((*fetched)[0].message.headers.empty());

  auto sub = (*c)->Subscribe("old", 0, 0);
  ASSERT_TRUE(sub.ok());
  std::vector<pubsub::StoredMessage> got;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (got.empty() && std::chrono::steady_clock::now() < deadline) {
    (void)(*sub)->Poll(&got, 16, 100'000);
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].message.value, "v1");

  // v2-only features are refused loudly client-side, not silently dropped.
  pubsub::Filter f;
  f.key_prefix = "k";
  auto filtered = (*c)->Subscribe("old", 0, 0, 16, f);
  EXPECT_FALSE(filtered.ok());
  EXPECT_EQ(filtered.status().code(), common::StatusCode::kInvalidArgument);
  EXPECT_FALSE(
      (*c)->Publish("old", "k", "v", 0, net::PublishAck::kAccept, nullptr, 0, {{"h", "x"}})
          .ok());

  // Meanwhile a v2 client with headers coexists on the same server; the v1
  // client's deliveries for the same topic stay headerless on its wire.
  auto c2 = client::Client::Connect("127.0.0.1", h.server->port());
  ASSERT_TRUE(c2.ok());
  ASSERT_TRUE((*c2)
                  ->Publish("old", "k2", "v2", 0, net::PublishAck::kOffset, nullptr, 0,
                            {{"h0", "x"}})
                  .ok());
  got.clear();
  while (got.empty() && std::chrono::steady_clock::now() < deadline) {
    (void)(*sub)->Poll(&got, 16, 100'000);
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].message.key, "k2");
  EXPECT_TRUE(got[0].message.headers.empty());  // v1 batches omit headers.
  auto v2_fetch = (*c2)->Fetch("old", 0, got[0].offset, 1);
  ASSERT_TRUE(v2_fetch.ok());
  ASSERT_EQ(v2_fetch->size(), 1u);
  EXPECT_EQ((*v2_fetch)[0].message.headers, (pubsub::Headers{{"h0", "x"}}));
}

// Concurrent filtered subscribe/unsubscribe/append churn: the TSan target.
// Worker threads churn filtered subscriptions (each drains a little, then
// cancels) while a publisher streams appends; the interest index absorbs
// registration, matching, and teardown traffic on the owner shard while the
// subscriptions' consumer side runs on foreign threads.
TEST(FilteredEquivalenceTest, ConcurrentFilteredChurnIsRaceFree) {
  RuntimeOptions po;
  ShardPool pool(po);
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("churn", {.partitions = 1}).ok());

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    common::Rng rng(kSeed ^ 0x9ab);
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      pubsub::Message msg;
      msg.key = RandomKey(rng);
      msg.value = std::to_string(i++);
      msg.headers = RandomHeaders(rng);
      (void)broker.PublishSync("churn", std::move(msg), 0);
    }
  });

  constexpr int kChurners = 4;
  std::vector<std::thread> churners;
  for (int t = 0; t < kChurners; ++t) {
    churners.emplace_back([&, t] {
      common::Rng rng(kSeed + static_cast<std::uint64_t>(t));
      for (int round = 0; round < 60; ++round) {
        SubscriptionOptions opts;
        opts.filter = RandomFilter(rng);
        auto sub = broker.Subscribe("churn", 0, 0, opts);
        ASSERT_NE(sub, nullptr);
        std::vector<pubsub::StoredMessage> got;
        for (int polls = 0; polls < 5; ++polls) {
          if (sub->PollBatch(&got, 32) == 0) {
            (void)sub->Wait(1'000);
          }
        }
        for (const pubsub::StoredMessage& sm : got) {
          EXPECT_TRUE(opts.filter->Matches(sm.message));
        }
        // ~Subscription tears the interest down mid-stream.
      }
    });
  }
  for (std::thread& t : churners) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  publisher.join();

  // Every churned interest was deregistered with its subscription.
  std::size_t interests = 0;
  pool.RunFenced([&] {
    for (std::size_t s = 0; s < pool.options().shards; ++s) {
      interests += pool.core(s).broker->PendingInterests();
    }
  });
  EXPECT_EQ(interests, 0u);
  pool.Stop();
}

}  // namespace
}  // namespace runtime
