// Contract suite run over BOTH shard-ingress rings — the mutex+condvar
// MpscQueue and the CAS-claimed LockFreeMpscQueue — via a typed test. The two
// implementations sit behind one TaskRing facade (RuntimeOptions::
// lockfree_ring), so every behavioural clause here is load-bearing for the
// drop-in claim: loud TryPush backpressure with exact rejection behaviour,
// per-producer FIFO, all-or-nothing batch claims, close-drains-then-exit,
// reopen, and edge parking. The 8-producer stress at the bottom is the
// TSan-facing test CI runs under -DPUBSUB_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/lockfree_mpsc_queue.h"
#include "runtime/mpsc_queue.h"

namespace runtime {
namespace {

struct MutexRing {
  template <typename T>
  using Queue = MpscQueue<T>;
};
struct LockFreeRing {
  template <typename T>
  using Queue = LockFreeMpscQueue<T>;
};

template <typename Ring>
class RingContractTest : public ::testing::Test {};

using RingTypes = ::testing::Types<MutexRing, LockFreeRing>;
TYPED_TEST_SUITE(RingContractTest, RingTypes);

TYPED_TEST(RingContractTest, FifoSingleProducer) {
  typename TypeParam::template Queue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.TryPush(i));
  }
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(out, 16), 5u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TYPED_TEST(RingContractTest, ExactCapacityAndRejectionAtTheFullEdge) {
  // Deliberately NOT a power of two: both rings promise exact capacity, so
  // their accept/reject sequences are identical operation for operation.
  typename TypeParam::template Queue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.TryPush(3));
  EXPECT_FALSE(q.TryPush(4));  // Full: loud, item untouched.
  EXPECT_FALSE(q.TryPush(5));
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(out, 1), 1u);
  EXPECT_TRUE(q.TryPush(4));   // Exactly one slot freed.
  EXPECT_FALSE(q.TryPush(5));
  out.clear();
  EXPECT_EQ(q.PopBatch(out, 8), 3u);
  EXPECT_EQ(out, (std::vector<int>{2, 3, 4}));
}

TYPED_TEST(RingContractTest, RejectedPushLeavesItemUntouched) {
  // Capacity 2: the smallest the lock-free ring supports (its slot-sequence
  // scheme cannot distinguish published-from-free with a single slot).
  typename TypeParam::template Queue<std::vector<int>> q(2);
  ASSERT_TRUE(q.TryPush(std::vector<int>{0}));
  ASSERT_TRUE(q.TryPush(std::vector<int>{0}));
  std::vector<int> item{1, 2, 3};
  EXPECT_FALSE(q.TryPush(std::move(item)));
  // The backpressure contract: a rejected move-push must leave the caller
  // owning the intact value (it retries or surfaces kUnavailable with it).
  EXPECT_EQ(item, (std::vector<int>{1, 2, 3}));
}

TYPED_TEST(RingContractTest, CloseDrainsRemainderThenSignalsExit) {
  typename TypeParam::template Queue<int> q(4);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_FALSE(q.Push(3));
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(out, 8), 2u);  // Remainder drains.
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.PopBatch(out, 8), 0u);  // Closed-and-drained.
}

TYPED_TEST(RingContractTest, ReopenRestoresServiceAfterCloseAndDrain) {
  typename TypeParam::template Queue<int> q(2);
  ASSERT_TRUE(q.TryPush(1));
  q.Close();
  std::vector<int> out;
  ASSERT_EQ(q.PopBatch(out, 8), 1u);
  ASSERT_EQ(q.PopBatch(out, 8), 0u);
  q.Reopen();
  EXPECT_FALSE(q.closed());
  EXPECT_TRUE(q.TryPush(7));  // The Stop→Start cycle of a ShardPool.
  EXPECT_TRUE(q.TryPush(8));
  EXPECT_FALSE(q.TryPush(9));  // Capacity intact across the cycle.
  out.clear();
  EXPECT_EQ(q.PopBatch(out, 8), 2u);
  EXPECT_EQ(out, (std::vector<int>{7, 8}));
}

TYPED_TEST(RingContractTest, TryPushBatchIsAllOrNothing) {
  typename TypeParam::template Queue<int> q(4);
  int batch3[] = {1, 2, 3};
  EXPECT_TRUE(q.TryPushBatch(batch3, 3));
  int batch2[] = {4, 5};
  EXPECT_FALSE(q.TryPushBatch(batch2, 2));  // Only one slot free: none taken.
  EXPECT_EQ(batch2[0], 4);                  // Items untouched on rejection.
  EXPECT_EQ(batch2[1], 5);
  int one[] = {4};
  EXPECT_TRUE(q.TryPushBatch(one, 1));  // The single free slot is claimable.
  int oversized[8] = {};
  EXPECT_FALSE(q.TryPushBatch(oversized, 8));  // n > capacity can never fit.
  EXPECT_TRUE(q.TryPushBatch(nullptr, 0));     // Empty batch is a no-op.
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(out, 8), 4u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));  // Batch order preserved.
  q.Close();
  int after[] = {9};
  EXPECT_FALSE(q.TryPushBatch(after, 1));
}

TYPED_TEST(RingContractTest, BlockingPushWaitsForSpace) {
  typename TypeParam::template Queue<int> q(2);
  ASSERT_TRUE(q.TryPush(0));
  ASSERT_TRUE(q.TryPush(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // Parked on the full edge.
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(out, 1), 1u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  out.clear();
  EXPECT_EQ(q.PopBatch(out, 8), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TYPED_TEST(RingContractTest, CloseWakesBlockedProducer) {
  // No consumer thread: nothing can free a slot, so the blocked Push can only
  // return via the close wake (a drain racing ahead of Close would otherwise
  // let the push legitimately succeed).
  typename TypeParam::template Queue<int> q(2);
  ASSERT_TRUE(q.TryPush(0));
  ASSERT_TRUE(q.TryPush(1));
  std::thread producer([&] { EXPECT_FALSE(q.Push(2)); });  // Full, then closed.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  producer.join();
  // The accepted items survived the rejected push and the close.
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(out, 8), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1}));
  EXPECT_EQ(q.PopBatch(out, 8), 0u);
}

TYPED_TEST(RingContractTest, CloseWakesParkedConsumer) {
  typename TypeParam::template Queue<int> q(2);
  std::thread consumer([&] {
    std::vector<int> out;
    // Empty and open: parks until the close wake, then reports drained.
    EXPECT_EQ(q.PopBatch(out, 8), 0u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

// The accounting property the backpressure contract is built on, at the CI
// stress width (8 producers): every push that returned true drains exactly
// once, every TryPush that returned false drained zero times, and each
// producer's accepted items drain in its push order. Runs blocking Push on
// half the producers and TryPush (counting rejections) on the other half so
// both the parked-edge and the loud-failure paths are exercised under TSan.
TYPED_TEST(RingContractTest, EightProducerStressExactAccountingAndFifo) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 5000;
  typename TypeParam::template Queue<std::pair<int, int>> q(64);

  std::vector<std::vector<int>> drained(kProducers);
  std::thread consumer([&] {
    std::vector<std::pair<int, int>> batch;
    while (true) {
      batch.clear();
      if (q.PopBatch(batch, 128) == 0) {
        break;
      }
      for (const auto& [producer, seq] : batch) {
        drained[static_cast<std::size_t>(producer)].push_back(seq);
      }
    }
  });

  std::vector<std::size_t> accepted(kProducers, 0);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &accepted, p] {
      const bool blocking = (p % 2) == 0;
      std::size_t ok = 0;
      for (int i = 0; i < kPerProducer; ++i) {
        if (blocking) {
          ASSERT_TRUE(q.Push({p, i}));
          ++ok;
        } else if (q.TryPush({p, i})) {
          ++ok;
        }
        // Rejected TryPush items are simply dropped by this producer; the
        // accounting below proves the queue dropped nothing it accepted and
        // invented nothing it rejected.
      }
      accepted[static_cast<std::size_t>(p)] = ok;
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  q.Close();
  consumer.join();

  for (int p = 0; p < kProducers; ++p) {
    const auto& seqs = drained[static_cast<std::size_t>(p)];
    ASSERT_EQ(seqs.size(), accepted[static_cast<std::size_t>(p)])
        << "producer " << p << ": accepted/drained mismatch";
    if ((p % 2) == 0) {
      ASSERT_EQ(seqs.size(), static_cast<std::size_t>(kPerProducer));
    }
    // Per-producer FIFO: drained sequence numbers strictly increase.
    for (std::size_t i = 1; i < seqs.size(); ++i) {
      ASSERT_LT(seqs[i - 1], seqs[i]) << "producer " << p << " reordered";
    }
  }
}

// Concurrent batch producers: batches land contiguously (a drained window of
// one producer's batch is never interleaved) and accounting stays exact.
TYPED_TEST(RingContractTest, ConcurrentBatchClaimsStayContiguous) {
  constexpr int kProducers = 4;
  constexpr int kBatches = 2000;
  constexpr int kBatchLen = 3;
  typename TypeParam::template Queue<std::pair<int, int>> q(64);

  std::vector<std::vector<int>> drained(kProducers);
  std::thread consumer([&] {
    std::vector<std::pair<int, int>> batch;
    while (true) {
      batch.clear();
      if (q.PopBatch(batch, 128) == 0) {
        break;
      }
      for (const auto& [producer, seq] : batch) {
        drained[static_cast<std::size_t>(producer)].push_back(seq);
      }
    }
  });

  std::vector<std::size_t> accepted_batches(kProducers, 0);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &accepted_batches, p] {
      std::size_t ok = 0;
      for (int b = 0; b < kBatches; ++b) {
        std::pair<int, int> items[kBatchLen];
        for (int i = 0; i < kBatchLen; ++i) {
          items[i] = {p, b * kBatchLen + i};
        }
        if (q.TryPushBatch(items, kBatchLen)) {
          ++ok;
        }
      }
      accepted_batches[static_cast<std::size_t>(p)] = ok;
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  q.Close();
  consumer.join();

  for (int p = 0; p < kProducers; ++p) {
    const auto& seqs = drained[static_cast<std::size_t>(p)];
    ASSERT_EQ(seqs.size(), accepted_batches[static_cast<std::size_t>(p)] * kBatchLen);
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      if (i % kBatchLen == 0) {
        ASSERT_EQ(seqs[i] % kBatchLen, 0) << "batch start misaligned";
      } else {
        // Within a batch, members are consecutive: the claim was contiguous.
        ASSERT_EQ(seqs[i], seqs[i - 1] + 1) << "producer " << p << " batch torn";
      }
      if (i > 0 && i % kBatchLen == 0) {
        ASSERT_LT(seqs[i - 1], seqs[i]) << "batches reordered";
      }
    }
  }
}

}  // namespace
}  // namespace runtime
