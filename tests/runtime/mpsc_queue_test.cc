#include "runtime/mpsc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace runtime {
namespace {

TEST(MpscQueueTest, FifoSingleProducer) {
  MpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.TryPush(i));
  }
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(out, 16), 5u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(MpscQueueTest, TryPushFailsWhenFullAndRecovers) {
  MpscQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // The backpressure edge.
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(out, 1), 1u);  // Batch bound respected: one popped.
  EXPECT_EQ(out, std::vector<int>{1});
  EXPECT_TRUE(q.TryPush(3));  // Space freed.
  out.clear();
  EXPECT_EQ(q.PopBatch(out, 8), 2u);
  EXPECT_EQ(out, (std::vector<int>{2, 3}));
}

TEST(MpscQueueTest, CloseDrainsRemainderThenSignalsExit) {
  MpscQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_FALSE(q.Push(3));
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(out, 8), 2u);  // Remainder drains.
  EXPECT_EQ(q.PopBatch(out, 8), 0u);  // Closed-and-drained: consumer exits.
}

TEST(MpscQueueTest, BlockingPushWaitsForSpace) {
  MpscQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(0));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(1));
    pushed = true;
  });
  // The producer must be parked while the queue is full. (A sleep can only
  // produce a false pass, never a false failure.)
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(out, 1), 1u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  out.clear();
  EXPECT_EQ(q.PopBatch(out, 1), 1u);
  EXPECT_EQ(out, std::vector<int>{1});
}

TEST(MpscQueueTest, CloseWakesBlockedProducerAndConsumer) {
  MpscQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(0));
  std::thread producer([&] { EXPECT_FALSE(q.Push(1)); });  // Full, then closed.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  producer.join();
}

// The accounting property the runtime's backpressure contract is built on:
// with P producers pushing concurrently, every push that returned true is
// drained exactly once, and each producer's items drain in its push order.
TEST(MpscQueueTest, MultiProducerExactCountAndPerProducerFifo) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 10000;
  MpscQueue<std::pair<int, int>> q(64);  // {producer, sequence}

  std::vector<std::vector<int>> drained(kProducers);
  std::thread consumer([&] {
    std::vector<std::pair<int, int>> batch;
    std::size_t total = 0;
    while (true) {
      batch.clear();
      const std::size_t n = q.PopBatch(batch, 128);
      if (n == 0) {
        break;
      }
      total += n;
      for (const auto& [producer, seq] : batch) {
        drained[static_cast<std::size_t>(producer)].push_back(seq);
      }
    }
    EXPECT_EQ(total, static_cast<std::size_t>(kProducers) * kPerProducer);
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push({p, i}));
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  q.Close();
  consumer.join();

  for (int p = 0; p < kProducers; ++p) {
    ASSERT_EQ(drained[p].size(), static_cast<std::size_t>(kPerProducer));
    for (int i = 0; i < kPerProducer; ++i) {
      ASSERT_EQ(drained[p][static_cast<std::size_t>(i)], i)
          << "producer " << p << " reordered";
    }
  }
}

}  // namespace
}  // namespace runtime
