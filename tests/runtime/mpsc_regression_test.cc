// Regression tests for three MpscQueue paper cuts fixed alongside the
// lock-free ring work:
//
//  1. PopBatch used to leave moved-from ring slots holding whatever captured
//     state the task type's move left behind — for task types whose move is
//     a copy (or merely "valid but unspecified", like std::function), a
//     drained task's captures stayed pinned by an idle queue indefinitely.
//  2. The lvalue TryPush/Push overloads used to copy the item *before*
//     checking full/closed, so every rejected push paid (and discarded) a
//     full copy of the task under saturation — exactly when the system can
//     least afford it.
//  3. PopBatch used to push_back into the caller's vector under the queue
//     mutex with no reserve, so a cold vector reallocated (and could throw)
//     inside the critical section.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/lockfree_mpsc_queue.h"
#include "runtime/mpsc_queue.h"

namespace runtime {
namespace {

// A task type whose move degrades to copy (user-declared copy ops suppress
// the implicit move ops): after `out.push_back(std::move(slot))` the slot
// STILL holds the captured payload — the worst case the slot reset exists
// for. std::function lands in the same place via "valid but unspecified".
struct StickyTask {
  std::shared_ptr<int> payload;

  StickyTask() = default;
  explicit StickyTask(std::shared_ptr<int> p) : payload(std::move(p)) {}
  StickyTask(const StickyTask&) = default;
  StickyTask& operator=(const StickyTask&) = default;
};

TEST(MpscRegressionTest, DrainedSlotReleasesCapturedTaskState) {
  MpscQueue<StickyTask> q(4);
  auto payload = std::make_shared<int>(42);
  std::weak_ptr<int> observer = payload;
  ASSERT_TRUE(q.TryPush(StickyTask(std::move(payload))));

  std::vector<StickyTask> out;
  ASSERT_EQ(q.PopBatch(out, 4), 1u);
  ASSERT_TRUE(observer.lock() != nullptr);  // The drained copy holds it...
  out.clear();                              // ...until the consumer is done.

  // Pre-fix: the ring slot still held a copy of the capture, keeping it
  // alive until some later push overwrote the slot — on an idle queue,
  // arbitrarily long. Post-fix PopBatch resets drained slots to T{}.
  EXPECT_TRUE(observer.expired());
}

TEST(MpscRegressionTest, LockFreeDrainAlsoReleasesCapturedTaskState) {
  LockFreeMpscQueue<StickyTask> q(4);
  auto payload = std::make_shared<int>(7);
  std::weak_ptr<int> observer = payload;
  ASSERT_TRUE(q.TryPush(StickyTask(std::move(payload))));
  std::vector<StickyTask> out;
  ASSERT_EQ(q.PopBatch(out, 4), 1u);
  out.clear();
  EXPECT_TRUE(observer.expired());
}

// Counts copies; moves are free. Rejected pushes must cost zero copies.
struct CopyCounted {
  static int copies;
  int v = 0;

  CopyCounted() = default;
  explicit CopyCounted(int x) : v(x) {}
  CopyCounted(const CopyCounted& o) : v(o.v) { ++copies; }
  CopyCounted& operator=(const CopyCounted& o) {
    v = o.v;
    ++copies;
    return *this;
  }
  CopyCounted(CopyCounted&&) = default;
  CopyCounted& operator=(CopyCounted&&) = default;
};
int CopyCounted::copies = 0;

TEST(MpscRegressionTest, RejectedLvaluePushCostsNoCopy) {
  MpscQueue<CopyCounted> q(2);
  const CopyCounted item(1);

  CopyCounted::copies = 0;
  EXPECT_TRUE(q.TryPush(item));
  EXPECT_TRUE(q.TryPush(item));
  EXPECT_EQ(CopyCounted::copies, 2);  // One copy per *accepted* push.

  // Full: the pre-fix code copied first and threw the copy away.
  EXPECT_FALSE(q.TryPush(item));
  EXPECT_EQ(CopyCounted::copies, 2);

  q.Close();
  EXPECT_FALSE(q.TryPush(item));
  EXPECT_FALSE(q.Push(item));  // Blocking overload: closed check precedes copy.
  EXPECT_EQ(CopyCounted::copies, 2);
}

TEST(MpscRegressionTest, LockFreeRejectedLvaluePushCostsNoCopy) {
  LockFreeMpscQueue<CopyCounted> q(2);
  const CopyCounted item(1);
  CopyCounted::copies = 0;
  EXPECT_TRUE(q.TryPush(item));
  EXPECT_TRUE(q.TryPush(item));
  EXPECT_FALSE(q.TryPush(item));  // Full.
  q.Close();
  EXPECT_FALSE(q.TryPush(item));  // Closed.
  EXPECT_FALSE(q.Push(item));
  EXPECT_EQ(CopyCounted::copies, 2);
}

// Counts move-constructions (what vector growth and push_back perform).
struct MoveCounted {
  static int move_ctors;
  int v = 0;

  MoveCounted() = default;
  explicit MoveCounted(int x) : v(x) {}
  MoveCounted(MoveCounted&& o) noexcept : v(o.v) { ++move_ctors; }
  MoveCounted& operator=(MoveCounted&&) noexcept = default;
  MoveCounted(const MoveCounted&) = delete;
  MoveCounted& operator=(const MoveCounted&) = delete;
};
int MoveCounted::move_ctors = 0;

TEST(MpscRegressionTest, PopBatchReservesOnceAndNeverReallocatesMidDrain) {
  constexpr std::size_t kN = 64;
  MpscQueue<MoveCounted> q(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(q.TryPush(MoveCounted(static_cast<int>(i))));
  }

  // A cold, zero-capacity output vector is the worst case: without the
  // up-front reserve, push_back under the lock grows 1→2→4→…→64, move-
  // constructing every element again on each reallocation (63 extra moves).
  std::vector<MoveCounted> out;
  MoveCounted::move_ctors = 0;
  ASSERT_EQ(q.PopBatch(out, kN), kN);
  EXPECT_EQ(MoveCounted::move_ctors, static_cast<int>(kN))
      << "PopBatch reallocated the output vector mid-drain (inside the "
         "critical section) instead of reserving up front";
  EXPECT_GE(out.capacity(), kN);
}

TEST(MpscRegressionTest, LockFreePopBatchReservesOnce) {
  constexpr std::size_t kN = 64;
  LockFreeMpscQueue<MoveCounted> q(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(q.TryPush(MoveCounted(static_cast<int>(i))));
  }
  std::vector<MoveCounted> out;
  MoveCounted::move_ctors = 0;
  ASSERT_EQ(q.PopBatch(out, kN), kN);
  EXPECT_EQ(MoveCounted::move_ctors, static_cast<int>(kN));
}

}  // namespace
}  // namespace runtime
