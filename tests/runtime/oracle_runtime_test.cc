// The PR 1 invariant oracle run against the concurrent runtime: one oracle
// per shard (observer callbacks are shard-confined, so each oracle sees a
// complete single-threaded history for its core), a mixed broker + watch
// workload driven from multiple threads, then a quiesce and a full
// CheckQuiesced sweep. Zero violations proves the concurrent path preserves
// W1–W4 and the broker contracts — the routing layer added no behavior.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "oracle/invariant_oracle.h"
#include "runtime/concurrent_broker.h"
#include "runtime/concurrent_watch.h"
#include "runtime/shard_pool.h"
#include "watch/api.h"

namespace runtime {
namespace {

class NullCallback : public watch::WatchCallback {
 public:
  void OnEvent(const common::ChangeEvent&) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++events_;
  }
  void OnProgress(const common::ProgressEvent&) override {}
  void OnResync() override {
    std::lock_guard<std::mutex> lock(mu_);
    ++resyncs_;
  }
  int events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }
  int resyncs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return resyncs_;
  }

 private:
  mutable std::mutex mu_;
  int events_ = 0;
  int resyncs_ = 0;
};

TEST(RuntimeOracleTest, QuiescedConcurrentStackPassesAllInvariants) {
  constexpr std::size_t kShards = 4;
  constexpr pubsub::PartitionId kPartitions = 8;
  constexpr int kProducers = 2;
  constexpr int kPerProducer = 1000;

  RuntimeOptions options;
  options.shards = kShards;
  options.watch_splits = {"b", "c", "d"};
  ShardPool pool(options);

  // Attach one oracle per shard before Start: every observer callback fires
  // on that shard's thread (or inside a fence), so each oracle's bookkeeping
  // is single-threaded by the same ownership discipline as the cores.
  std::vector<std::unique_ptr<oracle::InvariantOracle>> oracles;
  for (std::size_t s = 0; s < kShards; ++s) {
    auto oracle = std::make_unique<oracle::InvariantOracle>(pool.core(s).sim.get());
    oracle->ObserveBroker(pool.core(s).broker.get());
    oracle->ObserveWatchSystem(pool.core(s).watch.get());
    oracles.push_back(std::move(oracle));
  }

  ConcurrentBroker broker(&pool);
  ConcurrentWatchService watch(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = kPartitions}).ok());
  ASSERT_TRUE(broker.JoinGroup("g", "t", "m1").ok());
  ASSERT_TRUE(broker.JoinGroup("g", "t", "m2").ok());

  // Watch sessions up front so the oracles owe them the subsequent ingests.
  NullCallback narrow;
  NullCallback wide;
  auto narrow_handle = watch.Watch("b", "c", 0, &narrow);
  auto wide_handle = watch.Watch(common::Key(), common::Key(), 0, &wide);

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        pubsub::Message msg;
        if (i % 3 == 0) {
          msg.key = "route-" + std::to_string(i % 31);
        }
        msg.value = "p" + std::to_string(t) + ":" + std::to_string(i);
        ASSERT_TRUE(broker.PublishSync("t", msg).ok());

        common::ChangeEvent event;
        event.key = std::string(1, static_cast<char>('a' + (i % 5))) + std::to_string(i % 37);
        event.mutation = common::Mutation::Put(msg.value);
        event.version = static_cast<common::Version>(t) * 1000000 + i + 1;
        watch.Append(event);
        if (i % 100 == 0) {
          broker.Heartbeat("g", t == 0 ? "m1" : "m2");
        }
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }

  // Commits at the observed end offsets, then a membership change.
  for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
    broker.CommitOffset("g", p, broker.EndOffset("t", p));
  }
  broker.LeaveGroup("g", "m2");
  EXPECT_EQ(broker.TotalBacklog("g", "t"), 0u);

  pool.Quiesce();

  // Everything drained: both sessions saw every accepted event in range.
  EXPECT_EQ(narrow.resyncs(), 0);
  EXPECT_EQ(wide.resyncs(), 0);
  const std::int64_t accepted =
      pool.metrics().counter("runtime.ingest_accepted").value();
  EXPECT_EQ(wide.events(), accepted);

  const ConcurrentWatchService::Stats stats = watch.TotalStats();
  EXPECT_EQ(stats.resyncs_sent, 0u);
  EXPECT_GE(stats.events_delivered, static_cast<std::uint64_t>(accepted));

  pool.Stop();

  for (std::size_t s = 0; s < kShards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    oracles[s]->Check();
    oracles[s]->CheckQuiesced();
    EXPECT_TRUE(oracles[s]->ok()) << oracles[s]->Report();
    EXPECT_GT(oracles[s]->checks_run(), 0u);
  }

  narrow_handle.reset();
  wide_handle.reset();
}

TEST(RuntimeOracleTest, OracleSurvivesOverloadWithBackpressure) {
  // Same sweep but with a saturating workload: rejections and blocking waits
  // exercise the backpressure paths, and the oracle still finds zero
  // violations — backpressure never corrupts core state, it only sheds load
  // before the core sees it.
  constexpr std::size_t kShards = 2;
  RuntimeOptions options;
  options.shards = kShards;
  options.queue_capacity = 8;
  options.max_batch = 4;
  options.watch_splits = {"c"};
  ShardPool pool(options);

  std::vector<std::unique_ptr<oracle::InvariantOracle>> oracles;
  for (std::size_t s = 0; s < kShards; ++s) {
    auto oracle = std::make_unique<oracle::InvariantOracle>(pool.core(s).sim.get());
    oracle->ObserveBroker(pool.core(s).broker.get());
    oracle->ObserveWatchSystem(pool.core(s).watch.get());
    oracles.push_back(std::move(oracle));
  }

  ConcurrentBroker broker(&pool);
  ConcurrentWatchService watch(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 4}).ok());

  NullCallback cb;
  auto handle = watch.Watch(common::Key(), common::Key(), 0, &cb);

  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        (void)broker.TryPublish("t", {"", "v", 0},
                                static_cast<pubsub::PartitionId>(i % 4));
        common::ChangeEvent event;
        event.key = (i % 2 == 0 ? "a" : "d") + std::to_string(i % 13);
        event.mutation = common::Mutation::Put("v");
        event.version = static_cast<common::Version>(t) * 1000000 + i + 1;
        (void)watch.TryIngest(event);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  pool.Quiesce();
  pool.Stop();

  for (std::size_t s = 0; s < kShards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    oracles[s]->Check();
    oracles[s]->CheckQuiesced();
    EXPECT_TRUE(oracles[s]->ok()) << oracles[s]->Report();
  }
  handle.reset();
}

}  // namespace
}  // namespace runtime
