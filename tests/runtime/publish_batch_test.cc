// Batched arena-staged publishing (PublishBatch + TryPublishBatch) and the
// shard-side zero-copy fetch (ConcurrentBroker::FetchSpans). The contract:
// a batch delivers exactly what an equivalent TryPublish loop delivers — same
// routing, same per-partition order, same bytes — while backpressure stays
// loud (kUnavailable + retry_after + accepted count) and batch reuse via
// Clear() settles into zero allocation.
#include <gtest/gtest.h>

#include <cstddef>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "pubsub/broker.h"
#include "pubsub/log.h"
#include "pubsub/types.h"
#include "runtime/concurrent_broker.h"
#include "runtime/publish_batch.h"
#include "runtime/shard_pool.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace runtime {
namespace {

TEST(PublishBatchTest, StagingCopiesBytesIntoTheArena) {
  PublishBatch batch;
  std::string key = "user-1";
  std::string value = "payload";
  batch.Add(key, value);
  // The staged views are the batch's own copies, not aliases of the caller's
  // strings — producers may reuse their buffers immediately.
  key.assign("XXXXXX");
  value.assign("YYYYYYY");
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.staged()[0].key, "user-1");
  EXPECT_EQ(batch.staged()[0].value, "payload");
  EXPECT_EQ(batch.staged()[0].headers, nullptr);
  EXPECT_EQ(batch.arena().bytes_allocated(), 13u);
}

TEST(PublishBatchTest, HeaderPointersStayStableAsTheBatchGrows) {
  PublishBatch batch(2);  // Small reserve: force staged_ reallocation.
  const pubsub::Headers headers = {{"h", "v"}};
  batch.Add("k0", "v0", headers);
  const pubsub::Headers* first = batch.staged()[0].headers;
  for (int i = 1; i < 100; ++i) {
    batch.Add("k" + std::to_string(i), "v", headers);
  }
  // Deque-backed header storage: growth must not move earlier headers.
  EXPECT_EQ(batch.staged()[0].headers, first);
  EXPECT_EQ(*batch.staged()[0].headers, headers);
}

TEST(PublishBatchTest, ClearRecyclesTheArenaToZeroAllocation) {
  PublishBatch batch(64, 4096);
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 50; ++i) {
      batch.Add("key-" + std::to_string(i), "value-" + std::to_string(i));
    }
    ASSERT_EQ(batch.size(), 50u);
    const std::size_t reserved = batch.arena().bytes_reserved();
    batch.Clear();
    EXPECT_TRUE(batch.empty());
    // Reset retained the slab: steady-state reuse allocates nothing new.
    EXPECT_EQ(batch.arena().bytes_reserved(), reserved) << "cycle " << cycle;
    EXPECT_EQ(batch.arena().slab_count(), 1u) << "cycle " << cycle;
  }
}

// A batch and a TryPublish loop fed the same records land identical logs:
// same routing, same per-partition sequence, same bytes.
TEST(PublishBatchTest, BatchDeliveryMatchesPerMessagePublishLoop) {
  constexpr pubsub::PartitionId kPartitions = 4;
  auto run = [&](bool batched) {
    ShardPool pool({.shards = 2});
    ConcurrentBroker broker(&pool);
    pool.Start();
    EXPECT_TRUE(broker.CreateTopic("t", {.partitions = kPartitions}).ok());

    common::Rng rng(5);
    auto batch = std::make_shared<PublishBatch>();
    for (int i = 0; i < 300; ++i) {
      // Mixed routing: keyed (hash) and keyless (facade round-robin cursor).
      const std::string key = rng.Below(2) ? "user-" + std::to_string(rng.Below(16)) : "";
      const std::string value = "v" + std::to_string(i);
      if (batched) {
        batch->Add(key, value);
      } else {
        common::TimeMicros backoff = 0;
        while (!broker.TryPublish("t", {key, value, 0}, std::nullopt, &backoff).ok()) {
          std::this_thread::yield();
        }
      }
    }
    if (batched) {
      std::size_t accepted = 0;
      EXPECT_TRUE(broker.TryPublishBatch("t", batch, nullptr, &accepted).ok());
      EXPECT_EQ(accepted, 300u);
    }
    pool.Quiesce();
    pool.Stop();
    std::vector<std::vector<pubsub::StoredMessage>> logs;
    for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
      const auto& entries = pool.core(broker.OwnerShard(p)).broker->Log("t", p)->entries();
      logs.emplace_back(entries.begin(), entries.end());
    }
    return logs;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(PublishBatchTest, HeadersRideTheBatchPath) {
  ShardPool pool({.shards = 1});
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());

  const pubsub::Headers headers = {{"content-type", "x"}, {"priority", "9"}};
  auto batch = std::make_shared<PublishBatch>();
  batch->Add("k", "with", headers);
  batch->Add("k", "without");
  ASSERT_TRUE(broker.TryPublishBatch("t", batch).ok());
  pool.Quiesce();

  const auto fetched = broker.Fetch("t", 0, 0, 10);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched->size(), 2u);
  EXPECT_EQ((*fetched)[0].message.headers, headers);
  EXPECT_TRUE((*fetched)[1].message.headers.empty());
  pool.Stop();
}

TEST(PublishBatchTest, SaturatedShardRejectsTheWholeBatchLoudly) {
  RuntimeOptions options;
  options.shards = 1;
  options.queue_capacity = 2;
  ShardPool pool(options);
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());

  // Park the worker, fill the queue; the batch's single task cannot post.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.Post(0, [gate] { gate.wait(); });
  while (pool.queue_depth(0) != 0) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(broker.TryPublish("t", {"", "a", 0}, 0).ok());
  ASSERT_TRUE(broker.TryPublish("t", {"", "b", 0}, 0).ok());

  auto batch = std::make_shared<PublishBatch>();
  batch->Add("", "c");
  batch->Add("", "d");
  common::TimeMicros retry_after = 0;
  std::size_t accepted = 7;  // Poisoned: must be zeroed on rejection.
  const common::Status status = broker.TryPublishBatch("t", batch, &retry_after, &accepted);
  EXPECT_EQ(status.code(), common::StatusCode::kUnavailable);
  EXPECT_GT(retry_after, 0);
  EXPECT_EQ(accepted, 0u);  // Single-shard batches are all-or-nothing.
  EXPECT_EQ(pool.metrics().counter("runtime.publish_rejected").value(), 2);

  release.set_value();
  pool.Quiesce();
  pool.Stop();
  // Only the two accepted singles landed; no partial batch leaked through.
  EXPECT_EQ(pool.core(0).broker->EndOffset("t", 0), 2u);
}

TEST(PublishBatchTest, EmptyAndUnknownBatchesAreHandled) {
  ShardPool pool({.shards = 1});
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  std::size_t accepted = 9;
  EXPECT_TRUE(broker.TryPublishBatch("t", nullptr, nullptr, &accepted).ok());
  EXPECT_EQ(accepted, 0u);
  auto batch = std::make_shared<PublishBatch>();
  EXPECT_TRUE(broker.TryPublishBatch("t", batch, nullptr, &accepted).ok());
  EXPECT_EQ(accepted, 0u);
  batch->Add("k", "v");
  EXPECT_EQ(broker.TryPublishBatch("missing", batch).code(),
            common::StatusCode::kNotFound);
  pool.Quiesce();
  pool.Stop();
}

TEST(PublishBatchTest, FetchSpansConsumesOnTheOwnerShard) {
  ShardPool pool({.shards = 2});
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 2}).ok());
  auto batch = std::make_shared<PublishBatch>();
  for (int i = 0; i < 10; ++i) {
    batch->Add("k", "v" + std::to_string(i));  // One key: one partition.
  }
  ASSERT_TRUE(broker.TryPublishBatch("t", batch).ok());
  pool.Quiesce();

  const pubsub::PartitionId p = pubsub::Broker::HashKey("k") % 2;
  std::vector<std::string> copied;
  const auto n = broker.FetchSpans("t", p, 2, 3, [&](const auto& spans) {
    // Borrowed views, valid only inside this callback (runs on the owner
    // shard with a ReadPin held): serialize out before returning.
    for (const auto& span : spans) {
      copied.push_back(std::string(span.value));
    }
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(copied, (std::vector<std::string>{"v2", "v3", "v4"}));
  // The pin was scoped to the call: nothing left pinned afterwards.
  EXPECT_EQ(pool.core(broker.OwnerShard(p)).broker->Log("t", p)->pins(), 0);

  EXPECT_EQ(broker.FetchSpans("missing", 0, 0, 1, [](const auto&) {}).status().code(),
            common::StatusCode::kNotFound);
  EXPECT_EQ(broker.FetchSpans("t", 5, 0, 1, [](const auto&) {}).status().code(),
            common::StatusCode::kInvalidArgument);
  pool.Stop();
}

TEST(PublishBatchTest, BatchPathWorksIdenticallyOverTheLockFreeRing) {
  auto run = [](bool lockfree) {
    RuntimeOptions options;
    options.shards = 2;
    options.lockfree_ring = lockfree;
    ShardPool pool(options);
    ConcurrentBroker broker(&pool);
    pool.Start();
    EXPECT_TRUE(broker.CreateTopic("t", {.partitions = 4}).ok());
    for (int round = 0; round < 20; ++round) {
      auto batch = std::make_shared<PublishBatch>();
      for (int i = 0; i < 50; ++i) {
        batch->Add("user-" + std::to_string(i % 8), "r" + std::to_string(round));
      }
      // At the default queue depth a handful of batch tasks can never bounce,
      // so no retry loop (a retry after partial acceptance would duplicate).
      EXPECT_TRUE(broker.TryPublishBatch("t", batch).ok());
    }
    pool.Quiesce();
    pool.Stop();
    std::vector<std::vector<pubsub::StoredMessage>> logs;
    for (pubsub::PartitionId p = 0; p < 4; ++p) {
      const auto& entries = pool.core(broker.OwnerShard(p)).broker->Log("t", p)->entries();
      logs.emplace_back(entries.begin(), entries.end());
    }
    return logs;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace runtime
