// Regression suite for retry_after hints under sustained overload.
//
// The contract (ConcurrentBroker header): on EVERY kUnavailable rejection
// the hint is NONZERO — callers may sleep it verbatim with no zero-spin
// guard — and bounded (<= ShardPool::kRetryHintMaxScale x the configured
// base). The pre-fix bugs this pins:
//
//   * ConcurrentWatchService::TryIngest echoed the raw configured
//     retry_after, so a pool configured with retry_after = 0 handed
//     rejected feeders a 0 hint — "retry immediately, forever" — while the
//     broker paths clamped to >= 1. A CDC feeder sleeping the hint verbatim
//     spun the CPU against a saturated shard.
//   * Hints were a flat constant regardless of ring depth; now they scale
//     with occupancy through ShardPool::RetryAfterHint, and a full ring
//     never resets the hint back toward zero while it stays full.
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <thread>

#include "common/types.h"
#include "obs/trace.h"
#include "runtime/concurrent_broker.h"
#include "runtime/concurrent_watch.h"
#include "runtime/shard_pool.h"

namespace runtime {
namespace {

// Parks shard 0's worker inside a task and fills the ring to the brim, so
// every Try* below rejects deterministically at depth == capacity.
struct SaturatedShard {
  explicit SaturatedShard(ShardPool* pool) : pool(pool) {
    gate = release.get_future().share();
    auto g = gate;
    pool->Post(0, [g] { g.wait(); });
    while (pool->queue_depth(0) != 0) std::this_thread::yield();
    while (pool->TryPost(0, [] {})) {
    }
  }

  ~SaturatedShard() {
    release.set_value();
    pool->Quiesce();
  }

  ShardPool* pool;
  std::promise<void> release;
  std::shared_future<void> gate;
};

TEST(RetryHintTest, HintIsNeverZeroEvenWhenConfiguredZero) {
  // retry_after = 0 is the lying configuration: pre-fix, the watch ingest
  // path echoed it verbatim.
  RuntimeOptions o;
  o.shards = 1;
  o.queue_capacity = 8;
  o.retry_after = 0;
  ShardPool pool(o);
  ConcurrentBroker broker(&pool);
  ConcurrentWatchService watch(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  {
    SaturatedShard full(&pool);

    common::TimeMicros hint = 0;
    EXPECT_FALSE(broker.TryPublish("t", {"", "v", 0}, 0, &hint).ok());
    EXPECT_GE(hint, 1) << "publish hint of 0 means spin-retry";
    EXPECT_LE(hint, ShardPool::kRetryHintMaxScale);

    hint = 0;
    EXPECT_FALSE(watch.TryIngest({"k", common::Mutation::Put("v"), 1, true}, &hint).ok());
    EXPECT_GE(hint, 1) << "ingest hint of 0 means spin-retry (the pre-fix bug)";
    EXPECT_LE(hint, ShardPool::kRetryHintMaxScale);
  }
  pool.Stop();
}

TEST(RetryHintTest, HintScalesWithDepthAndStaysBoundedWhileFull) {
  RuntimeOptions o;
  o.shards = 1;
  o.queue_capacity = 16;
  o.retry_after = 100;
  ShardPool pool(o);
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());

  // Empty ring: the hint is the configured base.
  EXPECT_EQ(pool.RetryAfterHint(0), 100);

  {
    SaturatedShard full(&pool);
    // Full ring (worker parked, depth pinned at capacity): the hint is the
    // full-scale bound — and STAYS there across repeated rejections. The
    // regression guarded against: a later rejection resetting the hint to
    // zero (or the base) while the ring is still full.
    const common::TimeMicros full_hint = ShardPool::kRetryHintMaxScale * 100;
    EXPECT_EQ(pool.RetryAfterHint(0), full_hint);
    for (int i = 0; i < 100; ++i) {
      common::TimeMicros hint = 0;
      EXPECT_FALSE(broker.TryPublish("t", {"", "v", 0}, 0, &hint).ok());
      ASSERT_EQ(hint, full_hint) << "rejection " << i << " broke the sustained-overload bound";
    }
  }
  pool.Stop();
}

TEST(RetryHintTest, AsyncPathsCarryTheSameScaledHint) {
  RuntimeOptions o;
  o.shards = 1;
  o.queue_capacity = 4;
  o.retry_after = 50;
  ShardPool pool(o);
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  {
    SaturatedShard full(&pool);
    const common::TimeMicros full_hint = ShardPool::kRetryHintMaxScale * 50;

    common::TimeMicros hint = 0;
    EXPECT_FALSE(broker
                     .TryPublishAsync("t", {"", "v", 0}, 0, &hint,
                                      [](common::Result<pubsub::PublishResult>) {
                                        FAIL() << "rejected publish must not complete";
                                      })
                     .ok());
    EXPECT_EQ(hint, full_hint);

    hint = 0;
    EXPECT_FALSE(broker
                     .TryFetchAsync("t", 0, 0, 16, &hint,
                                    [](common::Result<std::vector<pubsub::StoredMessage>>) {
                                      FAIL() << "rejected fetch must not complete";
                                    })
                     .ok());
    EXPECT_EQ(hint, full_hint);

    hint = 0;
    EXPECT_FALSE(broker.TryCommitAsync("g", 0, 7, &hint, nullptr).ok());
    EXPECT_EQ(hint, full_hint);
  }
  pool.Stop();
}

}  // namespace
}  // namespace runtime
