// Ring equivalence: RuntimeOptions::lockfree_ring must be a pure data-plane
// swap. Two layers of proof:
//
//  1. Raw queues driven by an identical deterministic op script (pushes, batch
//     pushes, drains, close/reopen) produce identical accept/reject/drain
//     traces — the rings agree operation by operation, not just in aggregate.
//  2. Whole ShardPool stacks running the same routed publish workload over
//     either ring produce byte-identical per-partition broker logs — the
//     toggle adds no observable behavior above the ring.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "pubsub/broker.h"
#include "pubsub/log.h"
#include "pubsub/types.h"
#include "runtime/concurrent_broker.h"
#include "runtime/lockfree_mpsc_queue.h"
#include "runtime/mpsc_queue.h"
#include "runtime/publish_batch.h"
#include "runtime/shard_pool.h"

namespace runtime {
namespace {

// Drives one queue through a fixed op script and records everything externally
// observable: accept/reject of each push, the exact drained values of each
// PopBatch, and size/closed probes. Single-threaded, so blocking ops are
// excluded and the trace is fully deterministic.
template <typename Queue>
std::vector<std::string> RunScript(Queue& q, std::uint32_t seed, int ops) {
  common::Rng rng(seed);
  std::vector<std::string> trace;
  int next_value = 0;
  for (int i = 0; i < ops; ++i) {
    switch (rng.Below(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // TryPush (weighted: pushes dominate real traffic).
        const int v = next_value++;
        trace.push_back("push " + std::to_string(v) + " " +
                        (q.TryPush(v) ? "ok" : "rej"));
        break;
      }
      case 4:
      case 5: {  // TryPushBatch of 1..4.
        const std::size_t n = 1 + rng.Below(4);
        std::vector<int> items;
        for (std::size_t j = 0; j < n; ++j) {
          items.push_back(next_value++);
        }
        trace.push_back("batch " + std::to_string(n) + " " +
                        (q.TryPushBatch(items.data(), n) ? "ok" : "rej"));
        break;
      }
      case 6:
      case 7: {  // PopBatch of 1..6.
        const std::size_t max = 1 + rng.Below(6);
        // PopBatch blocks while empty-and-open; single-threaded, that would
        // deadlock. The skip decision depends only on trace-identical state
        // (size/closed), so both rings skip the same ops.
        if (q.size() == 0 && !q.closed()) {
          trace.push_back("pop skipped");
          break;
        }
        std::vector<int> out;
        const std::size_t popped = q.PopBatch(out, max);
        std::string line = "pop " + std::to_string(popped) + ":";
        for (int v : out) {
          line += " " + std::to_string(v);
        }
        trace.push_back(line);
        break;
      }
      case 8:  // Probes.
        trace.push_back("size " + std::to_string(q.size()) +
                        (q.closed() ? " closed" : " open"));
        break;
      default:  // Close / Reopen cycles.
        if (q.closed()) {
          q.Reopen();
          trace.push_back("reopen");
        } else {
          q.Close();
          trace.push_back("close");
        }
        break;
    }
  }
  return trace;
}

TEST(RingEquivalenceTest, ScriptedOpTracesAreIdentical) {
  // Several seeds and an awkward (non-power-of-two) capacity so the scripts
  // exercise full-edge rejections, partial drains, and close/reopen in many
  // different interleavings.
  for (std::uint32_t seed : {1u, 7u, 42u, 1234u}) {
    MpscQueue<int> mutex_q(5);
    LockFreeMpscQueue<int> lockfree_q(5);
    const auto mutex_trace = RunScript(mutex_q, seed, 3000);
    const auto lockfree_trace = RunScript(lockfree_q, seed, 3000);
    ASSERT_EQ(lockfree_trace, mutex_trace) << "seed " << seed;
  }
}

// One routed publish workload (all three routing modes plus batched publishes)
// against a pool; returns the per-partition logs for comparison.
std::vector<std::vector<pubsub::StoredMessage>> RunPoolWorkload(bool lockfree) {
  constexpr std::size_t kShards = 4;
  constexpr pubsub::PartitionId kPartitions = 8;

  RuntimeOptions options;
  options.shards = kShards;
  options.lockfree_ring = lockfree;
  ShardPool pool(options);
  ConcurrentBroker broker(&pool);
  pool.Start();
  EXPECT_TRUE(broker.CreateTopic("t", {.partitions = kPartitions}).ok());

  common::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    pubsub::Message msg;
    msg.value = "v" + std::to_string(i);
    std::optional<pubsub::PartitionId> part;
    switch (rng.Below(3)) {
      case 0:
        msg.key = "user-" + std::to_string(rng.Below(32));
        break;
      case 1:
        part = static_cast<pubsub::PartitionId>(rng.Below(kPartitions));
        break;
      default:
        break;
    }
    EXPECT_TRUE(broker.PublishSync("t", msg, part).ok());
  }
  // A keyed arena-staged batch rides the same logs through the span path.
  auto batch = std::make_shared<PublishBatch>();
  for (int i = 0; i < 200; ++i) {
    batch->Add("user-" + std::to_string(i % 32), "b" + std::to_string(i));
  }
  EXPECT_TRUE(broker.TryPublishBatch("t", batch).ok());
  pool.Quiesce();
  pool.Stop();

  std::vector<std::vector<pubsub::StoredMessage>> logs;
  for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
    const auto& entries = pool.core(broker.OwnerShard(p)).broker->Log("t", p)->entries();
    logs.emplace_back(entries.begin(), entries.end());
  }
  return logs;
}

TEST(RingEquivalenceTest, ShardPoolDeliveryIsIdenticalUnderEitherRing) {
  EXPECT_EQ(RunPoolWorkload(false), RunPoolWorkload(true));
}

}  // namespace
}  // namespace runtime
