#include "runtime/shard_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "watch/api.h"

namespace runtime {
namespace {

RuntimeOptions SmallOptions(std::size_t shards) {
  RuntimeOptions o;
  o.shards = shards;
  o.queue_capacity = 64;
  return o;
}

TEST(ShardPoolTest, CoresAreIndependentSingleThreadedStacks) {
  ShardPool pool(SmallOptions(2));
  EXPECT_EQ(pool.shard_count(), 2u);
  EXPECT_FALSE(pool.running());
  EXPECT_NE(pool.core(0).broker.get(), pool.core(1).broker.get());
  // Not running: cores are plain single-threaded objects, touchable directly.
  EXPECT_TRUE(pool.core(0).broker->CreateTopic("t", {.partitions = 2}).ok());
  EXPECT_TRUE(pool.core(0).broker->HasTopic("t"));
  EXPECT_FALSE(pool.core(1).broker->HasTopic("t"));
  EXPECT_EQ(pool.core(0).broker->node(), "broker-0");
  EXPECT_EQ(pool.core(1).broker->node(), "broker-1");
}

TEST(ShardPoolTest, RunOnExecutesOnWorkerAndReturnsValue) {
  ShardPool pool(SmallOptions(2));
  pool.Start();
  EXPECT_TRUE(pool.running());
  const std::string node =
      pool.RunOn(1, [](ShardCore& core) { return std::string(core.broker->node()); });
  EXPECT_EQ(node, "broker-1");
  const std::thread::id worker =
      pool.RunOn(0, [](ShardCore&) { return std::this_thread::get_id(); });
  EXPECT_NE(worker, std::this_thread::get_id());
  pool.Stop();
  EXPECT_FALSE(pool.running());
}

TEST(ShardPoolTest, PostRunsInlineWhenStopped) {
  ShardPool pool(SmallOptions(1));
  bool ran = false;
  pool.Post(0, [&ran] { ran = true; });
  EXPECT_TRUE(ran);  // Inline: the pool never started.
}

TEST(ShardPoolTest, StopIsIdempotentAndDrains) {
  ShardPool pool(SmallOptions(2));
  pool.Start();
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Post(i % 2, [&ran] { ran.fetch_add(1); });
  }
  pool.Stop();
  pool.Stop();
  EXPECT_EQ(ran.load(), 100);  // Stop drains what was enqueued.
}

TEST(ShardPoolTest, TryPostBackpressureWhenSaturated) {
  RuntimeOptions o;
  o.shards = 1;
  o.queue_capacity = 2;
  ShardPool pool(o);
  pool.Start();

  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.Post(0, [gate] { gate.wait(); });
  // Wait until the worker has dequeued the gate task and is parked in it.
  while (pool.queue_depth(0) != 0) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(pool.TryPost(0, [] {}));
  EXPECT_TRUE(pool.TryPost(0, [] {}));
  EXPECT_FALSE(pool.TryPost(0, [] {}));  // Queue full: loud rejection.
  release.set_value();
  pool.Quiesce();
  EXPECT_EQ(pool.metrics().counter("runtime.post_rejected").value(), 1);
  pool.Stop();
}

TEST(ShardPoolTest, RunFencedTouchesEveryCore) {
  ShardPool pool(SmallOptions(4));
  pool.Start();
  // The fence parks all workers; the caller may touch any core, cross-shard.
  pool.RunFenced([&] {
    for (std::size_t s = 0; s < pool.shard_count(); ++s) {
      EXPECT_TRUE(pool.core(s).broker->CreateTopic("fenced", {.partitions = 4}).ok());
    }
  });
  for (std::size_t s = 0; s < pool.shard_count(); ++s) {
    EXPECT_TRUE(pool.RunOn(s, [](ShardCore& core) { return core.broker->HasTopic("fenced"); }));
  }
  pool.Stop();
}

TEST(ShardPoolTest, QuiesceFlushesZeroLatencyDeliveries) {
  struct CountingCallback : watch::WatchCallback {
    std::atomic<int> events{0};
    void OnEvent(const common::ChangeEvent&) override { events.fetch_add(1); }
    void OnProgress(const common::ProgressEvent&) override {}
    void OnResync() override {}
  };
  ShardPool pool(SmallOptions(1));
  CountingCallback cb;
  std::unique_ptr<watch::WatchHandle> handle;
  pool.Start();
  pool.RunOn(0, [&](ShardCore& core) {
    handle = core.watch->Watch(common::Key(), common::Key(), 0, &cb);
  });
  for (int i = 0; i < 10; ++i) {
    pool.Post(0, [&pool, i] {
      pool.core(0).watch->Append({"k" + std::to_string(i), common::Mutation::Put("v"),
                                  static_cast<common::Version>(i + 1), true});
    });
  }
  pool.Quiesce();
  // Every append's zero-latency delivery has run by the time Quiesce returns.
  EXPECT_EQ(cb.events.load(), 10);
  pool.Stop();
  handle.reset();  // Inline cancel: the pool is stopped.
}

TEST(ShardPoolTest, TaskAndBatchCountersAdvance) {
  ShardPool pool(SmallOptions(2));
  pool.Start();
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    pool.Post(i % 2, [&ran] { ran.fetch_add(1); });
  }
  pool.Quiesce();
  pool.Stop();
  EXPECT_EQ(ran.load(), 50);
  EXPECT_GE(pool.metrics().counter("runtime.tasks_run").value(), 50);
  EXPECT_GE(pool.metrics().counter("runtime.batches_run").value(), 1);
}

TEST(ShardPoolTest, ShardSimulatorsAdvanceByTickPerBatch) {
  RuntimeOptions o = SmallOptions(1);
  o.tick = 10;
  ShardPool pool(o);
  pool.Start();
  pool.Post(0, [] {});
  pool.Quiesce();
  pool.Stop();
  EXPECT_GT(pool.core(0).sim->Now(), 0);
}

TEST(ShardPoolTest, DefaultTickKeepsClocksAtZeroForDeterminism) {
  ShardPool pool(SmallOptions(2));
  pool.Start();
  for (int i = 0; i < 20; ++i) {
    pool.Post(i % 2, [] {});
  }
  pool.Quiesce();
  pool.Stop();
  EXPECT_EQ(pool.core(0).sim->Now(), 0);
  EXPECT_EQ(pool.core(1).sim->Now(), 0);
}

TEST(ShardPoolTest, PinShardsFallsBackGracefullyWhenOversubscribed) {
  // More shards than CPUs: pinning would serialize shards behind each other,
  // so the pool must run unpinned — visibly (gauge and accessor at 0) — and
  // still work.
  RuntimeOptions o = SmallOptions(std::thread::hardware_concurrency() + 1);
  o.pin_shards = true;
  ShardPool pool(o);
  pool.Start();
  EXPECT_EQ(pool.pinned_shards(), 0u);
  EXPECT_EQ(pool.metrics().gauge("runtime.shards_pinned").value(), 0);
  std::atomic<int> ran{0};
  for (std::size_t s = 0; s < pool.shard_count(); ++s) {
    pool.Post(s, [&ran] { ran.fetch_add(1); });
  }
  pool.Quiesce();
  EXPECT_EQ(ran.load(), static_cast<int>(pool.shard_count()));
  pool.Stop();
}

TEST(ShardPoolTest, PinShardsPinsWorkersWhenCapacityAllows) {
  RuntimeOptions o = SmallOptions(1);
  o.pin_shards = true;
  ShardPool pool(o);
  pool.Start();
  // Workers pin themselves before entering their loop; a task round trip
  // proves the worker is past that point.
  pool.RunOn(0, [](ShardCore&) { return 0; });
#if defined(__linux__)
  // One shard always fits: hardware_concurrency() >= 1.
  EXPECT_EQ(pool.pinned_shards(), 1u);
  EXPECT_EQ(pool.metrics().gauge("runtime.shards_pinned").value(), 1);
#else
  // Non-Linux: affinity is unsupported; the fallback is the contract.
  EXPECT_EQ(pool.pinned_shards(), 0u);
#endif
  pool.Stop();
  // Restart re-derives the pin decision from scratch.
  pool.Start();
  pool.RunOn(0, [](ShardCore&) { return 0; });
#if defined(__linux__)
  EXPECT_EQ(pool.pinned_shards(), 1u);
#endif
  pool.Stop();
}

TEST(ShardPoolTest, PinShardsOffByDefault) {
  ShardPool pool(SmallOptions(1));
  pool.Start();
  EXPECT_EQ(pool.pinned_shards(), 0u);
  pool.Stop();
}

}  // namespace
}  // namespace runtime
