// The slow-consumer policy matrix (SlowConsumerPolicy), pinned as
// properties:
//
//   * kBlock      — loses nothing, ever: every published offset is delivered
//                   in order, and the stall counter proves backpressure
//                   actually engaged.
//   * kDropOldest — loss is exact: delivered + drops() == published, the
//                   drops() accessor equals the runtime.slow_consumer.drops
//                   counter, and what survives is in order (a gap is allowed,
//                   a reorder or duplicate is not). Run across seeds with an
//                   erratically pausing consumer.
//   * kDisconnect — overflow is terminal and loud: broken() latches, Wait()
//                   returns false once drained, the disconnect counter bumps,
//                   and an obs kSessionBreak with cause "slow_consumer" is
//                   logged. An idle-but-full subscription is NOT cut — only
//                   an overflow with data pending escalates.
//
// The over-socket variant drives the same kDisconnect path through pubsubd
// (ServerOptions::slow_consumer) with a subscriber that never drains its
// connection, and asserts the whole session is torn down with the same
// cause. Suite label: overload.
#include "runtime/subscription.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "common/rng.h"
#include "obs/collector.h"
#include "pubsub/types.h"
#include "runtime/concurrent_broker.h"
#include "runtime/shard_pool.h"
#include "server/pubsubd.h"

namespace runtime {
namespace {

using Clock = std::chrono::steady_clock;

void SleepUs(std::int64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

// Publishes kMessages to t/0, riding backpressure.
void PublishAll(ConcurrentBroker* broker, int messages) {
  for (int i = 0; i < messages; ++i) {
    common::TimeMicros backoff = 0;
    while (!broker->TryPublish("t", {"", "v" + std::to_string(i), 0}, 0, &backoff).ok()) {
      SleepUs(backoff);
    }
  }
}

TEST(SlowConsumerPolicyTest, BlockStallsAndLosesNothing) {
  constexpr int kMessages = 3000;
  ShardPool pool({.shards = 1, .event_driven = true});
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  auto sub = broker.Subscribe("t", 0, 0,
                              {.handoff_capacity = 32,
                               .shard_batch = 16,
                               .slow_consumer = SlowConsumerPolicy::kBlock});
  ASSERT_NE(sub, nullptr);

  std::thread producer([&] { PublishAll(&broker, kMessages); });
  std::vector<pubsub::StoredMessage> got;
  const auto deadline = Clock::now() + std::chrono::seconds(30);
  while (got.size() < static_cast<std::size_t>(kMessages) && Clock::now() < deadline) {
    if (sub->PollBatch(&got, 16) == 0) (void)sub->Wait(2000);
  }
  producer.join();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_EQ(got[i].offset, static_cast<pubsub::Offset>(i)) << "gap or reorder at " << i;
  }
  EXPECT_EQ(sub->drops(), 0u);
  EXPECT_FALSE(sub->broken());
  // The handoff (32) is far smaller than the feed: kBlock must actually have
  // stalled, not just happened to keep up.
  EXPECT_GT(pool.metrics().counter("runtime.slow_consumer.stalls").value(), 0u);
  EXPECT_EQ(pool.metrics().counter("runtime.slow_consumer.drops").value(), 0u);
  EXPECT_EQ(pool.metrics().counter("runtime.slow_consumer.disconnects").value(), 0u);
  sub.reset();
  pool.Stop();
}

TEST(SlowConsumerPolicyTest, DropOldestLossIsExactAcrossSeeds) {
  constexpr int kMessages = 4000;
  for (const std::uint64_t seed : {11ull, 23ull, 47ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ShardPool pool({.shards = 1, .event_driven = true});
    ConcurrentBroker broker(&pool);
    pool.Start();
    ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
    auto sub = broker.Subscribe("t", 0, 0,
                                {.handoff_capacity = 64,
                                 .shard_batch = 32,
                                 .slow_consumer = SlowConsumerPolicy::kDropOldest});
    ASSERT_NE(sub, nullptr);

    std::thread producer([&] { PublishAll(&broker, kMessages); });
    // Erratic consumer: seeded bursts of draining interleaved with pauses
    // long enough to overflow the handoff repeatedly.
    common::Rng rng(seed);
    std::vector<pubsub::StoredMessage> got;
    const auto deadline = Clock::now() + std::chrono::seconds(30);
    while (got.size() + sub->drops() < static_cast<std::size_t>(kMessages) &&
           Clock::now() < deadline) {
      const std::size_t sip = 1 + rng.Next() % 48;
      if (sub->PollBatch(&got, sip) == 0) {
        (void)sub->Wait(1000);
      } else if (rng.Next() % 4 == 0) {
        SleepUs(static_cast<std::int64_t>(rng.Next() % 2000));
      }
    }
    producer.join();

    // Loss accounting is exact: every published record was either delivered
    // or counted as a drop — nothing silent.
    EXPECT_EQ(got.size() + sub->drops(), static_cast<std::size_t>(kMessages));
    EXPECT_EQ(sub->drops(), pool.metrics().counter("runtime.slow_consumer.drops").value());
    EXPECT_GT(sub->drops(), 0u) << "consumer kept up; the property was not exercised";
    // Survivors are in order — gaps allowed, duplicates and reorders not.
    for (std::size_t i = 1; i < got.size(); ++i) {
      ASSERT_LT(got[i - 1].offset, got[i].offset) << "duplicate or reorder at " << i;
    }
    EXPECT_FALSE(sub->broken());
    EXPECT_EQ(pool.metrics().counter("runtime.slow_consumer.disconnects").value(), 0u);
    sub.reset();
    pool.Stop();
  }
}

TEST(SlowConsumerPolicyTest, DisconnectCutsOverflowAndLogsSessionBreak) {
  common::MetricsRegistry obs_metrics;
  obs::Collector obs(&obs_metrics);
  RuntimeOptions opts{.shards = 1, .event_driven = true};
  opts.obs = &obs;
  ShardPool pool(opts);
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  auto sub = broker.Subscribe("t", 0, 0,
                              {.handoff_capacity = 8,
                               .shard_batch = 4,
                               .slow_consumer = SlowConsumerPolicy::kDisconnect});
  ASSERT_NE(sub, nullptr);

  // Never drain; keep publishing until the overflow cuts the subscription.
  const auto deadline = Clock::now() + std::chrono::seconds(20);
  int published = 0;
  while (!sub->broken() && Clock::now() < deadline) {
    common::TimeMicros backoff = 0;
    if (broker.TryPublish("t", {"", "v" + std::to_string(published), 0}, 0, &backoff).ok()) {
      ++published;
    } else {
      SleepUs(backoff);
    }
  }
  ASSERT_TRUE(sub->broken()) << "overflow never cut the subscription";
  EXPECT_GE(pool.metrics().counter("runtime.slow_consumer.disconnects").value(), 1u);
  EXPECT_EQ(sub->drops(), 0u);

  // The break is loud in obs: a kSessionBreak with cause "slow_consumer".
  bool saw_break = false;
  for (const obs::ObsEvent& e : obs.Events()) {
    if (e.kind == obs::EventKind::kSessionBreak && e.cause == "slow_consumer") saw_break = true;
  }
  EXPECT_TRUE(saw_break);
  EXPECT_GE(obs_metrics.counter("obs.event.session_break.slow_consumer").value(), 1u);

  // Buffered messages stay drainable; once they are gone Wait reports the
  // terminal state.
  std::vector<pubsub::StoredMessage> leftovers;
  while (sub->PollBatch(&leftovers, 256) > 0) {
  }
  EXPECT_FALSE(sub->Wait(1000));
  sub.reset();
  pool.Stop();
}

TEST(SlowConsumerPolicyTest, DisconnectSparesIdleFullSubscription) {
  // The cut fires only on overflow WITH data pending (a waiter firing into a
  // full buffer). A subscription whose buffer is merely full — consumer
  // paused, publisher quiet — must survive and resume cleanly.
  constexpr int kCapacity = 16;
  ShardPool pool({.shards = 1, .event_driven = true});
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  auto sub = broker.Subscribe("t", 0, 0,
                              {.handoff_capacity = kCapacity,
                               .shard_batch = kCapacity,
                               .slow_consumer = SlowConsumerPolicy::kDisconnect});
  ASSERT_NE(sub, nullptr);

  // Fill the handoff to exactly its bound, then go quiet.
  PublishAll(&broker, kCapacity);
  SleepUs(200'000);
  EXPECT_FALSE(sub->broken()) << "idle-but-full subscription was cut";

  // Drain, publish one more: delivery resumes as if nothing happened.
  std::vector<pubsub::StoredMessage> got;
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (got.size() < kCapacity && Clock::now() < deadline) {
    if (sub->PollBatch(&got, 256) == 0) (void)sub->Wait(2000);
  }
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kCapacity));
  ASSERT_TRUE(broker.PublishSync("t", {"", "tail", 0}, 0).ok());
  while (got.size() < kCapacity + 1 && Clock::now() < deadline) {
    if (sub->PollBatch(&got, 256) == 0) (void)sub->Wait(2000);
  }
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kCapacity + 1));
  EXPECT_EQ(got.back().message.value, "tail");
  EXPECT_FALSE(sub->broken());
  sub.reset();
  pool.Stop();
}

TEST(SlowConsumerPolicyTest, PolicyNamesAreStable) {
  EXPECT_STREQ(SlowConsumerPolicyName(SlowConsumerPolicy::kBlock), "block");
  EXPECT_STREQ(SlowConsumerPolicyName(SlowConsumerPolicy::kDropOldest), "drop_oldest");
  EXPECT_STREQ(SlowConsumerPolicyName(SlowConsumerPolicy::kDisconnect), "disconnect");
}

// -- Over the socket -----------------------------------------------------------

TEST(SlowConsumerSocketTest, DisconnectTearsDownNonDrainingSession) {
  common::MetricsRegistry obs_metrics;
  obs::Collector obs(&obs_metrics);
  RuntimeOptions pool_opts{.shards = 1, .event_driven = true};
  pool_opts.obs = &obs;
  ShardPool pool(pool_opts);
  ConcurrentBroker broker(&pool);
  pool.Start();

  server::ServerOptions server_opts;
  server_opts.obs = &obs;
  // Tight budgets so a non-draining subscriber overflows fast: a small
  // socket-side watermark pauses session draining early, the small handoff
  // lane then fills, and the next append escalates to the policy.
  server_opts.send_buffer_limit = 32 * 1024;
  server_opts.subscription_handoff = 16;
  server_opts.slow_consumer = SlowConsumerPolicy::kDisconnect;
  server::Server srv(&broker, nullptr, &pool.metrics(), server_opts);
  ASSERT_TRUE(srv.Start().ok());

  auto consumer_r = client::Client::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(consumer_r.ok());
  auto consumer = std::move(consumer_r).value();
  ASSERT_TRUE(consumer->CreateTopic("t", {.partitions = 1}).ok());
  auto stream_r = consumer->Subscribe("t", 0, 0);
  ASSERT_TRUE(stream_r.ok());
  auto stream = std::move(stream_r).value();
  // The consumer now never reads: no Poll calls, so DELIVER frames pile up
  // in the kernel buffers, then in the session's out buffer, then in the
  // subscription handoff. (The heartbeat thread only writes, keeping the
  // session alive — the teardown we want must be the policy's, not the
  // dead-peer sweep's.)

  auto producer_r = client::Client::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(producer_r.ok());
  auto producer = std::move(producer_r).value();

  const std::string value(4096, 'x');
  const auto deadline = Clock::now() + std::chrono::seconds(30);
  bool saw_break = false;
  while (!saw_break && Clock::now() < deadline) {
    for (int i = 0; i < 64 && !saw_break; ++i) {
      (void)producer->Publish("t", "", value, 0, net::PublishAck::kNone);
      for (const obs::ObsEvent& e : obs.Events()) {
        if (e.kind == obs::EventKind::kSessionBreak && e.cause == "slow_consumer") {
          saw_break = true;
        }
      }
    }
  }
  EXPECT_TRUE(saw_break) << "server never cut the slow consumer";
  EXPECT_GE(obs_metrics.counter("obs.event.session_break.slow_consumer").value(), 1u);
  EXPECT_GE(pool.metrics().counter("runtime.slow_consumer.disconnects").value(), 1u);

  // The torn-down session is gone server-side.
  for (auto waited = 0; waited < 5'000'000 && srv.sessions_closed() < 1; waited += 2000) {
    SleepUs(2000);
  }
  EXPECT_GE(srv.sessions_closed(), 1u);

  stream.reset();
  consumer.reset();
  producer.reset();
  srv.Stop();
  pool.Stop();
}

}  // namespace
}  // namespace runtime
