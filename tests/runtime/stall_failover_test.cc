// Subscription flow-control state vs ShardPool::FailoverShard: a failover
// destroys the shard's broker (firing every parked waiter) and rebuilds it
// from the promoted journal. Subscriptions in every backpressure state must
// come out the other side pointed at the replacement:
//
//   * a kBlock subscription STALLED at the instant of promotion (no parked
//     waiter — the pump stood down) must resume against the new broker when
//     the consumer drains;
//   * a kDisconnect subscription whose handoff is exactly full with a parked
//     waiter must NOT be cut by the teardown-fired waiter — the fire carries
//     no new data, only the broker swap. Pre-fix, the pump's entry path read
//     "waiter fired + no room" as a genuine overflow and broke the
//     subscription on every failover;
//   * a stalled FILTERED subscription must re-register its interest on the
//     replacement broker (the old registration died with the old broker).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "pubsub/filter.h"
#include "pubsub/types.h"
#include "runtime/concurrent_broker.h"
#include "runtime/shard_pool.h"
#include "runtime/subscription.h"
#include "wal/fault_vfs.h"

namespace runtime {
namespace {

using Clock = std::chrono::steady_clock;

RuntimeOptions ReplicatedOptions(wal::FaultVfs* vfs) {
  RuntimeOptions options;
  options.shards = 1;
  options.event_driven = true;
  options.durable_vfs = vfs;
  options.replication_factor = 2;
  return options;
}

// Drains `sub` until `expect` messages arrived or the deadline passed.
std::vector<pubsub::StoredMessage> DrainAll(Subscription* sub, std::size_t expect,
                                            int deadline_sec = 20) {
  std::vector<pubsub::StoredMessage> got;
  const auto deadline = Clock::now() + std::chrono::seconds(deadline_sec);
  while (got.size() < expect && Clock::now() < deadline) {
    if (sub->PollBatch(&got, 256) == 0) {
      (void)sub->Wait(5000);
    }
  }
  return got;
}

TEST(StallFailoverTest, StalledBlockSubscriptionResumesAgainstPromotedBroker) {
  constexpr int kBefore = 40;
  constexpr int kAfter = 20;
  wal::FaultVfs vfs;
  ShardPool pool(ReplicatedOptions(&vfs));
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  auto sub = broker.Subscribe("t", 0, 0, {.handoff_capacity = 8, .shard_batch = 8});
  ASSERT_NE(sub, nullptr);

  // Overfeed the tiny handoff and let the pump run dry: the subscription is
  // now stalled — no parked waiter, shard side stood down.
  for (int i = 0; i < kBefore; ++i) {
    ASSERT_TRUE(broker.PublishSync("t", {"", "v" + std::to_string(i), 0}, 0).ok());
  }
  pool.Quiesce();
  ASSERT_GE(pool.metrics().counter("runtime.slow_consumer.stalls").value(), 1u);

  // Promote mid-stall. The consumer has drained nothing yet.
  ASSERT_TRUE(pool.FailoverShard(0).ok()) << pool.durable_status().message();

  // Drain everything: the resume posted by the first drain must find the
  // REPLACEMENT broker and continue from the stall point, no gap, no dup.
  auto got = DrainAll(sub.get(), kBefore);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kBefore));
  for (int i = 0; i < kBefore; ++i) {
    ASSERT_EQ(got[i].offset, static_cast<pubsub::Offset>(i)) << "gap or reorder at " << i;
  }

  // And the stream stays live: post-failover appends flow through the
  // re-armed waiter on the new broker.
  for (int i = 0; i < kAfter; ++i) {
    ASSERT_TRUE(broker.PublishSync("t", {"", "w" + std::to_string(i), 0}, 0).ok());
  }
  auto tail = DrainAll(sub.get(), kAfter);
  ASSERT_EQ(tail.size(), static_cast<std::size_t>(kAfter));
  EXPECT_EQ(tail.front().offset, static_cast<pubsub::Offset>(kBefore));
  EXPECT_EQ(tail.back().message.value, "w" + std::to_string(kAfter - 1));
  EXPECT_FALSE(sub->broken());
  sub.reset();
  pool.Stop();
}

TEST(StallFailoverTest, FullDisconnectSubscriptionIsNotCutByFailover) {
  // Exactly fill the handoff: the pump breaks mid-loop with the buffer at
  // capacity and RE-ARMS (full-but-not-overflowed is not a cut), leaving a
  // parked waiter + full buffer. The failover then fires that waiter with no
  // new data behind it — which must not read as an overflow.
  constexpr int kCapacity = 8;
  wal::FaultVfs vfs;
  ShardPool pool(ReplicatedOptions(&vfs));
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  auto sub = broker.Subscribe("t", 0, 0,
                              {.handoff_capacity = kCapacity,
                               .shard_batch = kCapacity,
                               .slow_consumer = SlowConsumerPolicy::kDisconnect});
  ASSERT_NE(sub, nullptr);
  for (int i = 0; i < kCapacity; ++i) {
    ASSERT_TRUE(broker.PublishSync("t", {"", "v" + std::to_string(i), 0}, 0).ok());
  }
  pool.Quiesce();

  ASSERT_TRUE(pool.FailoverShard(0).ok()) << pool.durable_status().message();
  pool.Quiesce();
  EXPECT_FALSE(sub->broken()) << "failover's waiter fire was mistaken for an overflow";
  EXPECT_EQ(pool.metrics().counter("runtime.slow_consumer.disconnects").value(), 0u);

  // The stream survives: drain, then publish through the new broker.
  auto got = DrainAll(sub.get(), kCapacity);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kCapacity));
  ASSERT_TRUE(broker.PublishSync("t", {"", "tail", 0}, 0).ok());
  auto tail = DrainAll(sub.get(), 1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail.front().message.value, "tail");
  EXPECT_FALSE(sub->broken());
  sub.reset();
  pool.Stop();
}

TEST(StallFailoverTest, StalledFilteredSubscriptionReregistersOnPromotedBroker) {
  constexpr int kBefore = 60;  // Every other record matches.
  wal::FaultVfs vfs;
  ShardPool pool(ReplicatedOptions(&vfs));
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  pubsub::Filter filter;
  filter.key_prefix = "hot";
  auto sub = broker.Subscribe("t", 0, 0,
                              {.handoff_capacity = 4, .shard_batch = 4, .filter = filter});
  ASSERT_NE(sub, nullptr);
  for (int i = 0; i < kBefore; ++i) {
    const std::string key = (i % 2 == 0) ? "hot" + std::to_string(i) : "cold" + std::to_string(i);
    ASSERT_TRUE(broker.PublishSync("t", {key, "v" + std::to_string(i), 0}, 0).ok());
  }
  pool.Quiesce();
  ASSERT_GE(pool.metrics().counter("runtime.slow_consumer.stalls").value(), 1u);

  ASSERT_TRUE(pool.FailoverShard(0).ok()) << pool.durable_status().message();

  // Drain the matching half: the resume must re-register the interest on the
  // new broker (the old registration died with it) and keep filtering.
  auto got = DrainAll(sub.get(), kBefore / 2);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kBefore / 2));
  for (const auto& m : got) {
    EXPECT_EQ(m.message.key.rfind("hot", 0), 0u) << "non-matching record leaked through";
  }

  // New matching appends keep flowing; new non-matching ones stay invisible.
  ASSERT_TRUE(broker.PublishSync("t", {"cold-tail", "x", 0}, 0).ok());
  ASSERT_TRUE(broker.PublishSync("t", {"hot-tail", "y", 0}, 0).ok());
  auto tail = DrainAll(sub.get(), 1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail.front().message.key, "hot-tail");
  sub.reset();
  pool.Stop();
}

}  // namespace
}  // namespace runtime
