// Overload stress for the concurrent runtime, designed to run under TSan.
// The property under test is the paper's "loud failure" posture applied to
// the execution layer: at overload, every message is accounted — delivered,
// rejected with kUnavailable, or surfaced as an explicit resync. Nothing is
// silently dropped, and the accounting identities are exact, not approximate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/types.h"
#include "pubsub/broker.h"
#include "runtime/concurrent_broker.h"
#include "runtime/concurrent_watch.h"
#include "runtime/shard_pool.h"

namespace runtime {
namespace {

TEST(RuntimeStressTest, MultiProducerPublishOverloadAccountsEveryMessage) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  constexpr pubsub::PartitionId kPartitions = 8;

  RuntimeOptions options;
  options.shards = 2;
  options.queue_capacity = 16;  // Tiny: force the backpressure edge.
  options.max_batch = 8;
  ShardPool pool(options);
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = kPartitions}).ok());

  std::atomic<std::int64_t> accepted{0};
  std::atomic<std::int64_t> rejected{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        common::TimeMicros retry_after = 0;
        const auto partition = static_cast<pubsub::PartitionId>((t + i) % kPartitions);
        const common::Status status = broker.TryPublish(
            "t", {"", "p" + std::to_string(t) + ":" + std::to_string(i), 0}, partition,
            &retry_after);
        if (status.ok()) {
          accepted.fetch_add(1);
        } else {
          ASSERT_EQ(status.code(), common::StatusCode::kUnavailable);
          ASSERT_GT(retry_after, 0);  // Rejections carry a retry hint.
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  pool.Quiesce();
  pool.Stop();

  // Exact accounting: every attempt is either accepted or loudly rejected,
  // and every accepted message landed in exactly one partition log.
  EXPECT_EQ(accepted.load() + rejected.load(),
            static_cast<std::int64_t>(kProducers) * kPerProducer);
  std::int64_t appended = 0;
  for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
    appended += static_cast<std::int64_t>(
        pool.core(broker.OwnerShard(p)).broker->EndOffset("t", p));
  }
  EXPECT_EQ(appended, accepted.load());
  EXPECT_EQ(pool.metrics().counter("runtime.publish_accepted").value(), accepted.load());
  EXPECT_EQ(pool.metrics().counter("runtime.publish_rejected").value(), rejected.load());
}

TEST(RuntimeStressTest, TryPublishRejectsDeterministicallyWhenShardSaturated) {
  RuntimeOptions options;
  options.shards = 1;
  options.queue_capacity = 2;
  ShardPool pool(options);
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());

  // Park the worker, fill the queue, and the next publish must bounce.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.Post(0, [gate] { gate.wait(); });
  while (pool.queue_depth(0) != 0) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(broker.TryPublish("t", {"", "a", 0}, 0).ok());
  ASSERT_TRUE(broker.TryPublish("t", {"", "b", 0}, 0).ok());
  common::TimeMicros retry_after = 0;
  const common::Status status = broker.TryPublish("t", {"", "c", 0}, 0, &retry_after);
  EXPECT_EQ(status.code(), common::StatusCode::kUnavailable);
  // The hint scales with ring depth; a rejection implies a full ring, so it
  // is deterministically the full-scale bound (see ShardPool::RetryAfterHint).
  EXPECT_EQ(retry_after, ShardPool::kRetryHintMaxScale * options.retry_after);
  release.set_value();
  pool.Quiesce();
  pool.Stop();
  EXPECT_EQ(pool.core(0).broker->EndOffset("t", 0), 2u);  // The accepted two.
  EXPECT_EQ(pool.metrics().counter("runtime.publish_rejected").value(), 1);
}

TEST(RuntimeStressTest, RetryAfterHintIsAlwaysNonzeroMicroseconds) {
  // Regression: with RuntimeOptions::retry_after misconfigured to 0, a
  // saturated shard's kUnavailable carried retry_after == 0 — callers that
  // sleep the hint verbatim (every retry loop in this file) spun a busy loop
  // against the full queue. Every kUnavailable path must clamp the hint to a
  // nonzero microsecond count.
  RuntimeOptions options;
  options.shards = 1;
  options.queue_capacity = 2;
  options.retry_after = 0;  // Misconfiguration under test.
  ShardPool pool(options);
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());

  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.Post(0, [gate] { gate.wait(); });
  while (pool.queue_depth(0) != 0) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(broker.TryPublish("t", {"", "a", 0}, 0).ok());
  ASSERT_TRUE(broker.TryPublish("t", {"", "b", 0}, 0).ok());
  common::TimeMicros retry_after = 0;
  const common::Status status = broker.TryPublish("t", {"", "c", 0}, 0, &retry_after);
  EXPECT_EQ(status.code(), common::StatusCode::kUnavailable);
  EXPECT_GT(retry_after, 0) << "kUnavailable carried a zero retry hint";
  release.set_value();
  pool.Quiesce();
  pool.Stop();
}

// Watch callback for stress runs: records (key, version) pairs, counts
// resyncs, and fails the test if anything is delivered after a resync (the
// W4 half of the runtime contract).
class StressCallback : public watch::WatchCallback {
 public:
  void OnEvent(const common::ChangeEvent& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    EXPECT_EQ(resyncs_, 0) << "delivery after resync on key " << event.key;
    delivered_.emplace(event.key, event.version);
    sequence_.push_back(event);
  }
  void OnProgress(const common::ProgressEvent&) override {}
  void OnResync() override {
    std::lock_guard<std::mutex> lock(mu_);
    ++resyncs_;
  }

  std::set<std::pair<common::Key, common::Version>> delivered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return delivered_;
  }
  std::vector<common::ChangeEvent> sequence() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sequence_;
  }
  int resyncs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return resyncs_;
  }

 private:
  mutable std::mutex mu_;
  std::set<std::pair<common::Key, common::Version>> delivered_;
  std::vector<common::ChangeEvent> sequence_;
  int resyncs_ = 0;
};

TEST(RuntimeStressTest, MultiProducerMultiWatcherOverloadExactDelivery) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 3000;
  constexpr std::size_t kShards = 4;

  RuntimeOptions options;
  options.shards = kShards;
  options.queue_capacity = 8;  // Tiny: many TryIngest calls bounce.
  options.max_batch = 4;
  options.max_session_backlog = 0;  // Unbounded sessions: no resyncs here.
  options.watch_splits = {"b", "c", "d"};
  ShardPool pool(options);
  ConcurrentWatchService watch(&pool);
  pool.Start();

  // Watchers: one per shard slice plus one spanning everything.
  std::vector<StressCallback> callbacks(kShards + 1);
  std::vector<common::KeyRange> ranges;
  for (std::size_t s = 0; s < kShards; ++s) {
    ranges.push_back(watch.ShardRange(s));
  }
  ranges.push_back(common::KeyRange::All());
  std::vector<std::unique_ptr<watch::WatchHandle>> handles;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    handles.push_back(watch.Watch(ranges[i].low, ranges[i].high, 0, &callbacks[i]));
  }

  // Each producer owns a disjoint version space, so (key, version) uniquely
  // identifies an event and accepted sets can be reconciled exactly.
  std::vector<std::set<std::pair<common::Key, common::Version>>> accepted(kProducers);
  std::atomic<std::int64_t> rejected{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        common::ChangeEvent event;
        event.key = std::string(1, static_cast<char>('a' + (i % 5))) + "k" +
                    std::to_string(t) + "-" + std::to_string(i % 23);
        event.mutation = common::Mutation::Put("v");
        event.version = static_cast<common::Version>(t) * 1000000 + i + 1;
        if (watch.TryIngest(event).ok()) {
          accepted[static_cast<std::size_t>(t)].emplace(event.key, event.version);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  pool.Quiesce();

  std::int64_t total_accepted = 0;
  std::set<std::pair<common::Key, common::Version>> all_accepted;
  for (const auto& set : accepted) {
    total_accepted += static_cast<std::int64_t>(set.size());
    all_accepted.insert(set.begin(), set.end());
  }
  EXPECT_EQ(total_accepted + rejected.load(),
            static_cast<std::int64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(pool.metrics().counter("runtime.ingest_accepted").value(), total_accepted);
  EXPECT_EQ(pool.metrics().counter("runtime.ingest_rejected").value(), rejected.load());

  // Zero silent drops: every live session received exactly the accepted
  // events in its range — no more, no less.
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    SCOPED_TRACE("watcher " + std::to_string(i));
    EXPECT_EQ(callbacks[i].resyncs(), 0);
    std::set<std::pair<common::Key, common::Version>> expected;
    for (const auto& [key, version] : all_accepted) {
      if (key >= ranges[i].low && (ranges[i].high.empty() || key < ranges[i].high)) {
        expected.emplace(key, version);
      }
    }
    EXPECT_EQ(callbacks[i].delivered(), expected);
  }
  // Per-producer FIFO survives the fan-in: within one shard slice, one
  // producer's events arrive in issue (version) order.
  for (std::size_t s = 0; s < kShards; ++s) {
    std::vector<common::Version> last(kProducers, 0);
    for (const auto& event : callbacks[s].sequence()) {
      const auto producer = static_cast<std::size_t>(event.version / 1000000);
      EXPECT_LT(last[producer], event.version) << "producer order broken in shard " << s;
      last[producer] = event.version;
    }
  }

  pool.Stop();
  handles.clear();
}

TEST(RuntimeStressTest, LaggingSessionsOverflowToLoudResyncNeverSilentDrop) {
  RuntimeOptions options;
  options.shards = 1;
  options.queue_capacity = 1024;
  options.max_batch = 256;
  options.max_session_backlog = 4;  // Overflow almost immediately.
  ShardPool pool(options);
  ConcurrentWatchService watch(&pool);
  pool.Start();

  StressCallback lagging;
  auto handle = watch.Watch(common::Key(), common::Key(), 0, &lagging);

  // Park the worker so the appends pile into one batch; draining it then
  // schedules far more than max_session_backlog deliveries at once.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.Post(0, [gate] { gate.wait(); });
  while (pool.queue_depth(0) != 0) {
    std::this_thread::yield();
  }
  constexpr int kEvents = 200;
  int submitted = 0;
  for (int i = 0; i < kEvents; ++i) {
    common::ChangeEvent event{"k" + std::to_string(i), common::Mutation::Put("v"),
                              static_cast<common::Version>(i + 1), true};
    if (watch.TryIngest(event).ok()) {
      ++submitted;
    }
  }
  ASSERT_GT(submitted, static_cast<int>(options.max_session_backlog));
  release.set_value();
  pool.Quiesce();
  pool.Stop();

  // The session fell behind and was told so — exactly once, loudly. The
  // facade counted it, and anything the shard delivered after the resync was
  // dropped facade-side and counted too (checked inside the callback).
  EXPECT_EQ(lagging.resyncs(), 1);
  EXPECT_EQ(pool.metrics().counter("runtime.watch_resyncs").value(), 1);
  EXPECT_LT(static_cast<int>(lagging.delivered().size()), submitted);
  const std::int64_t dropped =
      pool.metrics().counter("runtime.post_resync_drops").value();
  EXPECT_GE(dropped, 0);
  handle.reset();
}

}  // namespace
}  // namespace runtime
