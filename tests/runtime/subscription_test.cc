// Subscription: the event-driven consume path of the concurrent runtime.
// Covers shard-resident cursors (messages pushed at append time, doorbell
// wakeups), handoff backpressure (stall/resume, nothing dropped), the
// client-driven periodic fallback, and the equivalence of the two modes'
// delivery sequences.
#include "runtime/subscription.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pubsub/types.h"
#include "runtime/concurrent_broker.h"
#include "runtime/shard_pool.h"

namespace runtime {
namespace {

using Clock = std::chrono::steady_clock;

// Drains `sub` until `expect` messages arrived or `deadline_sec` passed.
std::vector<pubsub::StoredMessage> DrainAll(Subscription* sub, std::size_t expect,
                                            int deadline_sec = 20) {
  std::vector<pubsub::StoredMessage> got;
  const auto deadline = Clock::now() + std::chrono::seconds(deadline_sec);
  while (got.size() < expect && Clock::now() < deadline) {
    if (sub->PollBatch(&got, 256) == 0) {
      (void)sub->Wait(/*timeout_us=*/5000);
    }
  }
  return got;
}

TEST(SubscriptionTest, EventModeDeliversPublishedMessagesInOrder) {
  constexpr int kMessages = 1000;
  ShardPool pool({.shards = 2, .event_driven = true});
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  auto sub = broker.Subscribe("t", 0, 0);
  ASSERT_NE(sub, nullptr);
  EXPECT_TRUE(sub->event_driven());

  for (int i = 0; i < kMessages; ++i) {
    common::TimeMicros backoff = 0;
    while (!broker.TryPublish("t", {"", "v" + std::to_string(i), 0}, 0, &backoff).ok()) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    }
  }
  const auto got = DrainAll(sub.get(), kMessages);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(got[i].offset, static_cast<pubsub::Offset>(i));
    EXPECT_EQ(got[i].message.value, "v" + std::to_string(i));
  }
  EXPECT_EQ(sub->cursor(), static_cast<pubsub::Offset>(kMessages));
  sub.reset();
  pool.Stop();
}

TEST(SubscriptionTest, AdoptsBacklogPublishedBeforeSubscribe) {
  ShardPool pool({.shards = 1, .event_driven = true});
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(broker.PublishSync("t", {"", "v" + std::to_string(i), 0}, 0).ok());
  }
  auto sub = broker.Subscribe("t", 0, 0);
  ASSERT_NE(sub, nullptr);
  const auto got = DrainAll(sub.get(), 50);
  ASSERT_EQ(got.size(), 50u);
  EXPECT_EQ(got.front().message.value, "v0");
  EXPECT_EQ(got.back().message.value, "v49");
  sub.reset();
  pool.Stop();
}

TEST(SubscriptionTest, SubscribeRejectsUnknownTopicAndBadPartition) {
  ShardPool pool({.shards = 1});
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 2}).ok());
  EXPECT_EQ(broker.Subscribe("nope", 0, 0), nullptr);
  EXPECT_EQ(broker.Subscribe("t", 7, 0), nullptr);
  pool.Stop();
}

TEST(SubscriptionTest, BoundedHandoffStallsAndResumesWithoutLoss) {
  constexpr int kMessages = 2000;
  ShardPool pool({.shards = 1, .event_driven = true});
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  // A handoff far smaller than the feed: the shard must stall on the bound
  // and resume as the consumer drains, never dropping or reordering.
  auto sub = broker.Subscribe("t", 0, 0, {.handoff_capacity = 64, .shard_batch = 16});
  ASSERT_NE(sub, nullptr);
  for (int i = 0; i < kMessages; ++i) {
    common::TimeMicros backoff = 0;
    while (!broker.TryPublish("t", {"", "v" + std::to_string(i), 0}, 0, &backoff).ok()) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    }
  }
  std::vector<pubsub::StoredMessage> got;
  const auto deadline = Clock::now() + std::chrono::seconds(20);
  while (got.size() < static_cast<std::size_t>(kMessages) && Clock::now() < deadline) {
    if (sub->PollBatch(&got, 32) == 0) {  // Slow consumer: small sips.
      (void)sub->Wait(2000);
    }
  }
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_EQ(got[i].offset, static_cast<pubsub::Offset>(i)) << "gap or reorder at " << i;
  }
  sub.reset();
  pool.Stop();
}

TEST(SubscriptionTest, WakeupLatencyAndDoorbellRingsAreRecorded) {
  ShardPool pool({.shards = 1, .event_driven = true});
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  auto sub = broker.Subscribe("t", 0, 0);
  ASSERT_NE(sub, nullptr);

  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(broker.PublishSync("t", {"", "x", 0}, 0).ok());
  });
  std::vector<pubsub::StoredMessage> got;
  const auto deadline = Clock::now() + std::chrono::seconds(20);
  while (got.empty() && Clock::now() < deadline) {
    if (sub->Wait(/*timeout_us=*/100 * 1000)) {
      (void)sub->PollBatch(&got, 16);
    }
  }
  producer.join();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_GE(sub->wakeups(), 1u);
  EXPECT_GE(pool.metrics().counter("runtime.doorbell_rings").value(), 1);
  EXPECT_GE(pool.metrics().histogram("runtime.wakeup_latency_us").count(), 1u);
  sub.reset();
  pool.Stop();
}

TEST(SubscriptionTest, CommitOffsetAsyncLandsOnOwnerShard) {
  ShardPool pool({.shards = 2});
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 2}).ok());
  ASSERT_TRUE(broker.JoinGroup("g", "t", "m1").ok());
  broker.CommitOffsetAsync("g", 1, 17);
  pool.Quiesce();
  EXPECT_EQ(broker.CommittedOffset("g", 1), 17u);
  pool.Stop();
}

// -- Teardown races (regressions) ---------------------------------------------

TEST(SubscriptionTest, TeardownAfterStopCancelsInlineWithoutCrashing) {
  // Regression: the destructor posts a cancel task to the owner shard. With
  // the pool already stopped the queue is closed and the post falls back to
  // running inline — but the old queue took tasks by value, so the failed
  // push left the caller's std::function moved-from and the fallback invoked
  // an empty function (std::bad_function_call). The push must leave the task
  // intact on failure.
  ShardPool pool({.shards = 1, .event_driven = true});
  ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  auto sub = broker.Subscribe("t", 0, 0);
  ASSERT_NE(sub, nullptr);
  pool.Quiesce();  // Let the shard-side pump arm its append waiter.
  pool.Stop();
  sub.reset();  // Cancel runs inline against the parked shard.
  pool.RunOn(0, [](ShardCore& core) {
    EXPECT_EQ(core.broker->PendingWaiters(), 0u);
    return 0;
  });
}

TEST(SubscriptionTest, TeardownConcurrentWithStopIsSafe) {
  // Regression: a Subscription destroyed on one thread while another thread
  // Stops the pool raced the queue close/worker join — the destructor's
  // cancel task could be pushed to a closing queue or run inline against a
  // worker mid-join. Run the race repeatedly; TSan (CI) judges the interleavings.
  for (int round = 0; round < 25; ++round) {
    ShardPool pool({.shards = 1, .event_driven = true});
    ConcurrentBroker broker(&pool);
    pool.Start();
    ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
    auto sub = broker.Subscribe("t", 0, 0);
    ASSERT_NE(sub, nullptr);
    for (int i = 0; i < 8; ++i) {
      (void)broker.TryPublish("t", {"", "v", 0}, 0);
    }
    std::thread destroyer([&] { sub.reset(); });
    pool.Stop();
    destroyer.join();
  }
}

TEST(SubscriptionTest, TeardownRacingStallResumeLeavesNoWaiters) {
  // Regression: destroying a stalled subscription just after a drain posted
  // its resume left the resume pump racing the cancel — the pump could
  // re-arm a waiter for a subscription already gone (leaked registration) or
  // cancel a ticket re-issued to someone else. After teardown the shard
  // broker must hold no waiters.
  for (int round = 0; round < 20; ++round) {
    ShardPool pool({.shards = 1, .event_driven = true});
    ConcurrentBroker broker(&pool);
    pool.Start();
    ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
    auto sub = broker.Subscribe("t", 0, 0, {.handoff_capacity = 16, .shard_batch = 8});
    ASSERT_NE(sub, nullptr);
    for (int i = 0; i < 200; ++i) {
      common::TimeMicros backoff = 0;
      while (!broker.TryPublish("t", {"", "v" + std::to_string(i), 0}, 0, &backoff).ok()) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      }
    }
    std::vector<pubsub::StoredMessage> got;
    (void)sub->Wait(/*timeout_us=*/50 * 1000);
    (void)sub->PollBatch(&got, 8);  // Likely posts a resume for the stalled pump.
    sub.reset();                    // Races the resume.
    pool.Quiesce();
    pool.RunOn(0, [](ShardCore& core) {
      EXPECT_EQ(core.broker->PendingWaiters(), 0u) << "teardown leaked an append waiter";
      return 0;
    });
    pool.Stop();
  }
}

// Both delivery modes, same routed input → identical per-partition sequences
// through the same Subscription API. Event driving changes when messages
// move, never what or in what order.
std::map<pubsub::PartitionId, std::vector<std::string>> RunSubscriptionScenario(
    bool event_driven) {
  constexpr pubsub::PartitionId kPartitions = 4;
  constexpr int kMessages = 800;
  ShardPool pool({.shards = 2, .event_driven = event_driven});
  ConcurrentBroker broker(&pool);
  pool.Start();
  EXPECT_TRUE(broker.CreateTopic("t", {.partitions = kPartitions}).ok());
  std::vector<std::unique_ptr<Subscription>> subs;
  for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
    subs.push_back(broker.Subscribe("t", p, 0));
  }
  std::map<pubsub::PartitionId, int> expected;
  for (int i = 0; i < kMessages; ++i) {
    const auto p = static_cast<pubsub::PartitionId>(i % kPartitions);
    common::TimeMicros backoff = 0;
    while (!broker.TryPublish("t", {"", "v" + std::to_string(i), 0}, p, &backoff).ok()) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    }
    ++expected[p];
  }
  std::map<pubsub::PartitionId, std::vector<std::string>> sequences;
  for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
    const auto got =
        DrainAll(subs[p].get(), static_cast<std::size_t>(expected[p]));
    for (const pubsub::StoredMessage& m : got) {
      sequences[p].push_back(m.message.value);
    }
  }
  subs.clear();
  pool.Stop();
  return sequences;
}

TEST(SubscriptionTest, EventAndPeriodicModesDeliverIdenticalSequences) {
  const auto event = RunSubscriptionScenario(true);
  const auto periodic = RunSubscriptionScenario(false);
  ASSERT_EQ(event.size(), 4u);
  for (const auto& [p, seq] : event) {
    EXPECT_EQ(seq.size(), 200u) << "partition " << p;
  }
  EXPECT_EQ(event, periodic);
}

}  // namespace
}  // namespace runtime
