#include "sharding/autosharder.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace sharding {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

class AutoSharderTest : public ::testing::Test {
 protected:
  AutoSharderTest() : net_(&sim_, {.base = 0, .jitter = 0}) {
    net_.AddNode("w1");
    net_.AddNode("w2");
    net_.AddNode("w3");
  }

  sim::Simulator sim_;
  sim::Network net_;
};

TEST_F(AutoSharderTest, FirstWorkerGetsEverythingImmediately) {
  AutoSharder sharder(&sim_, &net_);
  EXPECT_EQ(sharder.Owner("any"), std::nullopt);
  sharder.AddWorker("w1");
  EXPECT_EQ(sharder.Owner("any"), std::optional<WorkerId>("w1"));
  EXPECT_EQ(sharder.Owner(""), std::optional<WorkerId>("w1"));
  EXPECT_EQ(sharder.Shards().size(), 1u);
}

TEST_F(AutoSharderTest, ShardsTileKeySpace) {
  AutoSharder sharder(&sim_, &net_);
  sharder.AddWorker("w1");
  for (int i = 0; i < 1000; ++i) {
    sharder.ReportLoad(common::IndexKey(sim_.rng().Below(1000)));
  }
  sharder.RebalanceNow();
  auto shards = sharder.Shards();
  EXPECT_EQ(shards.front().range.low, "");
  EXPECT_TRUE(shards.back().range.unbounded_above());
  for (std::size_t i = 0; i + 1 < shards.size(); ++i) {
    EXPECT_EQ(shards[i].range.high, shards[i + 1].range.low);
  }
}

TEST_F(AutoSharderTest, HotShardSplits) {
  AutoSharder sharder(&sim_, &net_, {.split_threshold = 100});
  sharder.AddWorker("w1");
  for (int i = 0; i < 500; ++i) {
    sharder.ReportLoad(common::IndexKey(i % 100));
  }
  sharder.RebalanceNow();
  EXPECT_GT(sharder.splits(), 0u);
  EXPECT_GT(sharder.Shards().size(), 1u);
}

TEST_F(AutoSharderTest, LoadLevelsAcrossWorkers) {
  AutoSharder sharder(&sim_, &net_, {.split_threshold = 50, .imbalance_factor = 1.2});
  sharder.AddWorker("w1");
  common::Rng rng(7);
  // Several rebalance rounds with uniform load.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 2000; ++i) {
      sharder.ReportLoad(common::IndexKey(rng.Below(10000)));
    }
    sharder.RebalanceNow();
  }
  sharder.AddWorker("w2");
  sharder.AddWorker("w3");
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 2000; ++i) {
      sharder.ReportLoad(common::IndexKey(rng.Below(10000)));
    }
    sharder.RebalanceNow();
  }
  // Every worker should own something by now.
  std::map<WorkerId, int> shard_counts;
  for (const ShardInfo& s : sharder.Shards()) {
    ASSERT_TRUE(s.owner.has_value());
    ++shard_counts[*s.owner];
  }
  EXPECT_EQ(shard_counts.size(), 3u);
}

TEST_F(AutoSharderTest, DeadWorkerShardsReassigned) {
  AutoSharder sharder(&sim_, &net_);
  sharder.AddWorker("w1");
  sharder.AddWorker("w2");
  // Force w2 to own something.
  sharder.MoveShard("", "w2");
  EXPECT_EQ(sharder.Owner("x"), std::optional<WorkerId>("w2"));
  net_.SetUp("w2", false);
  sharder.RebalanceNow();
  EXPECT_EQ(sharder.Owner("x"), std::optional<WorkerId>("w1"));
}

TEST_F(AutoSharderTest, RemovedWorkerShardsReassigned) {
  AutoSharder sharder(&sim_, &net_);
  sharder.AddWorker("w1");
  sharder.AddWorker("w2");
  sharder.MoveShard("", "w2");
  sharder.RemoveWorker("w2");
  sharder.RebalanceNow();
  EXPECT_EQ(sharder.Owner("x"), std::optional<WorkerId>("w1"));
}

TEST_F(AutoSharderTest, MoveBumpsGeneration) {
  AutoSharder sharder(&sim_, &net_);
  sharder.AddWorker("w1");
  sharder.AddWorker("w2");
  const Generation g0 = sharder.generation();
  sharder.MoveShard("k", "w2");
  EXPECT_GT(sharder.generation(), g0);
  EXPECT_EQ(sharder.ShardFor("k").generation, sharder.generation());
}

TEST_F(AutoSharderTest, MoveToCurrentOwnerIsNoOp) {
  AutoSharder sharder(&sim_, &net_);
  sharder.AddWorker("w1");
  const Generation g = sharder.generation();
  sharder.MoveShard("k", "w1");
  EXPECT_EQ(sharder.generation(), g);
  EXPECT_EQ(sharder.moves(), 0u);
}

TEST_F(AutoSharderTest, SubscribersNotifiedWithTheirLatency) {
  AutoSharder sharder(&sim_, &net_);
  sharder.AddWorker("w1");
  sharder.AddWorker("w2");

  std::vector<std::pair<common::TimeMicros, std::optional<WorkerId>>> fast_events;
  std::vector<std::pair<common::TimeMicros, std::optional<WorkerId>>> slow_events;
  sharder.Subscribe(
      [&](const common::KeyRange&, const std::optional<WorkerId>& owner, Generation) {
        fast_events.emplace_back(sim_.Now(), owner);
      },
      10 * kMs);
  sharder.Subscribe(
      [&](const common::KeyRange&, const std::optional<WorkerId>& owner, Generation) {
        slow_events.emplace_back(sim_.Now(), owner);
      },
      200 * kMs);

  sim_.RunUntil(1 * kMs);
  sharder.MoveShard("k", "w2");
  sim_.RunUntil(500 * kMs);

  ASSERT_EQ(fast_events.size(), 1u);
  ASSERT_EQ(slow_events.size(), 1u);
  EXPECT_EQ(fast_events[0].first, 11 * kMs);
  EXPECT_EQ(slow_events[0].first, 201 * kMs);
  // The disagreement window: between the two notifications, the fast
  // subscriber routes to w2 while the slow one still routes to w1.
  EXPECT_EQ(fast_events[0].second, std::optional<WorkerId>("w2"));
}

TEST_F(AutoSharderTest, UnsubscribeStopsNotifications) {
  AutoSharder sharder(&sim_, &net_);
  sharder.AddWorker("w1");
  sharder.AddWorker("w2");
  int count = 0;
  const auto id = sharder.Subscribe(
      [&](const common::KeyRange&, const std::optional<WorkerId>&, Generation) { ++count; }, 0);
  sharder.MoveShard("k", "w2");
  sim_.RunUntil(1 * kMs);
  EXPECT_EQ(count, 1);
  sharder.Unsubscribe(id);
  sharder.MoveShard("k", "w1");
  sim_.RunUntil(10 * kMs);
  EXPECT_EQ(count, 1);
}

TEST_F(AutoSharderTest, LeaseCreatesOwnerlessWindow) {
  AutoSharder sharder(&sim_, &net_, {.lease_duration = 100 * kMs});
  sharder.AddWorker("w1");
  sharder.AddWorker("w2");
  sim_.RunUntil(1 * kMs);

  sharder.MoveShard("k", "w2");
  // Immediately after the move: lease revoked, no owner.
  EXPECT_EQ(sharder.Owner("k"), std::nullopt);
  sim_.RunUntil(50 * kMs);
  EXPECT_EQ(sharder.Owner("k"), std::nullopt);  // Still in the gap.
  sim_.RunUntil(102 * kMs);
  EXPECT_EQ(sharder.Owner("k"), std::optional<WorkerId>("w2"));
}

TEST_F(AutoSharderTest, WithoutLeaseMoveIsImmediate) {
  AutoSharder sharder(&sim_, &net_);
  sharder.AddWorker("w1");
  sharder.AddWorker("w2");
  sharder.MoveShard("k", "w2");
  EXPECT_EQ(sharder.Owner("k"), std::optional<WorkerId>("w2"));
}

TEST_F(AutoSharderTest, PeriodicRebalanceRunsOnTimer) {
  AutoSharder sharder(&sim_, &net_, {.rebalance_period = 100 * kMs, .split_threshold = 50});
  sharder.AddWorker("w1");
  for (int i = 0; i < 500; ++i) {
    sharder.ReportLoad(common::IndexKey(i));
  }
  EXPECT_EQ(sharder.splits(), 0u);
  sim_.RunUntil(150 * kMs);  // Timer fired once.
  EXPECT_GT(sharder.splits(), 0u);
}

TEST_F(AutoSharderTest, SplitPreservesOwnership) {
  AutoSharder sharder(&sim_, &net_, {.split_threshold = 10});
  sharder.AddWorker("w1");
  for (int i = 0; i < 100; ++i) {
    sharder.ReportLoad(common::IndexKey(i));
  }
  sharder.RebalanceNow();
  for (const ShardInfo& s : sharder.Shards()) {
    EXPECT_EQ(s.owner, std::optional<WorkerId>("w1"));
  }
}

TEST_F(AutoSharderTest, NoWorkersMeansNoAssignment) {
  AutoSharder sharder(&sim_, &net_);
  sharder.ReportLoad("k");
  sharder.RebalanceNow();
  EXPECT_EQ(sharder.Owner("k"), std::nullopt);
}


TEST_F(AutoSharderTest, ColdAdjacentShardsMerge) {
  AutoSharder sharder(&sim_, &net_,
                      {.split_threshold = 50, .merge_threshold = 10, .min_shards = 1});
  sharder.AddWorker("w1");
  // Heat the space so it splits into several shards.
  for (int i = 0; i < 400; ++i) {
    sharder.ReportLoad(common::IndexKey(i % 200));
  }
  sharder.RebalanceNow();
  const std::size_t peak = sharder.Shards().size();
  ASSERT_GT(peak, 1u);
  // Now go cold: repeated rebalances decay load and merge shards back.
  for (int round = 0; round < 12; ++round) {
    sharder.RebalanceNow();
  }
  EXPECT_LT(sharder.Shards().size(), peak);
  EXPECT_EQ(sharder.Shards().size(), 1u);
  // The table still tiles the key space.
  auto shards = sharder.Shards();
  EXPECT_EQ(shards.front().range.low, "");
  EXPECT_TRUE(shards.back().range.unbounded_above());
}

TEST_F(AutoSharderTest, MergeRespectsMinShards) {
  AutoSharder sharder(&sim_, &net_,
                      {.split_threshold = 50, .merge_threshold = 1e9, .min_shards = 3});
  sharder.AddWorker("w1");
  for (int i = 0; i < 400; ++i) {
    sharder.ReportLoad(common::IndexKey(i % 200));
  }
  sharder.RebalanceNow();
  for (int round = 0; round < 12; ++round) {
    sharder.RebalanceNow();
  }
  EXPECT_GE(sharder.Shards().size(), 3u);
}

TEST_F(AutoSharderTest, MergeDoesNotCrossOwners) {
  AutoSharder sharder(&sim_, &net_, {.merge_threshold = 1e9, .min_shards = 1});
  sharder.AddWorker("w1");
  sharder.AddWorker("w2");
  // Carve the space into [ ,m) -> w1 and [m, ) -> w2 via an explicit split:
  for (int i = 0; i < 200; ++i) {
    sharder.ReportLoad(common::IndexKey(i));
  }
  sharder.RebalanceNow();
  // Assign alternating owners to whatever shards exist.
  bool flip = false;
  for (const ShardInfo& info : sharder.Shards()) {
    sharder.MoveShard(info.range.low, flip ? "w1" : "w2");
    flip = !flip;
  }
  sharder.RebalanceNow();
  // No shard pair with different owners merged: every boundary between
  // different owners is preserved.
  auto shards = sharder.Shards();
  for (std::size_t i = 0; i + 1 < shards.size(); ++i) {
    if (shards[i].owner != shards[i + 1].owner) {
      EXPECT_NE(shards[i].range.high, "");
    }
  }
}

// Property: across random worker churn and load, the assignment table always
// tiles the key space and generations are strictly monotonic per change.
class SharderPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SharderPropertyTest, TilingAndGenerationInvariants) {
  sim::Simulator sim(GetParam());
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  for (int w = 0; w < 5; ++w) {
    net.AddNode("w" + std::to_string(w));
  }
  AutoSharder sharder(&sim, &net, {.split_threshold = 30});
  common::Rng rng(GetParam() * 31 + 1);

  Generation last_gen = 0;
  sharder.Subscribe(
      [&last_gen](const common::KeyRange&, const std::optional<WorkerId>&, Generation g) {
        EXPECT_GT(g, last_gen);
        last_gen = g;
      },
      0);

  std::set<std::string> live;
  for (int step = 0; step < 60; ++step) {
    const std::string worker = "w" + std::to_string(rng.Below(5));
    switch (rng.Below(4)) {
      case 0:
        net.SetUp(worker, true);
        sharder.AddWorker(worker);
        live.insert(worker);
        break;
      case 1:
        if (live.size() > 1) {
          net.SetUp(worker, false);
          sharder.RemoveWorker(worker);
          live.erase(worker);
        }
        break;
      default:
        for (int i = 0; i < 50; ++i) {
          sharder.ReportLoad(common::IndexKey(rng.Zipf(1000, 0.9)));
        }
        break;
    }
    sharder.RebalanceNow();
    sim.RunUntil(sim.Now() + 10 * kMs);

    auto shards = sharder.Shards();
    ASSERT_FALSE(shards.empty());
    EXPECT_EQ(shards.front().range.low, "");
    EXPECT_TRUE(shards.back().range.unbounded_above());
    for (std::size_t i = 0; i + 1 < shards.size(); ++i) {
      EXPECT_EQ(shards[i].range.high, shards[i + 1].range.low);
    }
    if (!live.empty()) {
      // After a rebalance with live workers, every shard has a live owner.
      for (const ShardInfo& s : shards) {
        ASSERT_TRUE(s.owner.has_value());
        EXPECT_TRUE(live.count(*s.owner) > 0) << *s.owner;
      }
    }
  }
  sim.RunUntil(sim.Now() + 1 * kSec);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharderPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

}  // namespace
}  // namespace sharding
