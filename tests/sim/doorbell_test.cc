#include "sim/doorbell.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace sim {
namespace {

TEST(DoorbellTest, SignalWakesParkedWaiterAsImmediateEvent) {
  Simulator sim;
  Doorbell bell(&sim);
  bool woke = false;
  bell.Park([&] { woke = true; });
  EXPECT_EQ(bell.parked(), 1u);

  bell.Signal();
  EXPECT_FALSE(woke);  // Scheduled, not run inline.
  sim.RunUntil(sim.Now());
  EXPECT_TRUE(woke);
  EXPECT_EQ(bell.parked(), 0u);
  EXPECT_EQ(bell.signals(), 1u);
}

TEST(DoorbellTest, WaitersRunInParkOrder) {
  Simulator sim;
  Doorbell bell(&sim);
  std::vector<int> order;
  bell.Park([&] { order.push_back(1); });
  bell.Park([&] { order.push_back(2); });
  bell.Park([&] { order.push_back(3); });
  bell.Signal();
  sim.RunUntil(sim.Now());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(DoorbellTest, SignalIsSingleShot) {
  Simulator sim;
  Doorbell bell(&sim);
  int wakeups = 0;
  bell.Park([&] { ++wakeups; });
  bell.Signal();
  sim.RunUntil(sim.Now());
  EXPECT_EQ(wakeups, 1);

  // The waiter was consumed: a second signal finds nobody parked.
  bell.Signal();
  sim.RunUntil(sim.Now());
  EXPECT_EQ(wakeups, 1);
  EXPECT_EQ(bell.signals(), 1u);  // Empty signals are not counted.
}

TEST(DoorbellTest, SignalWithNobodyParkedIsDropped) {
  Simulator sim;
  Doorbell bell(&sim);
  bell.Signal();  // No level state: this ring is lost by design.
  int wakeups = 0;
  bell.Park([&] { ++wakeups; });
  sim.RunUntil(sim.Now() + 1000);
  EXPECT_EQ(wakeups, 0);  // Must wait for the *next* signal.
  bell.Signal();
  sim.RunUntil(sim.Now());
  EXPECT_EQ(wakeups, 1);
}

TEST(DoorbellTest, CancelUnparks) {
  Simulator sim;
  Doorbell bell(&sim);
  bool woke = false;
  const Doorbell::Ticket t = bell.Park([&] { woke = true; });
  EXPECT_TRUE(bell.Cancel(t));
  EXPECT_FALSE(bell.Cancel(t));  // Already gone.
  bell.Signal();
  sim.RunUntil(sim.Now());
  EXPECT_FALSE(woke);
  EXPECT_EQ(bell.parked(), 0u);
}

TEST(DoorbellTest, ReparkFromCallbackWaitsForNextSignal) {
  Simulator sim;
  Doorbell bell(&sim);
  int wakeups = 0;
  std::function<void()> waiter = [&] {
    ++wakeups;
    bell.Park(waiter);  // Re-arm: must not be swept into the same signal.
  };
  bell.Park(waiter);
  bell.Signal();
  sim.RunUntil(sim.Now());
  EXPECT_EQ(wakeups, 1);
  EXPECT_EQ(bell.parked(), 1u);
  bell.Signal();
  sim.RunUntil(sim.Now());
  EXPECT_EQ(wakeups, 2);
}

}  // namespace
}  // namespace sim
