#include "sim/network.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace sim {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(&sim_, LatencyModel{.base = 100, .jitter = 0}) {
    net_.AddNode("a");
    net_.AddNode("b");
  }

  Simulator sim_;
  Network net_;
};

TEST_F(NetworkTest, DeliversWithLatency) {
  common::TimeMicros delivered_at = -1;
  net_.Send("a", "b", [&] { delivered_at = sim_.Now(); });
  sim_.Run();
  EXPECT_EQ(delivered_at, 100);
  EXPECT_EQ(net_.sent(), 1u);
  EXPECT_EQ(net_.dropped(), 0u);
}

TEST_F(NetworkTest, DropsToDownNode) {
  net_.SetUp("b", false);
  bool delivered = false;
  net_.Send("a", "b", [&] { delivered = true; });
  sim_.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net_.dropped(), 1u);
}

TEST_F(NetworkTest, DropsFromDownSender) {
  net_.SetUp("a", false);
  bool delivered = false;
  net_.Send("a", "b", [&] { delivered = true; });
  sim_.Run();
  EXPECT_FALSE(delivered);
}

TEST_F(NetworkTest, DropsIfDestinationDiesInFlight) {
  bool delivered = false;
  net_.Send("a", "b", [&] { delivered = true; });
  sim_.At(50, [&] { net_.SetUp("b", false); });
  sim_.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net_.dropped(), 1u);
}

TEST_F(NetworkTest, PartitionBlocksBothDirections) {
  net_.Partition("a", "b");
  EXPECT_FALSE(net_.Reachable("a", "b"));
  EXPECT_FALSE(net_.Reachable("b", "a"));
  int delivered = 0;
  net_.Send("a", "b", [&] { ++delivered; });
  net_.Send("b", "a", [&] { ++delivered; });
  sim_.Run();
  EXPECT_EQ(delivered, 0);

  net_.Heal("a", "b");
  net_.Send("a", "b", [&] { ++delivered; });
  sim_.Run();
  EXPECT_EQ(delivered, 1);
}

TEST_F(NetworkTest, UnknownNodeIsUnreachable) {
  EXPECT_FALSE(net_.IsUp("ghost"));
  EXPECT_FALSE(net_.Reachable("a", "ghost"));
}

TEST(NetworkJitterTest, LatencyWithinBounds) {
  Simulator sim(5);
  Network net(&sim, LatencyModel{.base = 100, .jitter = 50});
  for (int i = 0; i < 1000; ++i) {
    const common::TimeMicros lat = net.SampleLatency();
    EXPECT_GE(lat, 100);
    EXPECT_LE(lat, 150);
  }
}

TEST(FailureInjectorTest, CrashAndRestartHooks) {
  Simulator sim;
  Network net(&sim, LatencyModel{.base = 10, .jitter = 0});
  net.AddNode("n");
  FailureInjector inj(&sim, &net);
  std::vector<std::string> events;
  inj.Register("n", {.on_crash = [&] { events.push_back("crash@" + std::to_string(sim.Now())); },
                     .on_restart = [&] {
                       events.push_back("restart@" + std::to_string(sim.Now()));
                     }});
  inj.ScheduleCrash("n", 100, 50);
  sim.RunUntil(120);
  EXPECT_FALSE(net.IsUp("n"));
  sim.Run();
  EXPECT_TRUE(net.IsUp("n"));
  EXPECT_EQ(events, (std::vector<std::string>{"crash@100", "restart@150"}));
}

TEST(FailureInjectorTest, NoRestartWhenDowntimeNegative) {
  Simulator sim;
  Network net(&sim, LatencyModel{});
  net.AddNode("n");
  FailureInjector inj(&sim, &net);
  inj.Register("n", {});
  inj.ScheduleCrash("n", 10, -1);
  sim.Run();
  EXPECT_FALSE(net.IsUp("n"));
}

}  // namespace
}  // namespace sim
