#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace sim {
namespace {

TEST(SimulatorTest, TimeAdvancesWithEvents) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  std::vector<common::TimeMicros> fired;
  sim.After(100, [&] { fired.push_back(sim.Now()); });
  sim.After(50, [&] { fired.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 50);
  EXPECT_EQ(fired[1], 100);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, TiesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(10, [&] { order.push_back(1); });
  sim.At(10, [&] { order.push_back(2); });
  sim.At(10, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, EventsScheduledFromHandlersRun) {
  Simulator sim;
  int depth = 0;
  sim.After(1, [&] {
    depth = 1;
    sim.After(1, [&] {
      depth = 2;
      sim.After(1, [&] { depth = 3; });
    });
  });
  sim.Run();
  EXPECT_EQ(depth, 3);
  EXPECT_EQ(sim.Now(), 3);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.After(10, [&] { ran = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<int> fired;
  sim.At(10, [&] { fired.push_back(10); });
  sim.At(20, [&] { fired.push_back(20); });
  sim.At(30, [&] { fired.push_back(30); });
  sim.RunUntil(20);
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(sim.Now(), 20);
  sim.RunUntil(100);
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithNoEvents) {
  Simulator sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.Now(), 500);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.After(1, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, DeterministicAcrossRunsWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::vector<std::uint64_t> draws;
    for (int i = 0; i < 10; ++i) {
      sim.After(static_cast<common::TimeMicros>(sim.rng().Below(100) + 1),
                [&] { draws.push_back(sim.rng().Next()); });
    }
    sim.Run();
    return draws;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(PeriodicTaskTest, FiresAtFixedPeriod) {
  Simulator sim;
  std::vector<common::TimeMicros> fires;
  PeriodicTask task(&sim, 10, [&] { fires.push_back(sim.Now()); });
  sim.RunUntil(35);
  task.Stop();
  sim.RunUntil(100);
  EXPECT_EQ(fires, (std::vector<common::TimeMicros>{10, 20, 30}));
}

TEST(PeriodicTaskTest, DestructionCancels) {
  Simulator sim;
  int fires = 0;
  {
    PeriodicTask task(&sim, 10, [&] { ++fires; });
    sim.RunUntil(25);
  }
  sim.RunUntil(200);
  EXPECT_EQ(fires, 2);
}

}  // namespace
}  // namespace sim
