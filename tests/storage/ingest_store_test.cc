#include "storage/ingest_store.h"

#include <vector>

#include <gtest/gtest.h>

namespace storage {
namespace {

using common::KeyRange;
using common::StatusCode;
using common::Version;

TEST(IngestStoreTest, AppendAssignsMonotonicVersions) {
  IngestStore store;
  const Version v1 = store.Append("a", "p1", 0);
  const Version v2 = store.Append("b", "p2", 1);
  EXPECT_LT(v1, v2);
  EXPECT_EQ(store.LatestVersion(), v2);
  EXPECT_EQ(store.EventCount(), 2u);
}

TEST(IngestStoreTest, QueryByVersionWindow) {
  IngestStore store;
  const Version v1 = store.Append("a", "1", 0);
  const Version v2 = store.Append("b", "2", 0);
  const Version v3 = store.Append("a", "3", 0);

  auto res = store.Query(KeyRange::All(), v1, v3);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 2u);
  EXPECT_EQ((*res)[0].version, v2);
  EXPECT_EQ((*res)[1].version, v3);
}

TEST(IngestStoreTest, QueryFiltersKeyRange) {
  IngestStore store;
  store.Append("apple", "1", 0);
  store.Append("banana", "2", 0);
  store.Append("cherry", "3", 0);
  auto res = store.Query(KeyRange{"b", "c"}, 0, common::kMaxVersion);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 1u);
  EXPECT_EQ((*res)[0].key, "banana");
}

TEST(IngestStoreTest, QueryHonorsLimit) {
  IngestStore store;
  for (int i = 0; i < 10; ++i) {
    store.Append("k", std::to_string(i), 0);
  }
  auto res = store.Query(KeyRange::All(), 0, common::kMaxVersion, 4);
  ASSERT_EQ(res->size(), 4u);
}

TEST(IngestStoreTest, ScanLatestReturnsCurrentStatePerKey) {
  IngestStore store;
  store.Append("a", "old", 0);
  store.Append("b", "only", 0);
  store.Append("a", "new", 0);
  auto latest = store.ScanLatest(KeyRange::All());
  ASSERT_EQ(latest.size(), 2u);
  EXPECT_EQ(latest[0].key, "a");
  EXPECT_EQ(latest[0].payload, "new");
  EXPECT_EQ(latest[1].key, "b");
}

TEST(IngestStoreTest, RetentionDropsOldButKeepsLatestPerKey) {
  IngestStore store;
  store.Append("a", "v1", /*now=*/0);
  store.Append("a", "v2", /*now=*/100);
  store.Append("b", "only", /*now=*/0);  // Old, but latest for "b".
  store.RetainAfter(/*horizon=*/50);

  EXPECT_EQ(store.EventCount(), 2u);  // a@v2 and b.
  auto latest = store.ScanLatest(KeyRange::All());
  ASSERT_EQ(latest.size(), 2u);
  EXPECT_EQ(latest[0].payload, "v2");
}

TEST(IngestStoreTest, QueryBelowRetainedHistoryFailsDetectably) {
  IngestStore store;
  const Version v1 = store.Append("a", "1", 0);
  store.Append("a", "2", 100);
  store.Append("a", "3", 200);
  store.RetainAfter(150);

  // History starting before retained events must fail loudly, not silently
  // return a gap — this is the property pubsub GC lacks.
  auto res = store.Query(KeyRange::All(), 0, common::kMaxVersion);
  EXPECT_EQ(res.status().code(), StatusCode::kOutOfRange);
  EXPECT_GT(store.MinRetainedVersion(), v1);

  // Resuming at/after the retained horizon works.
  auto ok = store.Query(KeyRange::All(), store.MinRetainedVersion() - 1, common::kMaxVersion);
  EXPECT_TRUE(ok.ok());
}

TEST(IngestStoreTest, EventObserverSeesLiveAppends) {
  IngestStore store;
  std::vector<IngestEvent> seen;
  store.AddEventObserver([&seen](const IngestEvent& ev) { seen.push_back(ev); });
  store.Append("k", "p", 42);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].key, "k");
  EXPECT_EQ(seen[0].payload, "p");
  EXPECT_EQ(seen[0].ingest_time, 42);
}

TEST(IngestStoreTest, QueryAfterLatestIsEmpty) {
  IngestStore store;
  store.Append("k", "p", 0);
  auto res = store.Query(KeyRange::All(), store.LatestVersion(), common::kMaxVersion);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->empty());
}

}  // namespace
}  // namespace storage
