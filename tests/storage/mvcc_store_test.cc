#include "storage/mvcc_store.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace storage {
namespace {

using common::ChangeEvent;
using common::Key;
using common::KeyRange;
using common::Mutation;
using common::MutationKind;
using common::StatusCode;
using common::Value;
using common::Version;

TEST(MvccStoreTest, GetMissingKey) {
  MvccStore store;
  EXPECT_EQ(store.GetLatest("nope").status().code(), StatusCode::kNotFound);
}

TEST(MvccStoreTest, PutThenGet) {
  MvccStore store;
  const Version v = store.Apply("k", Mutation::Put("v1"));
  EXPECT_GT(v, common::kNoVersion);
  auto res = store.GetLatest("k");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(*res, "v1");
}

TEST(MvccStoreTest, SnapshotReadsSeePastVersions) {
  MvccStore store;
  const Version v1 = store.Apply("k", Mutation::Put("old"));
  const Version v2 = store.Apply("k", Mutation::Put("new"));
  ASSERT_LT(v1, v2);
  EXPECT_EQ(*store.Get("k", v1), "old");
  EXPECT_EQ(*store.Get("k", v2), "new");
  EXPECT_EQ(store.Get("k", v1 - 1).status().code(), StatusCode::kNotFound);
}

TEST(MvccStoreTest, DeleteProducesNotFoundAtLaterVersions) {
  MvccStore store;
  const Version v1 = store.Apply("k", Mutation::Put("x"));
  const Version v2 = store.Apply("k", Mutation::Delete());
  EXPECT_EQ(*store.Get("k", v1), "x");
  EXPECT_EQ(store.Get("k", v2).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.GetLatest("k").status().code(), StatusCode::kNotFound);
}

TEST(MvccStoreTest, ScanRespectsRangeVersionAndLimit) {
  MvccStore store;
  store.Apply("a", Mutation::Put("1"));
  store.Apply("b", Mutation::Put("2"));
  const Version mid = store.LatestVersion();
  store.Apply("c", Mutation::Put("3"));
  store.Apply("b", Mutation::Put("2b"));

  auto all = store.Scan(KeyRange::All(), store.LatestVersion());
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 3u);
  EXPECT_EQ((*all)[1].value, "2b");

  auto at_mid = store.Scan(KeyRange::All(), mid);
  ASSERT_TRUE(at_mid.ok());
  ASSERT_EQ(at_mid->size(), 2u);
  EXPECT_EQ((*at_mid)[1].value, "2");

  auto limited = store.Scan(KeyRange::All(), store.LatestVersion(), 2);
  ASSERT_EQ(limited->size(), 2u);

  auto ranged = store.Scan(KeyRange{"b", "c"}, store.LatestVersion());
  ASSERT_EQ(ranged->size(), 1u);
  EXPECT_EQ((*ranged)[0].key, "b");
}

TEST(MvccStoreTest, TransactionCommitsAtomically) {
  MvccStore store;
  Transaction txn = store.Begin();
  txn.Put("x", "1");
  txn.Put("y", "2");
  txn.Delete("z");
  auto res = store.Commit(std::move(txn));
  ASSERT_TRUE(res.ok());
  // Both writes share the commit version.
  auto scan = store.Scan(KeyRange::All(), *res);
  ASSERT_EQ(scan->size(), 2u);
  EXPECT_EQ((*scan)[0].version, *res);
  EXPECT_EQ((*scan)[1].version, *res);
}

TEST(MvccStoreTest, ReadOnlyTransactionCommitsAtSnapshot) {
  MvccStore store;
  store.Apply("k", Mutation::Put("v"));
  Transaction txn = store.Begin();
  auto read = store.TxnGet(txn, "k");
  ASSERT_TRUE(read.ok());
  auto res = store.Commit(std::move(txn));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(*res, store.LatestVersion());
}

TEST(MvccStoreTest, OccDetectsReadWriteConflict) {
  MvccStore store;
  store.Apply("k", Mutation::Put("v0"));

  Transaction t1 = store.Begin();
  (void)store.TxnGet(t1, "k");
  t1.Put("k", "from-t1");

  // A concurrent writer commits first.
  store.Apply("k", Mutation::Put("interloper"));

  auto res = store.Commit(std::move(t1));
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kAborted);
  EXPECT_EQ(*store.GetLatest("k"), "interloper");
}

TEST(MvccStoreTest, OccAllowsDisjointConcurrentCommits) {
  MvccStore store;
  store.Apply("a", Mutation::Put("0"));
  store.Apply("b", Mutation::Put("0"));

  Transaction t1 = store.Begin();
  (void)store.TxnGet(t1, "a");
  t1.Put("a", "1");

  Transaction t2 = store.Begin();
  (void)store.TxnGet(t2, "b");
  t2.Put("b", "1");

  EXPECT_TRUE(store.Commit(std::move(t2)).ok());
  EXPECT_TRUE(store.Commit(std::move(t1)).ok());  // Disjoint: no conflict.
}

TEST(MvccStoreTest, OccReadOfMissingKeyConflictsWithInsert) {
  MvccStore store;
  Transaction t1 = store.Begin();
  EXPECT_EQ(store.TxnGet(t1, "new").status().code(), StatusCode::kNotFound);
  t1.Put("new", "mine");
  store.Apply("new", Mutation::Put("theirs"));
  EXPECT_EQ(store.Commit(std::move(t1)).status().code(), StatusCode::kAborted);
}

TEST(MvccStoreTest, CommitWithoutBeginFails) {
  MvccStore store;
  Transaction txn;
  EXPECT_EQ(store.Commit(std::move(txn)).status().code(), StatusCode::kFailedPrecondition);
}

TEST(MvccStoreTest, CommitObserverSeesChangesInOrder) {
  MvccStore store;
  std::vector<CommitRecord> records;
  store.AddCommitObserver([&records](const CommitRecord& r) { records.push_back(r); });

  Transaction txn = store.Begin();
  txn.Put("a", "1");
  txn.Delete("b");
  const Version v = *store.Commit(std::move(txn));

  ASSERT_EQ(records.size(), 1u);
  const CommitRecord& rec = records[0];
  EXPECT_EQ(rec.version, v);
  ASSERT_EQ(rec.changes.size(), 2u);
  EXPECT_EQ(rec.changes[0].key, "a");
  EXPECT_EQ(rec.changes[0].mutation.kind, MutationKind::kPut);
  EXPECT_FALSE(rec.changes[0].txn_last);
  EXPECT_EQ(rec.changes[1].key, "b");
  EXPECT_EQ(rec.changes[1].mutation.kind, MutationKind::kDelete);
  EXPECT_TRUE(rec.changes[1].txn_last);
}

TEST(MvccStoreTest, GcWatermarkInvalidatesOldSnapshots) {
  MvccStore store;
  const Version v1 = store.Apply("k", Mutation::Put("old"));
  const Version v2 = store.Apply("k", Mutation::Put("mid"));
  const Version v3 = store.Apply("k", Mutation::Put("new"));

  store.AdvanceGcWatermark(v2);
  EXPECT_EQ(store.MinRetainedVersion(), v2);
  EXPECT_EQ(store.Get("k", v1).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(*store.Get("k", v2), "mid");
  EXPECT_EQ(*store.Get("k", v3), "new");
  EXPECT_EQ(store.Scan(KeyRange::All(), v1).status().code(), StatusCode::kOutOfRange);
}

TEST(MvccStoreTest, GcFoldsHistoryButKeepsBase) {
  MvccStore store;
  store.Apply("k", Mutation::Put("a"));
  store.Apply("k", Mutation::Put("b"));
  const Version vb = store.LatestVersion();
  store.Apply("other", Mutation::Put("x"));
  const Version wm = store.LatestVersion();
  store.AdvanceGcWatermark(wm);
  // Version vb < wm, but it is the base state at the watermark for "k".
  EXPECT_EQ(*store.Get("k", wm), "b");
  (void)vb;
}

TEST(MvccStoreTest, GcDropsFullyDeletedKeys) {
  MvccStore store;
  store.Apply("gone", Mutation::Put("x"));
  store.Apply("gone", Mutation::Delete());
  store.Apply("kept", Mutation::Put("y"));
  const Version wm = store.LatestVersion();
  store.AdvanceGcWatermark(wm + 1);
  EXPECT_EQ(store.KeyCount(), 1u);
  EXPECT_EQ(store.GetLatest("kept").status().code(), StatusCode::kOk);
}

TEST(MvccStoreTest, WatermarkNeverRegresses) {
  MvccStore store;
  store.Apply("k", Mutation::Put("v"));
  store.AdvanceGcWatermark(10);
  store.AdvanceGcWatermark(5);
  EXPECT_EQ(store.MinRetainedVersion(), 10u);
}

// Property test: random workload; snapshot reads at every recorded version
// must match a brute-force model reconstructed from the committed history.
class MvccPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MvccPropertyTest, SnapshotReadsMatchHistoryModel) {
  common::Rng rng(GetParam());
  MvccStore store;

  // Model: full change history (version -> key -> value-or-deleted).
  std::vector<std::pair<Version, std::map<Key, std::optional<Value>>>> history;

  for (int step = 0; step < 150; ++step) {
    Transaction txn = store.Begin();
    std::map<Key, std::optional<Value>> writes;
    const int n_writes = 1 + static_cast<int>(rng.Below(3));
    for (int w = 0; w < n_writes; ++w) {
      const Key key = common::IndexKey(rng.Below(20), 2);
      if (rng.Bernoulli(0.2)) {
        txn.Delete(key);
        writes[key] = std::nullopt;
      } else {
        Value val = "v" + std::to_string(step) + "-" + std::to_string(w);
        txn.Put(key, val);
        writes[key] = val;
      }
    }
    auto res = store.Commit(std::move(txn));
    ASSERT_TRUE(res.ok());
    history.emplace_back(*res, std::move(writes));
  }

  // Verify snapshots at each commit version (and at version 0).
  auto state_at = [&history](Version v) {
    std::map<Key, Value> state;
    for (const auto& [version, writes] : history) {
      if (version > v) {
        break;
      }
      for (const auto& [key, val] : writes) {
        if (val.has_value()) {
          state[key] = *val;
        } else {
          state.erase(key);
        }
      }
    }
    return state;
  };

  for (std::size_t i = 0; i < history.size(); i += 7) {
    const Version v = history[i].first;
    const std::map<Key, Value> expect = state_at(v);
    auto scan = store.Scan(KeyRange::All(), v);
    ASSERT_TRUE(scan.ok());
    std::map<Key, Value> got;
    for (const Entry& e : *scan) {
      got[e.key] = e.value;
    }
    EXPECT_EQ(got, expect) << "at version " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvccPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110));

}  // namespace
}  // namespace storage
