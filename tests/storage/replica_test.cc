#include "storage/replica.h"

#include <gtest/gtest.h>

#include "common/types.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"

namespace storage {
namespace {

using common::KeyRange;
using common::Mutation;
using common::StatusCode;

TEST(StaleReplicaTest, AppliesAfterLag) {
  sim::Simulator sim;
  MvccStore primary;
  StaleReplica replica(&sim, &primary, /*lag=*/1000);

  primary.Apply("k", Mutation::Put("v1"));
  EXPECT_EQ(replica.Get("k").status().code(), StatusCode::kNotFound);

  sim.RunUntil(999);
  EXPECT_EQ(replica.Get("k").status().code(), StatusCode::kNotFound);
  sim.RunUntil(1000);
  EXPECT_EQ(*replica.Get("k"), "v1");
}

TEST(StaleReplicaTest, AppliedVersionTracksPrimary) {
  sim::Simulator sim;
  MvccStore primary;
  StaleReplica replica(&sim, &primary, 500);

  const auto v1 = primary.Apply("a", Mutation::Put("1"));
  sim.RunUntil(100);
  const auto v2 = primary.Apply("b", Mutation::Put("2"));

  EXPECT_EQ(replica.AppliedVersion(), common::kNoVersion);
  sim.RunUntil(500);
  EXPECT_EQ(replica.AppliedVersion(), v1);
  sim.RunUntil(600);
  EXPECT_EQ(replica.AppliedVersion(), v2);
}

TEST(StaleReplicaTest, DeletesPropagate) {
  sim::Simulator sim;
  MvccStore primary;
  StaleReplica replica(&sim, &primary, 10);
  primary.Apply("k", Mutation::Put("v"));
  sim.RunUntil(10);
  EXPECT_TRUE(replica.Get("k").ok());
  primary.Apply("k", Mutation::Delete());
  sim.RunUntil(20);
  EXPECT_EQ(replica.Get("k").status().code(), StatusCode::kNotFound);
}

TEST(StaleReplicaTest, ScanReflectsAppliedStateOnly) {
  sim::Simulator sim;
  MvccStore primary;
  StaleReplica replica(&sim, &primary, 100);
  primary.Apply("a", Mutation::Put("1"));
  sim.RunUntil(50);
  primary.Apply("b", Mutation::Put("2"));
  sim.RunUntil(100);  // Only "a" has landed.
  auto entries = replica.Scan(KeyRange::All());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, "a");
  sim.RunUntil(150);
  EXPECT_EQ(replica.Scan(KeyRange::All()).size(), 2u);
}

TEST(StaleReplicaTest, ScanHonorsRangeAndLimit) {
  sim::Simulator sim;
  MvccStore primary;
  StaleReplica replica(&sim, &primary, 1);
  primary.Apply("a", Mutation::Put("1"));
  primary.Apply("b", Mutation::Put("2"));
  primary.Apply("c", Mutation::Put("3"));
  sim.Run();
  EXPECT_EQ(replica.Scan(KeyRange{"b", ""}).size(), 2u);
  EXPECT_EQ(replica.Scan(KeyRange::All(), 2).size(), 2u);
  EXPECT_EQ(replica.Scan(KeyRange{"a", "b"}).size(), 1u);
}

TEST(StaleReplicaTest, TransactionAppliedAtomicallyAfterLag) {
  sim::Simulator sim;
  MvccStore primary;
  StaleReplica replica(&sim, &primary, 100);
  Transaction txn = primary.Begin();
  txn.Put("x", "1");
  txn.Put("y", "2");
  ASSERT_TRUE(primary.Commit(std::move(txn)).ok());
  sim.RunUntil(100);
  EXPECT_TRUE(replica.Get("x").ok());
  EXPECT_TRUE(replica.Get("y").ok());
}

}  // namespace
}  // namespace storage
