#include "storage/view.h"

#include <optional>

#include <gtest/gtest.h>

#include "storage/mvcc_store.h"

namespace storage {
namespace {

using common::KeyRange;
using common::Mutation;
using common::MutationKind;
using common::StatusCode;
using common::Value;

class FilteredViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.Apply("contacts/alice", Mutation::Put("alice@x.com|555-1234"));
    store_.Apply("contacts/bob", Mutation::Put("bob@x.com|555-9999"));
    store_.Apply("secrets/key1", Mutation::Put("hunter2"));
  }

  MvccStore store_;
};

TEST_F(FilteredViewTest, RangeRestrictsVisibility) {
  FilteredView view(&store_, KeyRange{"contacts/", "contacts0"});
  EXPECT_TRUE(view.Get("contacts/alice", store_.LatestVersion()).ok());
  EXPECT_EQ(view.Get("secrets/key1", store_.LatestVersion()).status().code(),
            StatusCode::kNotFound);
}

TEST_F(FilteredViewTest, ScanClipsToViewRange) {
  FilteredView view(&store_, KeyRange{"contacts/", "contacts0"});
  auto res = view.Scan(KeyRange::All(), store_.LatestVersion());
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 2u);
  EXPECT_EQ((*res)[0].key, "contacts/alice");
  EXPECT_EQ((*res)[1].key, "contacts/bob");
}

// Projection exposing only the email (the derived-value example of §4.1).
std::optional<Value> EmailOnly(const common::Key&, const Value& v) {
  const auto pos = v.find('|');
  if (pos == Value::npos) {
    return std::nullopt;
  }
  return v.substr(0, pos);
}

TEST_F(FilteredViewTest, ProjectionDerivesValues) {
  FilteredView view(&store_, KeyRange{"contacts/", "contacts0"}, EmailOnly);
  auto res = view.Get("contacts/alice", store_.LatestVersion());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(*res, "alice@x.com");

  auto scan = view.Scan(KeyRange::All(), store_.LatestVersion());
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ((*scan)[1].value, "bob@x.com");
}

TEST_F(FilteredViewTest, ProjectionCanHideRows) {
  store_.Apply("contacts/hidden", Mutation::Put("no-delimiter"));
  FilteredView view(&store_, KeyRange{"contacts/", "contacts0"}, EmailOnly);
  EXPECT_EQ(view.Get("contacts/hidden", store_.LatestVersion()).status().code(),
            StatusCode::kNotFound);
  auto scan = view.Scan(KeyRange::All(), store_.LatestVersion());
  EXPECT_EQ(scan->size(), 2u);  // Hidden row absent.
}

TEST_F(FilteredViewTest, FilterCommitRewritesEvents) {
  FilteredView view(&store_, KeyRange{"contacts/", "contacts0"}, EmailOnly);

  CommitRecord record;
  record.version = 99;
  record.changes.push_back(
      {"contacts/carol", Mutation::Put("carol@x.com|555-0000"), 99, false});
  record.changes.push_back({"secrets/key2", Mutation::Put("shh"), 99, true});

  auto filtered = view.FilterCommit(record);
  ASSERT_TRUE(filtered.has_value());
  ASSERT_EQ(filtered->changes.size(), 1u);
  EXPECT_EQ(filtered->changes[0].key, "contacts/carol");
  EXPECT_EQ(filtered->changes[0].mutation.value, "carol@x.com");
  EXPECT_TRUE(filtered->changes[0].txn_last);  // Re-marked after filtering.
}

TEST_F(FilteredViewTest, FilterCommitDropsInvisibleCommits) {
  FilteredView view(&store_, KeyRange{"contacts/", "contacts0"});
  CommitRecord record;
  record.version = 100;
  record.changes.push_back({"secrets/key3", Mutation::Put("x"), 100, true});
  EXPECT_FALSE(view.FilterCommit(record).has_value());
}

TEST_F(FilteredViewTest, DeletesPassThroughUnprojected) {
  FilteredView view(&store_, KeyRange{"contacts/", "contacts0"}, EmailOnly);
  CommitRecord record;
  record.version = 101;
  record.changes.push_back({"contacts/alice", Mutation::Delete(), 101, true});
  auto filtered = view.FilterCommit(record);
  ASSERT_TRUE(filtered.has_value());
  EXPECT_EQ(filtered->changes[0].mutation.kind, MutationKind::kDelete);
}

TEST_F(FilteredViewTest, SnapshotSemanticsPreserved) {
  FilteredView view(&store_, KeyRange{"contacts/", "contacts0"});
  const common::Version before = store_.LatestVersion();
  store_.Apply("contacts/alice", Mutation::Put("new@x.com|1"));
  EXPECT_EQ(*view.Get("contacts/alice", before), "alice@x.com|555-1234");
  EXPECT_EQ(*view.Get("contacts/alice", store_.LatestVersion()), "new@x.com|1");
}

}  // namespace
}  // namespace storage
