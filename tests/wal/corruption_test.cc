// Corruption matrix for wal::Log recovery: {byte flip, mid-frame truncation,
// duplicated tail frame} x {sealed segment, active segment}. Sealed segments
// were fully synced before any later write, so every anomaly there is genuine
// corruption and must reject loudly (kInternal + wal.recovery.rejected_segments).
// The active segment's anomalies are crash artifacts: the tail truncates at
// the last valid frame (counted in wal.recovery.torn_tail_*). In no case may
// recovery silently skip an interior frame and keep replaying after it.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "wal/fault_vfs.h"
#include "wal/log.h"
#include "wal/record_codec.h"

namespace wal {
namespace {

constexpr std::size_t kFrameHeaderBytes = 16;

std::string SegmentName(std::uint64_t first_index) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "seg-%020llu.wal",
                static_cast<unsigned long long>(first_index));
  return buf;
}

// Byte offsets where each frame of a well-formed segment begins, plus the
// terminating end offset.
std::vector<std::size_t> FrameBoundaries(const std::string& data) {
  std::vector<std::size_t> bounds;
  std::size_t pos = 0;
  while (pos + kFrameHeaderBytes <= data.size()) {
    bounds.push_back(pos);
    pos += kFrameHeaderBytes + DecodeU32(data.data() + pos + 4);
  }
  bounds.push_back(pos);
  return bounds;
}

enum class Fault { kByteFlip, kMidFrameTruncate, kDuplicateTailFrame };
enum class Where { kSealed, kActive };

const char* FaultName(Fault f) {
  switch (f) {
    case Fault::kByteFlip:
      return "byte-flip";
    case Fault::kMidFrameTruncate:
      return "mid-frame-truncate";
    case Fault::kDuplicateTailFrame:
      return "duplicate-tail-frame";
  }
  return "?";
}

struct Workload {
  FaultVfs vfs;
  std::string sealed_path;
  std::string active_path;
  std::uint64_t total_records = 0;
  std::uint64_t sealed_first = 0;   // First record index of the corrupted sealed segment.
  std::uint64_t active_first = 0;   // First record index of the active segment.
};

// Builds a multi-segment log: several sealed segments plus a non-empty active
// one. Returns the middle sealed segment and the active segment as corruption
// targets.
void BuildWorkload(Workload* w) {
  LogOptions options;
  options.segment_bytes = 128;
  auto log = Log::Open(&w->vfs, "log", options, nullptr,
                       [](std::uint64_t, std::string_view) { return common::Status::Ok(); });
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE((*log)->Append("record-" + std::to_string(i) + "-payload").ok());
  }
  const auto segments = (*log)->Segments();
  ASSERT_GT(segments.size(), 3u);
  ASSERT_GT(segments.back().end_index, segments.back().first_index);  // Active non-empty.
  w->total_records = 40;
  w->sealed_first = segments[segments.size() / 2].first_index;
  w->active_first = segments.back().first_index;
  w->sealed_path = "log/" + SegmentName(w->sealed_first);
  w->active_path = "log/" + SegmentName(w->active_first);
}

void Corrupt(Workload* w, Fault fault, Where where) {
  const std::string& path = where == Where::kSealed ? w->sealed_path : w->active_path;
  std::string* data = w->vfs.MutableContents(path);
  ASSERT_NE(data, nullptr);
  const std::vector<std::size_t> bounds = FrameBoundaries(*data);
  ASSERT_GT(bounds.size(), 2u);  // At least two complete frames.
  switch (fault) {
    case Fault::kByteFlip: {
      // Flip a payload byte of the segment's second frame (interior for the
      // sealed case; mid-segment for the active case).
      const std::size_t frame = bounds[1];
      (*data)[frame + kFrameHeaderBytes] ^= 0x40;
      break;
    }
    case Fault::kMidFrameTruncate: {
      // Cut the file in the middle of its final frame.
      const std::size_t last = bounds[bounds.size() - 2];
      data->resize(last + kFrameHeaderBytes + 2);
      break;
    }
    case Fault::kDuplicateTailFrame: {
      // A retried write appended the final frame twice.
      const std::size_t last = bounds[bounds.size() - 2];
      data->append(data->substr(last, bounds.back() - last));
      break;
    }
  }
}

TEST(WalCorruptionMatrixTest, SealedAnomaliesRejectActiveTailsTruncate) {
  for (Fault fault :
       {Fault::kByteFlip, Fault::kMidFrameTruncate, Fault::kDuplicateTailFrame}) {
    for (Where where : {Where::kSealed, Where::kActive}) {
      SCOPED_TRACE(std::string(FaultName(fault)) + " in " +
                   (where == Where::kSealed ? "sealed" : "active") + " segment");
      Workload w;
      BuildWorkload(&w);
      if (HasFatalFailure()) {
        return;
      }
      Corrupt(&w, fault, where);

      common::MetricsRegistry metrics;
      std::vector<std::uint64_t> replayed;
      RecoveryStats stats;
      LogOptions options;
      options.segment_bytes = 128;
      auto log = Log::Open(&w.vfs, "log", options, &metrics,
                           [&replayed](std::uint64_t index, std::string_view) {
                             replayed.push_back(index);
                             return common::Status::Ok();
                           },
                           &stats);

      // Replay must be a gapless prefix of the record sequence — a skipped
      // interior frame would show up as a hole here.
      for (std::size_t i = 0; i < replayed.size(); ++i) {
        ASSERT_EQ(replayed[i], static_cast<std::uint64_t>(i)) << "interior frame skipped";
      }

      if (where == Where::kSealed) {
        // Genuine corruption: loud reject, counted, nothing past the sealed
        // segment's bad frame replayed.
        ASSERT_FALSE(log.ok());
        EXPECT_EQ(log.status().code(), common::StatusCode::kInternal);
        EXPECT_EQ(metrics.counter("wal.recovery.rejected_segments").value(), 1);
        EXPECT_EQ(metrics.counter("wal.recovery.torn_tail_frames").value(), 0);
        EXPECT_LT(replayed.size(), w.total_records);
      } else {
        // Crash artifact in the active segment: truncate and carry on.
        ASSERT_TRUE(log.ok()) << log.status().message();
        EXPECT_EQ(metrics.counter("wal.recovery.rejected_segments").value(), 0);
        EXPECT_EQ(stats.torn_tail_frames, 1u);
        EXPECT_GT(stats.torn_tail_bytes, 0u);
        EXPECT_EQ(metrics.counter("wal.recovery.torn_tail_frames").value(), 1);
        switch (fault) {
          case Fault::kByteFlip:
            // Everything before the flipped (second) frame of the active
            // segment survives; the flipped frame and all after it are gone.
            EXPECT_EQ(replayed.size(), static_cast<std::size_t>(w.active_first) + 1);
            break;
          case Fault::kMidFrameTruncate:
            EXPECT_EQ(replayed.size(), w.total_records - 1);
            break;
          case Fault::kDuplicateTailFrame:
            // The duplicate is dropped; every real record survives.
            EXPECT_EQ(replayed.size(), w.total_records);
            break;
        }
        EXPECT_EQ((*log)->next_index(), replayed.size());

        // The log is usable: appends resume at the truncation point and a
        // second recovery is clean.
        ASSERT_TRUE((*log)->Append("post-corruption").ok());
        log->reset();
        std::vector<std::uint64_t> replayed2;
        RecoveryStats stats2;
        auto again =
            Log::Open(&w.vfs, "log", options, nullptr,
                      [&replayed2](std::uint64_t index, std::string_view) {
                        replayed2.push_back(index);
                        return common::Status::Ok();
                      },
                      &stats2);
        ASSERT_TRUE(again.ok());
        EXPECT_EQ(replayed2.size(), replayed.size() + 1);
        EXPECT_EQ(stats2.torn_tail_frames, 0u);
      }
    }
  }
}

// Flipping a bit inside a frame *header* (the length field) must also be
// caught — a bogus length can make the rest of the segment unparseable, which
// in the active segment is a torn tail and in a sealed segment a rejection.
TEST(WalCorruptionMatrixTest, HeaderCorruptionIsCaughtToo) {
  for (Where where : {Where::kSealed, Where::kActive}) {
    SCOPED_TRACE(where == Where::kSealed ? "sealed" : "active");
    Workload w;
    BuildWorkload(&w);
    if (HasFatalFailure()) {
      return;
    }
    const std::string& path = where == Where::kSealed ? w.sealed_path : w.active_path;
    std::string* data = w.vfs.MutableContents(path);
    const auto bounds = FrameBoundaries(*data);
    (*data)[bounds[1] + 4] ^= 0x10;  // Length byte of the second frame.

    common::MetricsRegistry metrics;
    LogOptions options;
    options.segment_bytes = 128;
    auto log = Log::Open(&w.vfs, "log", options, &metrics,
                         [](std::uint64_t, std::string_view) { return common::Status::Ok(); });
    if (where == Where::kSealed) {
      ASSERT_FALSE(log.ok());
      EXPECT_EQ(log.status().code(), common::StatusCode::kInternal);
      EXPECT_EQ(metrics.counter("wal.recovery.rejected_segments").value(), 1);
    } else {
      ASSERT_TRUE(log.ok()) << log.status().message();
      EXPECT_EQ(metrics.counter("wal.recovery.torn_tail_frames").value(), 1);
    }
  }
}

}  // namespace
}  // namespace wal
