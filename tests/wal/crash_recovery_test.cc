// Crash-point sweep: for many seeds, run a deterministic broker workload on a
// FaultVfs, then re-run it crashing at *every* vfs append index in turn. After
// each crash the stack is recovered from the WAL onto a fresh broker and must
// satisfy:
//   * recovered partition contents are a byte-equal prefix of the fault-free
//     reference run (modulo the journaled retention trimming);
//   * every durably acked publish and offset commit survives recovery;
//   * the unmodified invariant oracle passes on the recovered stack;
//   * no sealed segment was rejected and no interior frame skipped.
//
// "Acked" follows the journal's durability discipline: an op counts as acked
// only if the sticky journal status was still OK after it (sync_every_append
// means the record hit stable storage before the status was read).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "oracle/invariant_oracle.h"
#include "pubsub/broker.h"
#include "pubsub/types.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "wal/broker_journal.h"
#include "wal/fault_vfs.h"

namespace wal {
namespace {

constexpr char kTopicA[] = "events";    // 2 partitions, no retention.
constexpr char kTopicB[] = "capped";    // 1 partition, max_messages size cap.
constexpr std::uint64_t kCapB = 8;
constexpr char kGroup[] = "g";
constexpr int kOps = 40;
constexpr std::uint64_t kSeeds = 25;

struct Stack {
  sim::Simulator sim;
  sim::Network net;
  pubsub::Broker broker;

  explicit Stack(std::uint64_t seed) : sim(seed), net(&sim), broker(&sim, &net, "broker") {}
};

struct AckedPublish {
  std::string topic;
  pubsub::PartitionId partition = 0;
  pubsub::Offset offset = 0;
  pubsub::Message msg;
};

struct RunLog {
  std::vector<AckedPublish> acked;                         // Durable publishes, op order.
  std::map<pubsub::PartitionId, pubsub::Offset> commits;   // Durable commits (topic A).
};

// Runs the seeded workload. The op stream is a pure function of `seed`; a
// crash only truncates it (ops stop once the vfs is down), so the fault-free
// run is the reference for every crash point of the same seed.
RunLog RunWorkload(std::uint64_t seed, FaultVfs* vfs, pubsub::Broker* broker,
                   BrokerJournal* journal) {
  RunLog out;
  pubsub::TopicConfig config_a;
  config_a.partitions = 2;
  pubsub::TopicConfig config_b;
  config_b.partitions = 1;
  config_b.retention.max_messages = kCapB;

  const bool created_a = journal->CreateTopic(kTopicA, config_a).ok();
  (void)journal->CreateTopic(kTopicB, config_b);
  if (created_a) {
    (void)broker->JoinGroup(kGroup, kTopicA, "member-1");
  }

  common::Rng rng(seed * 7919 + 17);
  for (int i = 0; i < kOps && !vfs->crashed(); ++i) {
    const std::uint64_t op = rng.Below(10);
    if (op < 9) {
      const bool to_a = op < 6;
      const std::string topic = to_a ? kTopicA : kTopicB;
      const pubsub::PartitionId partition =
          to_a ? static_cast<pubsub::PartitionId>(rng.Below(2)) : 0;
      pubsub::Message msg;
      msg.key = "k" + std::to_string(i % 5);
      msg.value = "s" + std::to_string(seed) + "-op" + std::to_string(i);
      // The broker stamps publish_time with its sim clock (0 throughout these
      // runs), so the recorded reference message must carry the stamped value.
      auto result = broker->Publish(topic, msg, partition);
      if (result.ok() && journal->status().ok()) {
        out.acked.push_back(AckedPublish{topic, result->partition, result->offset, msg});
      }
    } else if (created_a) {
      const pubsub::PartitionId p = static_cast<pubsub::PartitionId>(rng.Below(2));
      const pubsub::Offset target = broker->EndOffset(kTopicA, p);
      broker->CommitOffset(kGroup, p, target);
      if (journal->status().ok()) {
        auto it = out.commits.find(p);
        if (it == out.commits.end() || target > it->second) {
          out.commits[p] = target;
        }
      }
    }
  }
  return out;
}

// Full reference message stream per (topic, partition) — in a fault-free run
// every publish acks, so the acked list is the stream.
using Streams = std::map<std::pair<std::string, pubsub::PartitionId>, std::vector<pubsub::Message>>;

Streams StreamsOf(const RunLog& run) {
  Streams streams;
  for (const AckedPublish& p : run.acked) {
    streams[{p.topic, p.partition}].push_back(p.msg);
  }
  return streams;
}

// Asserts that `broker`'s recovered state is a prefix of the reference
// streams, with topic B's size cap applied to its prefix.
void ExpectPrefixOfReference(pubsub::Broker* broker, const Streams& reference) {
  for (const auto& [key, stream] : reference) {
    const auto& [topic, partition] = key;
    if (!broker->HasTopic(topic)) {
      continue;  // Legitimate only if nothing was acked — checked separately.
    }
    const pubsub::PartitionLog* log = broker->Log(topic, partition);
    ASSERT_NE(log, nullptr);
    const pubsub::Offset end = log->end_offset();
    ASSERT_LE(end, stream.size()) << topic << "/" << partition << ": recovered past reference";

    // Expected retained window for this end offset: everything for topic A,
    // the last kCapB messages for the size-capped topic B. The cap's trim
    // record is journaled right after the append that triggered it, so a
    // crash between the two can durably keep one excess message at the head
    // (re-trimmed by the next live append) — hence the one-message slack.
    const pubsub::Offset cap_first = topic == kTopicB && end > kCapB ? end - kCapB : 0;
    const pubsub::Offset first = log->first_offset();
    ASSERT_LE(first, cap_first) << topic << "/" << partition;
    ASSERT_GE(first + 1, cap_first) << topic << "/" << partition;
    if (topic != kTopicB) {
      ASSERT_EQ(first, 0u) << topic << "/" << partition;
    }
    ASSERT_EQ(log->entries().size(), static_cast<std::size_t>(end - first));
    for (std::size_t i = 0; i < log->entries().size(); ++i) {
      const pubsub::StoredMessage& m = log->entries()[i];
      ASSERT_EQ(m.offset, first + i) << topic << "/" << partition << " entry " << i;
      ASSERT_EQ(m.message, stream[static_cast<std::size_t>(m.offset)])
          << topic << "/" << partition << " offset " << m.offset;
    }
  }
}

void ExpectAckedSurvived(pubsub::Broker* broker, const RunLog& run) {
  for (const AckedPublish& p : run.acked) {
    ASSERT_TRUE(broker->HasTopic(p.topic)) << "acked publish to unrecovered topic " << p.topic;
    const pubsub::PartitionLog* log = broker->Log(p.topic, p.partition);
    ASSERT_NE(log, nullptr);
    ASSERT_LT(p.offset, log->end_offset())
        << p.topic << "/" << p.partition << ": acked offset lost";
    if (p.offset < log->first_offset()) {
      continue;  // Trimmed by the journaled size cap — accounted, not lost.
    }
    const std::size_t i = static_cast<std::size_t>(p.offset - log->first_offset());
    ASSERT_LT(i, log->entries().size());
    ASSERT_EQ(log->entries()[i].offset, p.offset);
    ASSERT_EQ(log->entries()[i].message, p.msg) << p.topic << "/" << p.partition;
  }
  for (const auto& [partition, committed] : run.commits) {
    ASSERT_GE(broker->CommittedOffset(kGroup, partition), committed)
        << "acked commit regressed on partition " << partition;
  }
}

TEST(WalCrashRecoverySweepTest, EveryCrashPointRecoversToAnAckedConsistentPrefix) {
  std::uint64_t total_crash_points = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));

    // Reference: fault-free run of the same op stream.
    FaultOptions clean;
    clean.seed = seed;
    FaultVfs ref_vfs(clean);
    RunLog reference;
    {
      Stack stack(seed);
      auto journal =
          BrokerJournal::Open(&ref_vfs, "wal", BrokerJournalOptions{}, nullptr, &stack.broker);
      ASSERT_TRUE(journal.ok());
      reference = RunWorkload(seed, &ref_vfs, &stack.broker, journal->get());
      ASSERT_TRUE((*journal)->status().ok());
    }
    const std::uint64_t writes = ref_vfs.append_calls();
    ASSERT_GT(writes, 20u);
    const Streams streams = StreamsOf(reference);

    for (std::uint64_t crash_at = 0; crash_at < writes; ++crash_at) {
      SCOPED_TRACE("crash at append " + std::to_string(crash_at));
      ++total_crash_points;

      FaultOptions fault;
      fault.seed = seed;
      fault.crash_at_append = static_cast<std::int64_t>(crash_at);
      fault.lose_unsynced_on_crash = true;
      FaultVfs vfs(fault);

      RunLog acked;
      {
        Stack stack(seed);
        auto journal =
            BrokerJournal::Open(&vfs, "wal", BrokerJournalOptions{}, nullptr, &stack.broker);
        ASSERT_TRUE(journal.ok());
        acked = RunWorkload(seed, &vfs, &stack.broker, journal->get());
      }
      ASSERT_TRUE(vfs.crashed());
      vfs.Restart();

      // Recover onto a completely fresh stack.
      Stack stack(seed + 1000);
      common::MetricsRegistry metrics;
      auto journal = BrokerJournal::Open(&vfs, "wal", BrokerJournalOptions{}, &metrics,
                                         &stack.broker);
      ASSERT_TRUE(journal.ok()) << journal.status().message();
      ASSERT_TRUE((*journal)->status().ok());
      ASSERT_EQ(metrics.counter("wal.recovery.rejected_segments").value(), 0)
          << "sealed segment rejected after a plain crash";

      ExpectPrefixOfReference(&stack.broker, streams);
      if (HasFatalFailure()) {
        return;
      }
      ExpectAckedSurvived(&stack.broker, acked);
      if (HasFatalFailure()) {
        return;
      }

      // The unmodified cross-layer oracle must be clean on the recovered stack.
      oracle::InvariantOracle oracle(&stack.sim);
      oracle.ObserveBroker(&stack.broker);
      oracle.Check();
      oracle.CheckQuiesced();
      ASSERT_TRUE(oracle.ok()) << oracle.Report();
    }
  }
  // ~25 seeds x every write index: make sure the sweep actually swept.
  EXPECT_GT(total_crash_points, 500u);
  std::printf("[ sweep    ] %llu crash points across %llu seeds, all recovered clean\n",
              static_cast<unsigned long long>(total_crash_points),
              static_cast<unsigned long long>(kSeeds));
}

// A crash while *recovering* (during replay reads nothing is written, but the
// first post-recovery append may tear again): recovery is idempotent — crash,
// recover, crash during the next workload, recover again.
TEST(WalCrashRecoverySweepTest, RepeatedCrashesStayConsistent) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultOptions fault;
    fault.seed = seed;
    fault.crash_at_append = 12;
    fault.lose_unsynced_on_crash = true;
    auto vfs = std::make_unique<FaultVfs>(fault);

    {
      Stack stack(seed);
      auto journal =
          BrokerJournal::Open(vfs.get(), "wal", BrokerJournalOptions{}, nullptr, &stack.broker);
      ASSERT_TRUE(journal.ok());
      (void)RunWorkload(seed, vfs.get(), &stack.broker, journal->get());
    }
    ASSERT_TRUE(vfs->crashed());
    vfs->Restart();

    // First recovery; run more of the workload; no further faults scheduled.
    pubsub::Offset end_after_first = 0;
    {
      Stack stack(seed + 1);
      auto journal =
          BrokerJournal::Open(vfs.get(), "wal", BrokerJournalOptions{}, nullptr, &stack.broker);
      ASSERT_TRUE(journal.ok()) << journal.status().message();
      (void)RunWorkload(seed + 100, vfs.get(), &stack.broker, journal->get());
      ASSERT_TRUE((*journal)->status().ok());
      end_after_first = stack.broker.EndOffset(kTopicA, 0);
    }

    // Second recovery sees everything the first epoch wrote.
    Stack stack(seed + 2);
    common::MetricsRegistry metrics;
    auto journal =
        BrokerJournal::Open(vfs.get(), "wal", BrokerJournalOptions{}, &metrics, &stack.broker);
    ASSERT_TRUE(journal.ok()) << journal.status().message();
    EXPECT_EQ(stack.broker.EndOffset(kTopicA, 0), end_after_first);
    EXPECT_EQ(metrics.counter("wal.recovery.rejected_segments").value(), 0);

    oracle::InvariantOracle oracle(&stack.sim);
    oracle.ObserveBroker(&stack.broker);
    oracle.Check();
    oracle.CheckQuiesced();
    EXPECT_TRUE(oracle.ok()) << oracle.Report();
  }
}

}  // namespace
}  // namespace wal
