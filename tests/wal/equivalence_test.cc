// Durable/in-memory equivalence (mirrors tests/runtime/equivalence_test.cc):
// with a fault-free FaultVfs, a WAL-backed stack must behave byte-for-byte
// like the plain in-memory stack — identical partition logs, offsets,
// committed positions, and fetch/delivery sequences — and a recovery of that
// stack must land on the same state and continue seamlessly.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "oracle/invariant_oracle.h"
#include "pubsub/broker.h"
#include "pubsub/log.h"
#include "runtime/concurrent_broker.h"
#include "runtime/concurrent_watch.h"
#include "runtime/shard_pool.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "wal/broker_journal.h"
#include "wal/fault_vfs.h"
#include "watch/watch_system.h"

namespace wal {
namespace {

struct Stack {
  sim::Simulator sim;
  sim::Network net;
  pubsub::Broker broker;

  explicit Stack(std::uint64_t seed) : sim(seed), net(&sim), broker(&sim, &net, "broker") {}
};

void ExpectSameBrokerState(pubsub::Broker* got, pubsub::Broker* want,
                           const std::vector<std::string>& topics) {
  for (const std::string& topic : topics) {
    ASSERT_TRUE(got->HasTopic(topic));
    const pubsub::PartitionId partitions = want->PartitionCount(topic);
    ASSERT_EQ(got->PartitionCount(topic), partitions);
    for (pubsub::PartitionId p = 0; p < partitions; ++p) {
      SCOPED_TRACE(topic + "/" + std::to_string(p));
      const pubsub::PartitionLog* g = got->Log(topic, p);
      const pubsub::PartitionLog* w = want->Log(topic, p);
      ASSERT_NE(g, nullptr);
      ASSERT_NE(w, nullptr);
      EXPECT_EQ(g->entries(), w->entries());
      EXPECT_EQ(g->first_offset(), w->first_offset());
      EXPECT_EQ(g->end_offset(), w->end_offset());
      EXPECT_EQ(g->gced(), w->gced());
      EXPECT_EQ(g->compacted_away(), w->compacted_away());
    }
  }
}

// The shared seeded workload: mixed-routing publishes to a plain and a
// size-capped topic, group joins, commits at end offsets, and one seek
// rewind. Applied identically to both brokers; every step must agree.
void RunPairedWorkload(pubsub::Broker* durable, BrokerJournal* journal, pubsub::Broker* memory) {
  pubsub::TopicConfig plain;
  plain.partitions = 3;
  pubsub::TopicConfig capped;
  capped.partitions = 1;
  capped.retention.max_messages = 10;

  ASSERT_TRUE(journal->CreateTopic("t", plain).ok());
  ASSERT_TRUE(memory->CreateTopic("t", plain).ok());
  ASSERT_TRUE(journal->CreateTopic("c", capped).ok());
  ASSERT_TRUE(memory->CreateTopic("c", capped).ok());

  for (const std::string member : {"m1", "m2"}) {
    auto want = memory->JoinGroup("g", "t", member);
    auto got = durable->JoinGroup("g", "t", member);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *want);
  }

  common::Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    const bool to_capped = rng.Below(4) == 0;
    const std::string topic = to_capped ? "c" : "t";
    pubsub::Message msg;
    msg.value = "v" + std::to_string(i);
    msg.publish_time = 10 * i;
    std::optional<pubsub::PartitionId> part;
    switch (rng.Below(3)) {
      case 0:
        msg.key = "user-" + std::to_string(rng.Below(16));
        break;
      case 1:
        part = static_cast<pubsub::PartitionId>(
            rng.Below(to_capped ? 1 : plain.partitions));
        break;
      default:
        break;  // Round robin.
    }
    const auto want = memory->Publish(topic, msg, part);
    const auto got = durable->Publish(topic, msg, part);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->partition, want->partition) << "message " << i;
    EXPECT_EQ(got->offset, want->offset) << "message " << i;
  }

  for (pubsub::PartitionId p = 0; p < plain.partitions; ++p) {
    const pubsub::Offset end = memory->EndOffset("t", p);
    ASSERT_EQ(durable->EndOffset("t", p), end);
    memory->CommitOffset("g", p, end);
    durable->CommitOffset("g", p, end);
  }
  // Seek partition 0 back — the one legitimate committed-offset rewind.
  memory->SeekGroup("g", 0, 1);
  durable->SeekGroup("g", 0, 1);

  ASSERT_TRUE(journal->status().ok()) << journal->status().message();
}

TEST(WalEquivalenceTest, DurableBrokerMatchesInMemoryBrokerLive) {
  FaultVfs vfs;
  Stack memory(1);
  Stack durable(1);
  auto journal =
      BrokerJournal::Open(&vfs, "wal", BrokerJournalOptions{}, nullptr, &durable.broker);
  ASSERT_TRUE(journal.ok());
  RunPairedWorkload(&durable.broker, journal->get(), &memory.broker);
  if (HasFatalFailure()) {
    return;
  }

  ExpectSameBrokerState(&durable.broker, &memory.broker, {"t", "c"});
  for (pubsub::PartitionId p = 0; p < 3; ++p) {
    EXPECT_EQ(durable.broker.CommittedOffset("g", p), memory.broker.CommittedOffset("g", p));
  }
  EXPECT_EQ(durable.broker.GroupBacklog("g", "t"), memory.broker.GroupBacklog("g", "t"));

  // Fetch sequences (including the silent reset below retained history on the
  // capped topic) agree too.
  const auto want = memory.broker.Fetch("c", 0, 0, 100);
  const auto got = durable.broker.Fetch("c", 0, 0, 100);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *want);
  EXPECT_EQ(durable.broker.TotalSilentSkips("c"), memory.broker.TotalSilentSkips("c"));
  EXPECT_EQ(durable.broker.TotalGced("c"), memory.broker.TotalGced("c"));
}

TEST(WalEquivalenceTest, RecoveredBrokerMatchesInMemoryBroker) {
  FaultVfs vfs;
  Stack memory(1);
  {
    Stack durable(1);
    auto journal =
        BrokerJournal::Open(&vfs, "wal", BrokerJournalOptions{}, nullptr, &durable.broker);
    ASSERT_TRUE(journal.ok());
    RunPairedWorkload(&durable.broker, journal->get(), &memory.broker);
    if (HasFatalFailure()) {
      return;
    }
  }

  Stack recovered(2);
  auto journal =
      BrokerJournal::Open(&vfs, "wal", BrokerJournalOptions{}, nullptr, &recovered.broker);
  ASSERT_TRUE(journal.ok()) << journal.status().message();
  EXPECT_GT((*journal)->recovery_stats().records_replayed, 0u);

  ExpectSameBrokerState(&recovered.broker, &memory.broker, {"t", "c"});
  // Committed offsets (including the seek rewind) survive; membership is
  // soft state and starts empty, Kafka-style.
  const pubsub::GroupView got = recovered.broker.ViewGroup("g");
  const pubsub::GroupView want = memory.broker.ViewGroup("g");
  EXPECT_EQ(got.topic, want.topic);
  EXPECT_EQ(got.committed, want.committed);
  EXPECT_TRUE(got.members.empty());

  // A re-joined consumer resumes from the recovered committed offset.
  ASSERT_TRUE(recovered.broker.JoinGroup("g", "t", "m1").ok());
  EXPECT_EQ(recovered.broker.CommittedOffset("g", 0), memory.broker.CommittedOffset("g", 0));

  // The unmodified oracle is clean on the recovered stack.
  oracle::InvariantOracle oracle(&recovered.sim);
  oracle.ObserveBroker(&recovered.broker);
  oracle.Check();
  oracle.CheckQuiesced();
  EXPECT_TRUE(oracle.ok()) << oracle.Report();

  // And the recovered broker keeps journaling: one more publish round-trips
  // through yet another recovery.
  auto published = recovered.broker.Publish("t", pubsub::Message{"", "after", 99999}, 0);
  ASSERT_TRUE(published.ok());
  ASSERT_TRUE((*journal)->status().ok());
  journal->reset();
  Stack again(3);
  auto journal2 = BrokerJournal::Open(&vfs, "wal", BrokerJournalOptions{}, nullptr, &again.broker);
  ASSERT_TRUE(journal2.ok());
  EXPECT_EQ(again.broker.EndOffset("t", 0), published->offset + 1);
}

TEST(WalEquivalenceTest, DurableRuntimeFacadeMatchesInMemoryAndRecovers) {
  constexpr std::size_t kShards = 2;
  constexpr pubsub::PartitionId kPartitions = 4;
  FaultVfs vfs;

  runtime::RuntimeOptions durable_options;
  durable_options.shards = kShards;
  durable_options.durable_vfs = &vfs;
  runtime::RuntimeOptions memory_options;
  memory_options.shards = kShards;

  pubsub::TopicConfig config;
  config.partitions = kPartitions;

  {
    runtime::ShardPool dpool(durable_options);
    runtime::ConcurrentBroker dbroker(&dpool);
    runtime::ShardPool mpool(memory_options);
    runtime::ConcurrentBroker mbroker(&mpool);
    dpool.Start();
    mpool.Start();
    ASSERT_TRUE(dbroker.CreateTopic("t", config).ok());
    ASSERT_TRUE(mbroker.CreateTopic("t", config).ok());
    EXPECT_FALSE(dbroker.CreateTopic("t", config).ok());  // Duplicate still rejected.

    ASSERT_TRUE(dbroker.JoinGroup("g", "t", "m1").ok());
    ASSERT_TRUE(mbroker.JoinGroup("g", "t", "m1").ok());

    common::Rng rng(7);
    for (int i = 0; i < 400; ++i) {
      pubsub::Message msg;
      msg.value = "v" + std::to_string(i);
      std::optional<pubsub::PartitionId> part;
      if (rng.Below(2) == 0) {
        msg.key = "user-" + std::to_string(rng.Below(32));
      } else {
        part = static_cast<pubsub::PartitionId>(rng.Below(kPartitions));
      }
      const auto want = mbroker.PublishSync("t", msg, part);
      const auto got = dbroker.PublishSync("t", msg, part);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got->partition, want->partition);
      EXPECT_EQ(got->offset, want->offset);
    }
    for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
      const pubsub::Offset end = mbroker.EndOffset("t", p);
      EXPECT_EQ(dbroker.EndOffset("t", p), end);
      mbroker.CommitOffset("g", p, end);
      dbroker.CommitOffset("g", p, end);
    }
    dpool.Quiesce();
    mpool.Quiesce();
    ASSERT_TRUE(dpool.durable_status().ok()) << dpool.durable_status().message();

    for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
      const std::size_t owner = dbroker.OwnerShard(p);
      EXPECT_EQ(dpool.core(owner).broker->Log("t", p)->entries(),
                mpool.core(owner).broker->Log("t", p)->entries())
          << "partition " << p;
      EXPECT_EQ(dbroker.CommittedOffset("g", p), mbroker.CommittedOffset("g", p));
    }
    // "Crash" the durable deployment: stop it and bring up a fresh pool on
    // the same vfs. The in-memory pool keeps running as the uninterrupted
    // reference (pools do not restart; its cores are race-free to read while
    // quiesced with no producers).
    dpool.Stop();

    runtime::ShardPool rpool(durable_options);
    ASSERT_TRUE(rpool.durable_status().ok()) << rpool.durable_status().message();
    runtime::ConcurrentBroker rbroker(&rpool);
    // The facade's routing map is seeded from the recovered shard brokers.
    EXPECT_TRUE(rbroker.HasTopic("t"));
    EXPECT_EQ(rbroker.PartitionCount("t"), kPartitions);
    for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
      const std::size_t owner = rbroker.OwnerShard(p);
      EXPECT_EQ(rpool.core(owner).broker->Log("t", p)->entries(),
                mpool.core(owner).broker->Log("t", p)->entries())
          << "partition " << p << " after recovery";
      EXPECT_EQ(rbroker.CommittedOffset("g", p), mbroker.CommittedOffset("g", p));
      EXPECT_EQ(rbroker.EndOffset("t", p), mbroker.EndOffset("t", p));
    }

    // Continuation: keyed publishes land on the same partitions at the next
    // offsets, on the recovered pool exactly as on the uninterrupted one.
    rpool.Start();
    for (int i = 0; i < 50; ++i) {
      pubsub::Message msg;
      msg.key = "cont-" + std::to_string(i);
      msg.value = "w" + std::to_string(i);
      const auto want = mbroker.PublishSync("t", msg, std::nullopt);
      const auto got = rbroker.PublishSync("t", msg, std::nullopt);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got->partition, want->partition);
      EXPECT_EQ(got->offset, want->offset);
    }
    rpool.Quiesce();
    mpool.Quiesce();
    ASSERT_TRUE(rpool.durable_status().ok()) << rpool.durable_status().message();
    for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
      const std::size_t owner = rbroker.OwnerShard(p);
      EXPECT_EQ(rpool.core(owner).broker->Log("t", p)->entries(),
                mpool.core(owner).broker->Log("t", p)->entries())
          << "partition " << p << " after continuation";
    }
    rpool.Stop();
    mpool.Stop();
  }
}

// Callback recording delivered events (shard worker threads deliver, so
// recording is mutex-guarded). Mirrors the runtime equivalence suite.
class RecordingCallback : public watch::WatchCallback {
 public:
  void OnEvent(const common::ChangeEvent& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }
  void OnProgress(const common::ProgressEvent&) override {}
  void OnResync() override {
    std::lock_guard<std::mutex> lock(mu_);
    ++resyncs_;
  }

  std::vector<common::ChangeEvent> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }
  int resyncs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return resyncs_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<common::ChangeEvent> events_;
  int resyncs_ = 0;
};

TEST(WalEquivalenceTest, DurableModeDoesNotPerturbWatchDeliveries) {
  constexpr std::size_t kShards = 2;
  FaultVfs vfs;

  runtime::RuntimeOptions durable_options;
  durable_options.shards = kShards;
  durable_options.watch_splits = {"m"};
  durable_options.durable_vfs = &vfs;
  runtime::RuntimeOptions memory_options;
  memory_options.shards = kShards;
  memory_options.watch_splits = {"m"};

  runtime::ShardPool dpool(durable_options);
  runtime::ConcurrentWatchService dwatch(&dpool);
  runtime::ConcurrentBroker dbroker(&dpool);
  runtime::ShardPool mpool(memory_options);
  runtime::ConcurrentWatchService mwatch(&mpool);
  dpool.Start();
  mpool.Start();

  // Sessions confined to one shard each: delivery sequences must be equal,
  // not merely interleaving-equivalent.
  RecordingCallback d_low, d_high, m_low, m_high;
  auto h1 = dwatch.Watch("a", "m", 0, &d_low);
  auto h2 = dwatch.Watch("m", "", 0, &d_high);
  auto h3 = mwatch.Watch("a", "m", 0, &m_low);
  auto h4 = mwatch.Watch("m", "", 0, &m_high);

  // Broker traffic journals on the durable pool while watch events flow —
  // durability work must not leak into the watch path.
  pubsub::TopicConfig config;
  config.partitions = 2;
  ASSERT_TRUE(dbroker.CreateTopic("t", config).ok());

  common::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    common::ChangeEvent event;
    event.key = std::string(1, static_cast<char>('a' + rng.Below(20))) +
                std::to_string(rng.Below(30));
    event.mutation = rng.Below(10) == 0 ? common::Mutation::Delete()
                                        : common::Mutation::Put("v" + std::to_string(i));
    event.version = i + 1;
    dwatch.Append(event);
    mwatch.Append(event);
    if (i % 5 == 0) {
      ASSERT_TRUE(
          dbroker.PublishSync("t", pubsub::Message{"k" + std::to_string(i), "v", 0}).ok());
    }
  }
  dpool.Quiesce();
  mpool.Quiesce();
  ASSERT_TRUE(dpool.durable_status().ok());

  EXPECT_EQ(d_low.resyncs(), 0);
  EXPECT_EQ(d_high.resyncs(), 0);
  EXPECT_EQ(d_low.events(), m_low.events());
  EXPECT_EQ(d_high.events(), m_high.events());

  dpool.Stop();
  mpool.Stop();
}

TEST(WalEquivalenceTest, ReplicatedFailoverMatchesSingleCopyBaseline) {
  // A replicated durable runtime that fails every shard over mid-workload
  // must deliver exactly what a single-copy durable runtime delivers for the
  // same input: identical per-partition sequences, end offsets, and
  // committed offsets. Replication and promotion are durability plumbing —
  // they must be invisible to the delivered stream.
  constexpr std::size_t kShards = 2;
  constexpr pubsub::PartitionId kPartitions = 4;
  constexpr int kMessages = 300;

  struct Outcome {
    std::vector<std::vector<std::string>> sequences = decltype(sequences)(kPartitions);
    std::vector<pubsub::Offset> committed = decltype(committed)(kPartitions, 0);
  };
  auto run = [&](FaultVfs* vfs, bool replicated) {
    runtime::RuntimeOptions options;
    options.shards = kShards;
    options.durable_vfs = vfs;
    options.replication_factor = replicated ? 2 : 1;
    runtime::ShardPool pool(options);
    runtime::ConcurrentBroker broker(&pool);
    pool.Start();
    pubsub::TopicConfig config;
    config.partitions = kPartitions;
    EXPECT_TRUE(broker.CreateTopic("t", config).ok());
    EXPECT_TRUE(broker.JoinGroup("g", "t", "m1").ok());

    common::Rng rng(23);
    for (int i = 0; i < kMessages; ++i) {
      if (replicated && i == kMessages / 2) {
        for (std::size_t s = 0; s < kShards; ++s) {
          EXPECT_TRUE(pool.FailoverShard(s).ok()) << pool.durable_status().message();
        }
      }
      pubsub::Message msg;
      msg.value = "v" + std::to_string(i);
      std::optional<pubsub::PartitionId> part;
      if (rng.Below(2) == 0) {
        msg.key = "user-" + std::to_string(rng.Below(32));
      } else {
        part = static_cast<pubsub::PartitionId>(rng.Below(kPartitions));
      }
      EXPECT_TRUE(broker.PublishSync("t", msg, part).ok()) << "message " << i;
    }
    Outcome out;
    for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
      const pubsub::Offset end = broker.EndOffset("t", p);
      broker.CommitOffset("g", p, end);
      auto batch = broker.Fetch("t", p, 0, kMessages);
      EXPECT_TRUE(batch.ok());
      if (batch.ok()) {
        for (const pubsub::StoredMessage& m : *batch) {
          out.sequences[p].push_back(m.message.value);
        }
      }
      out.committed[p] = broker.CommittedOffset("g", p);
    }
    pool.Quiesce();
    EXPECT_TRUE(pool.durable_status().ok()) << pool.durable_status().message();
    pool.Stop();
    return out;
  };

  FaultVfs baseline_vfs;
  FaultVfs replicated_vfs;
  const Outcome baseline = run(&baseline_vfs, /*replicated=*/false);
  const Outcome failed_over = run(&replicated_vfs, /*replicated=*/true);
  for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
    EXPECT_EQ(failed_over.sequences[p], baseline.sequences[p]) << "partition " << p;
    EXPECT_EQ(failed_over.committed[p], baseline.committed[p]) << "partition " << p;
  }
}

}  // namespace
}  // namespace wal
