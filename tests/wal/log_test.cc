// wal::Log: framing, segment rotation, recovery (torn tails, duplicates,
// gaps, sealed corruption), and sealed-prefix GC. All on FaultVfs so the
// corruption cases can edit raw bytes.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "wal/crc32c.h"
#include "wal/fault_vfs.h"
#include "wal/log.h"

namespace wal {
namespace {

using Record = std::pair<std::uint64_t, std::string>;

std::string SegmentName(std::uint64_t first_index) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "seg-%020llu.wal",
                static_cast<unsigned long long>(first_index));
  return buf;
}

// Opens `dir`, collecting every replayed record into `records`.
common::Result<std::unique_ptr<Log>> OpenCollecting(Vfs* vfs, const std::string& dir,
                                                    LogOptions options,
                                                    common::MetricsRegistry* metrics,
                                                    std::vector<Record>* records,
                                                    RecoveryStats* stats = nullptr) {
  return Log::Open(vfs, dir, options, metrics,
                   [records](std::uint64_t index, std::string_view payload) {
                     records->emplace_back(index, std::string(payload));
                     return common::Status::Ok();
                   },
                   stats);
}

TEST(Crc32cTest, KnownVectorAndExtension) {
  // RFC 3720 test vector: crc32c("123456789") == 0xe3069283.
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
  // Incremental computation matches one-shot.
  EXPECT_EQ(Crc32c("6789", Crc32c("12345")), Crc32c("123456789"));
  EXPECT_EQ(UnmaskCrc(MaskCrc(0xe3069283u)), 0xe3069283u);
}

TEST(WalLogTest, AppendReplayRoundTrip) {
  FaultVfs vfs;
  std::vector<std::string> payloads;
  {
    std::vector<Record> none;
    auto log = OpenCollecting(&vfs, "log", LogOptions{}, nullptr, &none);
    ASSERT_TRUE(log.ok());
    EXPECT_TRUE(none.empty());
    for (int i = 0; i < 50; ++i) {
      payloads.push_back("record-" + std::to_string(i) + std::string(i % 7, '#'));
      auto index = (*log)->Append(payloads.back());
      ASSERT_TRUE(index.ok());
      EXPECT_EQ(*index, static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ((*log)->next_index(), 50u);
  }
  std::vector<Record> records;
  RecoveryStats stats;
  auto log = OpenCollecting(&vfs, "log", LogOptions{}, nullptr, &records, &stats);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(records.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(records[i].first, i);
    EXPECT_EQ(records[i].second, payloads[i]);
  }
  EXPECT_EQ(stats.records_replayed, 50u);
  EXPECT_EQ(stats.torn_tail_bytes, 0u);
  EXPECT_EQ((*log)->next_index(), 50u);
}

TEST(WalLogTest, RotationSealsSegmentsContiguously) {
  FaultVfs vfs;
  LogOptions options;
  options.segment_bytes = 128;  // Frames are 16 + ~10 bytes; forces rotation.
  std::vector<Record> none;
  auto log = OpenCollecting(&vfs, "log", options, nullptr, &none);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE((*log)->Append("payload-" + std::to_string(i)).ok());
  }
  const auto segments = (*log)->Segments();
  ASSERT_GT(segments.size(), 2u);
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].first_index, expected);
    EXPECT_GE(segments[i].end_index, segments[i].first_index);
    EXPECT_EQ(segments[i].sealed, i + 1 < segments.size());
    expected = segments[i].end_index;
    EXPECT_TRUE(vfs.Exists("log/" + SegmentName(segments[i].first_index)));
  }
  EXPECT_EQ(expected, 40u);
  EXPECT_EQ((*log)->active_segment_first_index(), segments.back().first_index);

  // Reopen sees the same segment layout and all 40 records.
  log->reset();
  std::vector<Record> records;
  auto reopened = OpenCollecting(&vfs, "log", options, nullptr, &records);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(records.size(), 40u);
  EXPECT_EQ((*reopened)->Segments().size(), segments.size());
  EXPECT_EQ((*reopened)->next_index(), 40u);
}

TEST(WalLogTest, ReopenContinuesIndexSequence) {
  FaultVfs vfs;
  for (int round = 0; round < 3; ++round) {
    std::vector<Record> records;
    auto log = OpenCollecting(&vfs, "log", LogOptions{}, nullptr, &records);
    ASSERT_TRUE(log.ok());
    EXPECT_EQ(records.size(), static_cast<std::size_t>(10 * round));
    for (int i = 0; i < 10; ++i) {
      auto index = (*log)->Append("r");
      ASSERT_TRUE(index.ok());
      EXPECT_EQ(*index, static_cast<std::uint64_t>(10 * round + i));
    }
  }
}

TEST(WalLogTest, TornTailTruncatedAtLastValidFrame) {
  FaultVfs vfs;
  common::MetricsRegistry metrics;
  {
    std::vector<Record> none;
    auto log = OpenCollecting(&vfs, "log", LogOptions{}, nullptr, &none);
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*log)->Append("payload-" + std::to_string(i)).ok());
    }
  }
  std::string* raw = vfs.MutableContents("log/" + SegmentName(0));
  ASSERT_NE(raw, nullptr);
  const std::size_t intact = raw->size();
  raw->resize(intact - 3);  // Tear the last frame mid-payload.

  std::vector<Record> records;
  RecoveryStats stats;
  auto log = OpenCollecting(&vfs, "log", LogOptions{}, &metrics, &records, &stats);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(records.size(), 4u);  // Record 4 lost with the torn tail.
  EXPECT_EQ((*log)->next_index(), 4u);
  EXPECT_GT(stats.torn_tail_bytes, 0u);
  EXPECT_EQ(stats.torn_tail_frames, 1u);
  EXPECT_EQ(metrics.counter("wal.recovery.torn_tail_frames").value(), 1);
  EXPECT_EQ(metrics.counter("wal.recovery.rejected_segments").value(), 0);

  // The tail was physically truncated; appending resumes at index 4 and the
  // next recovery is clean.
  ASSERT_TRUE((*log)->Append("replacement-4").ok());
  log->reset();
  records.clear();
  RecoveryStats clean;
  auto again = OpenCollecting(&vfs, "log", LogOptions{}, nullptr, &records, &clean);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records.back().second, "replacement-4");
  EXPECT_EQ(clean.torn_tail_bytes, 0u);
}

TEST(WalLogTest, DuplicateTailFrameInActiveSegmentTruncates) {
  FaultVfs vfs;
  std::string frame0;
  {
    std::vector<Record> none;
    auto log = OpenCollecting(&vfs, "log", LogOptions{}, nullptr, &none);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append("first").ok());
    frame0 = *vfs.MutableContents("log/" + SegmentName(0));  // Bytes of frame 0.
    ASSERT_TRUE((*log)->Append("second").ok());
  }
  // A retried write duplicated frame 0 at the tail (index 0 < expected 2).
  vfs.MutableContents("log/" + SegmentName(0))->append(frame0);

  std::vector<Record> records;
  RecoveryStats stats;
  auto log = OpenCollecting(&vfs, "log", LogOptions{}, nullptr, &records, &stats);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ((*log)->next_index(), 2u);
  EXPECT_EQ(stats.torn_tail_frames, 1u);
  EXPECT_EQ(stats.torn_tail_bytes, frame0.size());
}

TEST(WalLogTest, InteriorGapRejectsEvenInActiveSegment) {
  FaultVfs vfs;
  std::size_t frame1_begin = 0;
  std::size_t frame1_end = 0;
  {
    std::vector<Record> none;
    auto log = OpenCollecting(&vfs, "log", LogOptions{}, nullptr, &none);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append("first").ok());
    frame1_begin = vfs.MutableContents("log/" + SegmentName(0))->size();
    ASSERT_TRUE((*log)->Append("second").ok());
    frame1_end = vfs.MutableContents("log/" + SegmentName(0))->size();
    ASSERT_TRUE((*log)->Append("third").ok());
  }
  // Splice frame 1 out: frame 2 (index 2) now follows frame 0, expected 1.
  std::string* raw = vfs.MutableContents("log/" + SegmentName(0));
  raw->erase(frame1_begin, frame1_end - frame1_begin);

  common::MetricsRegistry metrics;
  std::vector<Record> records;
  auto log = OpenCollecting(&vfs, "log", LogOptions{}, &metrics, &records);
  EXPECT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), common::StatusCode::kInternal);
  EXPECT_EQ(metrics.counter("wal.recovery.rejected_segments").value(), 1);
  // Nothing after the gap was replayed.
  EXPECT_EQ(records.size(), 1u);
}

TEST(WalLogTest, SealedSegmentCorruptionRejectsLoudly) {
  FaultVfs vfs;
  LogOptions options;
  options.segment_bytes = 64;
  {
    std::vector<Record> none;
    auto log = OpenCollecting(&vfs, "log", options, nullptr, &none);
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*log)->Append("payload-" + std::to_string(i)).ok());
    }
    ASSERT_GT((*log)->Segments().size(), 1u);
  }
  // Flip one payload byte in the first (sealed) segment.
  std::string* raw = vfs.MutableContents("log/" + SegmentName(0));
  ASSERT_NE(raw, nullptr);
  (*raw)[raw->size() - 1] ^= 0x01;

  common::MetricsRegistry metrics;
  std::vector<Record> records;
  auto log = OpenCollecting(&vfs, "log", options, &metrics, &records);
  EXPECT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), common::StatusCode::kInternal);
  EXPECT_EQ(metrics.counter("wal.recovery.rejected_segments").value(), 1);
}

TEST(WalLogTest, MissingSegmentInSequenceRejects) {
  FaultVfs vfs;
  LogOptions options;
  options.segment_bytes = 64;
  {
    std::vector<Record> none;
    auto log = OpenCollecting(&vfs, "log", options, nullptr, &none);
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*log)->Append("payload-" + std::to_string(i)).ok());
    }
    const auto segments = (*log)->Segments();
    ASSERT_GT(segments.size(), 2u);
    // Delete a middle sealed segment out from under the log.
    ASSERT_TRUE(vfs.Remove("log/" + SegmentName(segments[1].first_index)).ok());
  }
  std::vector<Record> records;
  auto log = OpenCollecting(&vfs, "log", options, nullptr, &records);
  EXPECT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), common::StatusCode::kInternal);
}

TEST(WalLogTest, StrayFileInWalDirRejects) {
  FaultVfs vfs;
  {
    std::vector<Record> none;
    auto log = OpenCollecting(&vfs, "log", LogOptions{}, nullptr, &none);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append("r").ok());
  }
  auto stray = vfs.OpenAppend("log/notes.txt");
  ASSERT_TRUE(stray.ok());
  std::vector<Record> records;
  auto log = OpenCollecting(&vfs, "log", LogOptions{}, nullptr, &records);
  EXPECT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), common::StatusCode::kInternal);
}

TEST(WalLogTest, DropSealedSegmentsBeforeNeverTouchesActiveOrPartialSegments) {
  FaultVfs vfs;
  common::MetricsRegistry metrics;
  LogOptions options;
  options.segment_bytes = 64;
  std::vector<Record> none;
  auto log = OpenCollecting(&vfs, "log", options, &metrics, &none);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*log)->Append("payload-" + std::to_string(i)).ok());
  }
  const auto before = (*log)->Segments();
  ASSERT_GT(before.size(), 3u);

  // An index inside segment 1 drops only segment 0.
  auto dropped = (*log)->DropSealedSegmentsBefore(before[1].first_index + 1);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 1u);
  EXPECT_FALSE(vfs.Exists("log/" + SegmentName(before[0].first_index)));
  EXPECT_TRUE(vfs.Exists("log/" + SegmentName(before[1].first_index)));

  // next_index covers everything, but the active segment must survive.
  dropped = (*log)->DropSealedSegmentsBefore((*log)->next_index());
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, before.size() - 2);
  const auto after = (*log)->Segments();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].first_index, before.back().first_index);
  EXPECT_EQ(metrics.counter("wal.gc.segments_dropped").value(),
            static_cast<std::int64_t>(before.size() - 1));

  // Appends continue and recovery replays only the surviving segment.
  ASSERT_TRUE((*log)->Append("tail").ok());
  log->reset();
  std::vector<Record> records;
  auto reopened = OpenCollecting(&vfs, "log", options, nullptr, &records);
  ASSERT_TRUE(reopened.ok());
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.front().first, before.back().first_index);
  EXPECT_EQ(records.back().second, "tail");
  EXPECT_EQ((*reopened)->next_index(), 21u);
}

TEST(WalLogReaderTest, ReaderStreamsAcrossRotationAndLiveTail) {
  FaultVfs vfs;
  LogOptions options;
  options.segment_bytes = 64;
  std::vector<Record> none;
  auto log = OpenCollecting(&vfs, "log", options, nullptr, &none);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE((*log)->Append("payload-" + std::to_string(i)).ok());
  }
  ASSERT_GT((*log)->Segments().size(), 2u);

  auto reader = (*log)->OpenReader(0);
  std::uint64_t index = 0;
  std::string payload;
  for (int i = 0; i < 12; ++i) {
    auto more = reader->Next(&index, &payload);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
    EXPECT_EQ(index, static_cast<std::uint64_t>(i));
    EXPECT_EQ(payload, "payload-" + std::to_string(i));
  }
  auto caught_up = reader->Next(&index, &payload);
  ASSERT_TRUE(caught_up.ok());
  EXPECT_FALSE(*caught_up);

  // The active segment grows under the open reader; Next picks it up.
  ASSERT_TRUE((*log)->Append("late").ok());
  auto more = reader->Next(&index, &payload);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  EXPECT_EQ(index, 12u);
  EXPECT_EQ(payload, "late");
}

TEST(WalLogReaderTest, OpenReaderPinsSealedSegmentsAgainstGc) {
  // Regression: GC used to honor DropSealedSegmentsBefore unconditionally, so
  // a sealed segment could vanish under an open reader's cursor — the
  // catch-up stream's next read became silent loss. Readers must pin.
  FaultVfs vfs;
  common::MetricsRegistry metrics;
  LogOptions options;
  options.segment_bytes = 64;
  std::vector<Record> none;
  auto log = OpenCollecting(&vfs, "log", options, &metrics, &none);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*log)->Append("payload-" + std::to_string(i)).ok());
  }
  const auto before = (*log)->Segments();
  ASSERT_GT(before.size(), 3u);

  auto reader = (*log)->OpenReader(0);
  auto dropped = (*log)->DropSealedSegmentsBefore((*log)->next_index());
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 0u) << "GC reclaimed a segment pinned by an open reader";
  EXPECT_GT(metrics.counter("wal.gc.segments_pinned").value(), 0);
  EXPECT_EQ((*log)->oldest_retained_index(), 0u);

  // Every record is still readable through the pinned prefix.
  std::uint64_t index = 0;
  std::string payload;
  for (int i = 0; i < 20; ++i) {
    auto more = reader->Next(&index, &payload);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    ASSERT_TRUE(*more);
    EXPECT_EQ(payload, "payload-" + std::to_string(i));
  }

  // Closing the reader releases the pin; the same GC call now reclaims.
  reader.reset();
  dropped = (*log)->DropSealedSegmentsBefore((*log)->next_index());
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, before.size() - 1);
  EXPECT_EQ((*log)->Segments().size(), 1u);
}

TEST(WalLogReaderTest, SlowestReaderGovernsTheGcClamp) {
  FaultVfs vfs;
  LogOptions options;
  options.segment_bytes = 64;
  std::vector<Record> none;
  auto log = OpenCollecting(&vfs, "log", options, nullptr, &none);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*log)->Append("r" + std::to_string(i)).ok());
  }
  auto slow = (*log)->OpenReader(0);
  auto fast = (*log)->OpenReader(0);
  std::uint64_t index = 0;
  std::string payload;
  while (true) {
    auto more = fast->Next(&index, &payload);
    ASSERT_TRUE(more.ok());
    if (!*more) {
      break;
    }
  }
  auto dropped = (*log)->DropSealedSegmentsBefore((*log)->next_index());
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 0u);  // The slow reader at index 0 pins everything.

  slow.reset();
  dropped = (*log)->DropSealedSegmentsBefore((*log)->next_index());
  ASSERT_TRUE(dropped.ok());
  EXPECT_GT(*dropped, 0u);  // The caught-up reader pins nothing sealed.
}

TEST(WalLogReaderTest, OpenReaderBelowRetainedPrefixClampsToOldest) {
  FaultVfs vfs;
  LogOptions options;
  options.segment_bytes = 64;
  std::vector<Record> none;
  auto log = OpenCollecting(&vfs, "log", options, nullptr, &none);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*log)->Append("r" + std::to_string(i)).ok());
  }
  auto dropped = (*log)->DropSealedSegmentsBefore((*log)->next_index());
  ASSERT_TRUE(dropped.ok());
  ASSERT_GT(*dropped, 0u);
  const std::uint64_t oldest = (*log)->oldest_retained_index();
  ASSERT_GT(oldest, 0u);

  // Asking for the reclaimed prefix yields the oldest retained record, not a
  // silent gap: the caller can compare next_index() to its request and
  // force-resync if the clamp is unacceptable.
  auto reader = (*log)->OpenReader(0);
  EXPECT_EQ(reader->next_index(), oldest);
  std::uint64_t index = 0;
  std::string payload;
  auto more = reader->Next(&index, &payload);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  EXPECT_EQ(index, oldest);
}

TEST(WalLogTest, ReplayErrorAbortsOpen) {
  FaultVfs vfs;
  {
    std::vector<Record> none;
    auto log = OpenCollecting(&vfs, "log", LogOptions{}, nullptr, &none);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append("r").ok());
  }
  auto log = Log::Open(&vfs, "log", LogOptions{}, nullptr,
                       [](std::uint64_t, std::string_view) {
                         return common::Status::Internal("replay refused");
                       });
  EXPECT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), common::StatusCode::kInternal);
}

TEST(WalLogTest, AppendFailsWhileCrashedAndResumesAfterRecovery) {
  FaultOptions fault;
  fault.crash_at_append = 3;  // Crash partway through the workload.
  FaultVfs vfs(fault);
  std::vector<Record> none;
  auto log = OpenCollecting(&vfs, "log", LogOptions{}, nullptr, &none);
  ASSERT_TRUE(log.ok());
  int acked = 0;
  for (int i = 0; i < 10; ++i) {
    if ((*log)->Append("payload-" + std::to_string(i)).ok()) {
      ++acked;
    }
  }
  EXPECT_TRUE(vfs.crashed());
  EXPECT_LT(acked, 10);

  vfs.Restart();
  std::vector<Record> records;
  auto recovered = OpenCollecting(&vfs, "log", LogOptions{}, nullptr, &records);
  ASSERT_TRUE(recovered.ok());
  // Every acked append was synced before being acked, so all survive. The
  // torn write may happen to persist its complete frame, in which case the
  // un-acked record also recovers — but never more than that.
  EXPECT_GE(records.size(), static_cast<std::size_t>(acked));
  EXPECT_LE(records.size(), static_cast<std::size_t>(acked) + 1);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].second, "payload-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace wal
