// PartitionJournal: op-log journaling and recovery for one PartitionLog —
// byte-identical state (including harness accounting) after replay, the
// retention-event callback contract, sealed-segment GC with snapshot
// supersession, and the offset-conservation regression across GC-then-recover.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "pubsub/log.h"
#include "pubsub/types.h"
#include "wal/fault_vfs.h"
#include "wal/partition_journal.h"

namespace wal {
namespace {

pubsub::Message Msg(const std::string& key, const std::string& value,
                    common::TimeMicros publish_time) {
  pubsub::Message m;
  m.key = key;
  m.value = value;
  m.publish_time = publish_time;
  return m;
}

// The state a recovered partition must reproduce exactly: retained messages,
// offsets, and every piece of harness accounting the invariant oracle reads.
void ExpectSameState(const pubsub::PartitionLog& recovered, const pubsub::PartitionLog& original) {
  EXPECT_EQ(recovered.first_offset(), original.first_offset());
  EXPECT_EQ(recovered.end_offset(), original.end_offset());
  EXPECT_EQ(recovered.gced(), original.gced());
  EXPECT_EQ(recovered.compacted_away(), original.compacted_away());
  EXPECT_EQ(recovered.last_compaction_horizon(), original.last_compaction_horizon());
  EXPECT_EQ(recovered.compact_end_offset(), original.compact_end_offset());
  ASSERT_EQ(recovered.entries().size(), original.entries().size());
  for (std::size_t i = 0; i < original.entries().size(); ++i) {
    EXPECT_EQ(recovered.entries()[i], original.entries()[i]) << "entry " << i;
  }
}

// The oracle's log-conservation equation: every allocated offset is retained
// or accounted to GC / compaction.
void ExpectConservation(const pubsub::PartitionLog& log) {
  EXPECT_EQ(log.size() + log.gced() + log.compacted_away(), log.end_offset());
}

TEST(PartitionJournalTest, AppendsRecoverIdentically) {
  FaultVfs vfs;
  pubsub::RetentionPolicy policy;
  pubsub::PartitionLog original(policy);
  {
    auto journal = PartitionJournal::Open(&vfs, "p0", PartitionJournalOptions{}, nullptr, &original);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 30; ++i) {
      original.Append(Msg("k" + std::to_string(i % 5), "v" + std::to_string(i), 100 * i));
    }
    ASSERT_TRUE((*journal)->status().ok());
  }
  pubsub::PartitionLog recovered(policy);
  auto journal = PartitionJournal::Open(&vfs, "p0", PartitionJournalOptions{}, nullptr, &recovered);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ((*journal)->recovery_stats().records_replayed, 30u);
  ExpectSameState(recovered, original);
  ExpectConservation(recovered);

  // New appends continue the offset sequence and journal normally.
  EXPECT_EQ(recovered.Append(Msg("k", "post-recovery", 99999)), 30u);
  ASSERT_TRUE((*journal)->status().ok());
}

TEST(PartitionJournalTest, MixedRetentionWorkloadRecoversIdentically) {
  FaultVfs vfs;
  pubsub::RetentionPolicy policy;
  policy.max_messages = 12;  // Size cap trims inside Append.
  policy.compacted = true;
  pubsub::PartitionLog original(policy);
  {
    auto journal = PartitionJournal::Open(&vfs, "p0", PartitionJournalOptions{}, nullptr, &original);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 20; ++i) {
      original.Append(Msg("k" + std::to_string(i % 3), "v" + std::to_string(i), 10 * i));
    }
    original.GcBefore(55);    // Time-based GC (some already size-capped away).
    original.Compact(120);    // Keeps newest-per-key below the horizon.
    for (int i = 20; i < 26; ++i) {
      original.Append(Msg("k" + std::to_string(i % 3), "v" + std::to_string(i), 10 * i));
    }
    original.Compact(200);
    original.Compact(200);    // Second pass with nothing to remove still journals.
    ASSERT_TRUE((*journal)->status().ok());
  }
  ExpectConservation(original);

  pubsub::PartitionLog recovered(policy);
  auto journal = PartitionJournal::Open(&vfs, "p0", PartitionJournalOptions{}, nullptr, &recovered);
  ASSERT_TRUE(journal.ok());
  ExpectSameState(recovered, original);
  ExpectConservation(recovered);
}

// Satellite: the retention callback is a stable contract — exact kinds,
// horizons, post-event first offsets, and removal counts, with compaction
// firing even when it removes nothing (its bookkeeping still advances).
TEST(PartitionJournalTest, RetentionCallbackReportsExactEvents) {
  pubsub::RetentionPolicy policy;
  policy.max_messages = 3;
  pubsub::PartitionLog log(policy);
  std::vector<pubsub::RetentionEvent> events;
  log.set_retention_callback([&](const pubsub::RetentionEvent& e) { events.push_back(e); });

  std::vector<pubsub::StoredMessage> appended;
  log.set_append_callback([&](const pubsub::StoredMessage& m) { appended.push_back(m); });

  for (int i = 0; i < 5; ++i) {
    log.Append(Msg("k" + std::to_string(i), "v", 10 * i));
  }
  // Appends 3 and 4 each tripped the size cap by one message.
  ASSERT_EQ(appended.size(), 5u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, pubsub::RetentionEvent::Kind::kSizeCap);
  EXPECT_EQ(events[0].first_offset, 1u);
  EXPECT_EQ(events[0].removed, 1u);
  EXPECT_EQ(events[1].first_offset, 2u);
  // The append callback fired before its size-cap trim: the journal saw the
  // ops in execution order.
  EXPECT_EQ(appended[3].offset, 3u);

  log.GcBefore(25);  // Drops offset 2 (t=20) but not 3 (t=30).
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2].kind, pubsub::RetentionEvent::Kind::kGcBefore);
  EXPECT_EQ(events[2].horizon, 25);
  EXPECT_EQ(events[2].first_offset, 3u);
  EXPECT_EQ(events[2].removed, 1u);

  log.GcBefore(25);  // Nothing left to drop: no event.
  ASSERT_EQ(events.size(), 3u);

  log.Compact(5);  // Removes nothing (all keys distinct) but still fires.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[3].kind, pubsub::RetentionEvent::Kind::kCompact);
  EXPECT_EQ(events[3].horizon, 5);
  EXPECT_EQ(events[3].removed, 0u);

  // Detaching (what ~PartitionJournal does) stops the stream.
  log.set_retention_callback(nullptr);
  log.set_append_callback(nullptr);
  log.Append(Msg("k", "v", 1000));
  log.GcBefore(2000);
  EXPECT_EQ(events.size(), 4u);
  EXPECT_EQ(appended.size(), 5u);
}

TEST(PartitionJournalTest, SegmentGcDropsSealedPrefixAndRecoveryStaysExact) {
  FaultVfs vfs;
  common::MetricsRegistry metrics;
  PartitionJournalOptions options;
  options.log.segment_bytes = 256;  // Force frequent rotation.
  pubsub::RetentionPolicy policy;
  pubsub::PartitionLog original(policy);
  {
    auto journal = PartitionJournal::Open(&vfs, "p0", options, &metrics, &original);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 120; ++i) {
      original.Append(Msg("key-" + std::to_string(i), "value-" + std::to_string(i), 10 * i));
    }
    const std::size_t segments_before = (*journal)->wal_log().Segments().size();
    ASSERT_GT(segments_before, 4u);

    // GC everything before t=1000 (offsets 0..99). The retention event
    // triggers auto segment GC: sealed segments holding only dropped appends
    // go away, superseded by a snapshot record.
    EXPECT_EQ(original.GcBefore(1000), 100u);
    ASSERT_TRUE((*journal)->status().ok());
    EXPECT_LT((*journal)->wal_log().Segments().size(), segments_before);
    EXPECT_GT(metrics.counter("wal.gc.segments_dropped").value(), 0);
  }
  ExpectConservation(original);

  pubsub::PartitionLog recovered(policy);
  auto journal = PartitionJournal::Open(&vfs, "p0", options, &metrics, &recovered);
  ASSERT_TRUE(journal.ok()) << journal.status().message();
  ExpectSameState(recovered, original);
  ExpectConservation(recovered);

  // And a second GC + recovery round on the recovered instance.
  recovered.Append(Msg("late", "v", 5000));
  EXPECT_EQ(recovered.GcBefore(1100), 10u);
  ASSERT_TRUE((*journal)->status().ok());
  journal->reset();
  pubsub::PartitionLog recovered2(policy);
  auto journal2 = PartitionJournal::Open(&vfs, "p0", options, &metrics, &recovered2);
  ASSERT_TRUE(journal2.ok()) << journal2.status().message();
  ExpectSameState(recovered2, recovered);
  ExpectConservation(recovered2);
}

// Satellite regression: the oracle's offset-conservation invariant must hold
// on a stack that GC'd wal segments and then recovered — the snapshot record
// has to carry the accounting the dropped segments used to prove.
TEST(PartitionJournalTest, OffsetConservationHoldsAcrossGcThenRecover) {
  FaultVfs vfs;
  PartitionJournalOptions options;
  options.log.segment_bytes = 200;
  pubsub::RetentionPolicy policy;
  policy.max_messages = 16;
  policy.compacted = true;

  pubsub::PartitionLog original(policy);
  {
    auto journal = PartitionJournal::Open(&vfs, "p0", options, nullptr, &original);
    ASSERT_TRUE(journal.ok());
    for (int round = 0; round < 6; ++round) {
      for (int i = 0; i < 20; ++i) {
        const int n = 20 * round + i;
        original.Append(Msg("k" + std::to_string(n % 4), "v" + std::to_string(n), 10 * n));
      }
      original.GcBefore(10 * 20 * round);
      original.Compact(10 * (20 * round + 10));
      ASSERT_TRUE((*journal)->status().ok());
      ExpectConservation(original);
    }
  }
  pubsub::PartitionLog recovered(policy);
  auto journal = PartitionJournal::Open(&vfs, "p0", options, nullptr, &recovered);
  ASSERT_TRUE(journal.ok()) << journal.status().message();
  ExpectSameState(recovered, original);
  ExpectConservation(recovered);
  EXPECT_EQ(recovered.size() + recovered.gced() + recovered.compacted_away(),
            recovered.end_offset());
}

TEST(PartitionJournalTest, ReplayDoesNotReJournal) {
  FaultVfs vfs;
  pubsub::RetentionPolicy policy;
  std::uint64_t wal_records = 0;
  {
    pubsub::PartitionLog log(policy);
    auto journal = PartitionJournal::Open(&vfs, "p0", PartitionJournalOptions{}, nullptr, &log);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 10; ++i) {
      log.Append(Msg("k", "v", i));
    }
    log.GcBefore(5);
    wal_records = (*journal)->wal_log().next_index();
  }
  for (int round = 0; round < 3; ++round) {
    pubsub::PartitionLog log(policy);
    auto journal = PartitionJournal::Open(&vfs, "p0", PartitionJournalOptions{}, nullptr, &log);
    ASSERT_TRUE(journal.ok());
    // Reopening must not append anything: replay runs with callbacks detached.
    EXPECT_EQ((*journal)->wal_log().next_index(), wal_records) << "round " << round;
  }
}

TEST(PartitionJournalTest, WriteFailureGoesLoudlySticky) {
  FaultVfs vfs;
  common::MetricsRegistry metrics;
  pubsub::RetentionPolicy policy;
  pubsub::PartitionLog log(policy);
  auto journal = PartitionJournal::Open(&vfs, "p0", PartitionJournalOptions{}, &metrics, &log);
  ASSERT_TRUE(journal.ok());
  log.Append(Msg("k", "v", 1));
  ASSERT_TRUE((*journal)->status().ok());

  vfs.Crash();
  log.Append(Msg("k", "lost", 2));  // The callback's wal append fails.
  EXPECT_FALSE((*journal)->status().ok());
  EXPECT_EQ((*journal)->status().code(), common::StatusCode::kUnavailable);
  EXPECT_GE(metrics.counter("wal.journal.append_errors").value(), 1);

  // The first failure is sticky even after the vfs heals.
  vfs.Restart();
  log.Append(Msg("k", "v3", 3));
  EXPECT_FALSE((*journal)->status().ok());
}

TEST(PartitionJournalTest, SnapshotEndOffsetMismatchFailsRecovery) {
  FaultVfs vfs;
  PartitionJournalOptions options;
  options.log.segment_bytes = 200;
  pubsub::RetentionPolicy policy;
  {
    pubsub::PartitionLog log(policy);
    auto journal = PartitionJournal::Open(&vfs, "p0", options, nullptr, &log);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 60; ++i) {
      log.Append(Msg("k" + std::to_string(i), "v", 10 * i));
    }
    log.GcBefore(400);  // Drops 40 messages; segment GC writes a snapshot.
    ASSERT_TRUE((*journal)->status().ok());
    ASSERT_GT((*journal)->wal_log().Segments().size(), 1u);
  }
  // Delete the earliest remaining segment. The wal layer must tolerate a
  // missing segment *prefix* (that is what legitimate GC leaves behind), so
  // this loss is only detectable by the snapshot record's first/end offset
  // cross-checks — recovery must fail loudly, not absorb it.
  auto paths = vfs.Paths();
  ASSERT_GT(paths.size(), 1u);
  ASSERT_TRUE(vfs.Remove(paths.front()).ok());
  pubsub::PartitionLog recovered(policy);
  auto journal = PartitionJournal::Open(&vfs, "p0", options, nullptr, &recovered);
  EXPECT_FALSE(journal.ok());
  EXPECT_EQ(journal.status().code(), common::StatusCode::kInternal);
}

}  // namespace
}  // namespace wal
