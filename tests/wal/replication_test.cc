// Leader–follower WAL replication: live-tail shipping, catch-up streams,
// force-resync after GC outruns a follower, follower crash/restart, quorum
// ack accounting, and the oracle-checked promotion contract
// (FailoverController). All over the deterministic sim network with nonzero
// latency/jitter so frames reorder and drop like they would in production.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "oracle/invariant_oracle.h"
#include "pubsub/broker.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "wal/broker_journal.h"
#include "wal/fault_vfs.h"
#include "wal/log.h"
#include "wal/replication/catch_up_syncer.h"
#include "wal/replication/failover_controller.h"
#include "wal/replication/replica_set.h"
#include "wal/replication/wal_shipper.h"

namespace wal {
namespace replication {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

common::Status NoopReplay(std::uint64_t, std::string_view) { return common::Status::Ok(); }

// One leader log + N followers over a jittery network. Each follower gets
// its own FaultVfs so crashes are per-process, like real nodes.
class WalReplicationTest : public ::testing::Test {
 protected:
  WalReplicationTest() : net_(&sim_, {.base = 200, .jitter = 300}) {}

  ReplicationOptions Options(std::size_t factor) {
    ReplicationOptions options;
    options.replication_factor = factor;
    options.log_options = [this](const std::string&) { return log_options_; };
    return options;
  }

  void OpenLeader(std::size_t factor = 2) {
    auto log = Log::Open(&leader_vfs_, "leader/log", log_options_, &metrics_, NoopReplay);
    ASSERT_TRUE(log.ok());
    leader_log_ = std::move(log.value());
    shipper_ = std::make_unique<WalShipper>(&sim_, &net_, "leader", &metrics_, Options(factor));
  }

  CatchUpSyncer* AddFollower(const std::string& name, std::size_t factor = 2) {
    followers_vfs_.push_back(std::make_unique<FaultVfs>());
    followers_.push_back(std::make_unique<CatchUpSyncer>(&sim_, &net_, name,
                                                         followers_vfs_.back().get(), name,
                                                         &metrics_, Options(factor)));
    shipper_->AddFollower(followers_.back().get());
    return followers_.back().get();
  }

  void AppendN(int n, const std::string& prefix = "r") {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(leader_log_->Append(prefix + std::to_string(appended_++)).ok());
    }
  }

  void Settle() { sim_.RunUntil(sim_.Now() + 1 * kSec); }

  sim::Simulator sim_{17};
  sim::Network net_;
  common::MetricsRegistry metrics_;
  LogOptions log_options_;

  FaultVfs leader_vfs_;
  std::unique_ptr<Log> leader_log_;
  std::unique_ptr<WalShipper> shipper_;
  std::vector<std::unique_ptr<FaultVfs>> followers_vfs_;
  std::vector<std::unique_ptr<CatchUpSyncer>> followers_;
  int appended_ = 0;
};

TEST_F(WalReplicationTest, LiveTailShipsEveryAppendAndAcksBack) {
  OpenLeader();
  CatchUpSyncer* f = AddFollower("f1");
  shipper_->Track("log", leader_log_.get());

  AppendN(20);
  Settle();
  EXPECT_EQ(f->DurableNextIndex("log"), 20u);
  EXPECT_EQ(shipper_->QuorumAckedNext("log"), 20u);  // RF 2: quorum is the pair.
  EXPECT_GE(metrics_.counter("wal.repl.frames_shipped").value(), 20);
  EXPECT_GE(metrics_.counter("wal.repl.frames_applied").value(), 20);
}

TEST_F(WalReplicationTest, LateJoinerCatchesUpViaStream) {
  OpenLeader();
  shipper_->Track("log", leader_log_.get());
  AppendN(50);

  CatchUpSyncer* late = AddFollower("f1");  // Registration probes and streams.
  Settle();
  EXPECT_EQ(late->DurableNextIndex("log"), 50u);
  EXPECT_GE(metrics_.counter("wal.repl.streams_opened").value(), 1);
  EXPECT_EQ(metrics_.counter("wal.repl.force_resyncs").value(), 0);
}

TEST_F(WalReplicationTest, HealedPartitionRecoversThroughCatchUpRequest) {
  OpenLeader();
  CatchUpSyncer* f = AddFollower("f1");
  shipper_->Track("log", leader_log_.get());
  AppendN(5);
  Settle();
  ASSERT_EQ(f->DurableNextIndex("log"), 5u);

  net_.Partition("leader", "f1");
  AppendN(30);  // Dropped on the floor mid-partition.
  Settle();
  EXPECT_EQ(f->DurableNextIndex("log"), 5u);

  net_.Heal("leader", "f1");
  AppendN(1);  // The first post-heal frame exposes the gap.
  Settle();
  EXPECT_EQ(f->DurableNextIndex("log"), 36u);
  EXPECT_GE(metrics_.counter("wal.repl.catch_up_requests").value(), 1);
}

TEST_F(WalReplicationTest, GcOutrunningFollowerForcesResync) {
  log_options_.segment_bytes = 64;  // Rotate often so GC has prefix to drop.
  OpenLeader();
  CatchUpSyncer* f = AddFollower("f1");
  shipper_->Track("log", leader_log_.get());
  AppendN(4);
  Settle();
  ASSERT_EQ(f->DurableNextIndex("log"), 4u);

  net_.Partition("leader", "f1");
  AppendN(40);
  // Reclaim the sealed prefix while the follower is dark: its cursor (4) now
  // points below the leader's oldest retained record.
  auto dropped = leader_log_->DropSealedSegmentsBefore(leader_log_->next_index());
  ASSERT_TRUE(dropped.ok());
  ASSERT_GT(*dropped, 0u);
  ASSERT_GT(leader_log_->oldest_retained_index(), 4u);

  net_.Heal("leader", "f1");
  AppendN(1);
  Settle();
  // The follower's copy was replaced wholesale with the leader's segments.
  EXPECT_EQ(f->DurableNextIndex("log"), 45u);
  EXPECT_GE(metrics_.counter("wal.repl.force_resyncs").value(), 1);
  // Byte-for-byte: the snapshot starts at the leader's retained prefix, so
  // the follower honestly reports the hole instead of faking continuity.
  const std::uint64_t oldest = leader_log_->oldest_retained_index();
  const std::string name = Log::SegmentFileName(oldest);
  std::string* leader_seg = leader_vfs_.MutableContents("leader/log/" + name);
  std::string* follower_seg = followers_vfs_[0]->MutableContents("f1/log/" + name);
  ASSERT_NE(leader_seg, nullptr);
  ASSERT_NE(follower_seg, nullptr);
  EXPECT_EQ(*leader_seg, *follower_seg);
}

TEST_F(WalReplicationTest, FollowerCrashRestartResumesFromDurableCursor) {
  OpenLeader();
  CatchUpSyncer* f = AddFollower("f1");
  shipper_->Track("log", leader_log_.get());
  AppendN(10);
  Settle();
  ASSERT_EQ(f->DurableNextIndex("log"), 10u);

  net_.SetUp("f1", false);
  followers_vfs_[0]->Crash();
  f->Crash();
  AppendN(25);
  Settle();

  followers_vfs_[0]->Restart();
  net_.SetUp("f1", true);
  ASSERT_TRUE(f->Restart().ok());
  Settle();
  // Every pre-crash record was synced before its ack, so the follower
  // resumes at 10 and streams the missed 25.
  EXPECT_EQ(f->DurableNextIndex("log"), 35u);
  EXPECT_TRUE(f->status().ok()) << f->status().ToString();
}

TEST_F(WalReplicationTest, QuorumAckedNextTracksTheMajorityCursor) {
  OpenLeader(/*factor=*/3);
  AddFollower("f1", 3);
  AddFollower("f2", 3);
  shipper_->Track("log", leader_log_.get());

  AppendN(10);
  Settle();
  ASSERT_EQ(shipper_->QuorumAckedNext("log"), 10u);  // All three aligned.

  // One follower dark: quorum (2 of 3) still advances on leader + f1.
  net_.SetUp("f2", false);
  AppendN(10);
  Settle();
  EXPECT_EQ(shipper_->QuorumAckedNext("log"), 20u);

  // Both followers dark: the quorum cursor freezes even as the leader runs
  // ahead — exactly the prefix a failover is allowed to lose nothing of.
  net_.SetUp("f1", false);
  AppendN(10);
  Settle();
  EXPECT_EQ(leader_log_->next_index(), 30u);
  EXPECT_EQ(shipper_->QuorumAckedNext("log"), 20u);
}

TEST_F(WalReplicationTest, PromotionPicksMostCaughtUpAndPreservesQuorumPrefix) {
  OpenLeader(/*factor=*/3);
  CatchUpSyncer* f1 = AddFollower("f1", 3);
  CatchUpSyncer* f2 = AddFollower("f2", 3);
  shipper_->Track("log", leader_log_.get());

  AppendN(5);
  Settle();
  net_.SetUp("f2", false);  // f2 stalls at 5.
  AppendN(15);
  Settle();
  ASSERT_EQ(f1->DurableNextIndex("log"), 20u);
  ASSERT_EQ(f2->DurableNextIndex("log"), 5u);
  const std::uint64_t acked = shipper_->QuorumAckedNext("log");
  ASSERT_EQ(acked, 20u);

  // Leader dies; the policy must pick f1 (20 > 5).
  net_.SetUp("leader", false);
  leader_vfs_.Crash();
  auto picked = FailoverController::PickMostCaughtUp({f1, f2});
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ(*picked, f1);

  // Forensic oracle: the promoted copy holds every quorum-acked record and
  // nothing the old leader never had.
  leader_vfs_.Restart();
  f1->ReleaseLogs();
  auto check = FailoverController::CheckPromotion(&leader_vfs_, "leader", followers_vfs_[0].get(),
                                                  "f1", {"log"}, {{"log", acked}});
  EXPECT_TRUE(check.ok()) << check.violations.front().second;
  EXPECT_EQ(check.acked_records_lost, 0u);
  EXPECT_EQ(check.phantom_records, 0u);
  EXPECT_EQ(check.payload_mismatches, 0u);
}

TEST_F(WalReplicationTest, PickMostCaughtUpSkipsCrashedFollowers) {
  OpenLeader(/*factor=*/3);
  CatchUpSyncer* f1 = AddFollower("f1", 3);
  CatchUpSyncer* f2 = AddFollower("f2", 3);
  shipper_->Track("log", leader_log_.get());
  AppendN(10);
  Settle();

  f1->Crash();  // The longest copy is dead; policy must fall back to f2.
  auto picked = FailoverController::PickMostCaughtUp({f1, f2});
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ(*picked, f2);

  f2->Crash();
  auto none = FailoverController::PickMostCaughtUp({f1, f2});
  EXPECT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), common::StatusCode::kUnavailable);
}

TEST_F(WalReplicationTest, CheckPromotionDetectsAckedLossAndPhantoms) {
  OpenLeader(/*factor=*/3);
  CatchUpSyncer* f1 = AddFollower("f1", 3);
  CatchUpSyncer* f2 = AddFollower("f2", 3);
  shipper_->Track("log", leader_log_.get());
  AppendN(5);
  Settle();
  net_.SetUp("f2", false);
  AppendN(15);
  Settle();
  ASSERT_EQ(f1->DurableNextIndex("log"), 20u);
  ASSERT_EQ(f2->DurableNextIndex("log"), 5u);
  f1->ReleaseLogs();
  f2->ReleaseLogs();

  // Promoting the stale follower against an acked cursor of 20 is a loss the
  // oracle must call out, not paper over.
  auto lost = FailoverController::CheckPromotion(&leader_vfs_, "leader", followers_vfs_[1].get(),
                                                 "f2", {"log"}, {{"log", 20}});
  EXPECT_FALSE(lost.ok());
  EXPECT_EQ(lost.acked_records_lost, 15u);
  ASSERT_FALSE(lost.violations.empty());
  EXPECT_EQ(lost.violations.front().first, "failover-acked-prefix");

  // A "promoted" copy longer than the old leader's durable log means the
  // failover exposed records the old leader never acked having: phantoms.
  auto phantom = FailoverController::CheckPromotion(followers_vfs_[1].get(), "f2",
                                                    followers_vfs_[0].get(), "f1", {"log"}, {});
  EXPECT_FALSE(phantom.ok());
  EXPECT_EQ(phantom.phantom_records, 15u);
  bool saw_containment = false;
  for (const auto& [invariant, detail] : phantom.violations) {
    saw_containment |= invariant == "failover-snapshot-containment";
  }
  EXPECT_TRUE(saw_containment);

  // Violations feed the invariant oracle like any internal check.
  oracle::InvariantOracle oracle(&sim_);
  for (const auto& [invariant, detail] : lost.violations) {
    oracle.ReportExternalViolation(invariant, detail);
  }
  EXPECT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.violations().front().invariant, "failover-acked-prefix");
}

// -- ReplicaSet: the packaged form the runtime uses ---------------------------

TEST(ReplicaSetTest, JournalAttachShipsAllLogsAndPromoteRecoversState) {
  sim::Simulator sim(7);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  common::MetricsRegistry metrics;
  FaultVfs vfs;

  pubsub::Broker broker(&sim, &net, "b0");
  auto journal = BrokerJournal::Open(&vfs, "shard-0", BrokerJournalOptions{}, &metrics, &broker);
  ASSERT_TRUE(journal.ok());

  ReplicationOptions ropts;
  ropts.replication_factor = 2;
  ReplicaSet set(&sim, &vfs, "shard-0", "repl-0", &metrics, ropts);
  set.AttachLeader(journal->get());
  ASSERT_TRUE(set.attached());

  // Topic created after attach: the journal's log-created callback must
  // bring the new partition logs under replication automatically.
  ASSERT_TRUE((*journal)->CreateTopic("t", {.partitions = 2}).ok());
  std::vector<pubsub::Offset> ends(2, 0);
  for (int i = 0; i < 40; ++i) {
    auto r = broker.Publish("t", pubsub::Message{"", "v" + std::to_string(i), 0},
                            static_cast<pubsub::PartitionId>(i % 2));
    ASSERT_TRUE(r.ok());
    ends[r->partition] = r->offset + 1;
  }
  sim.RunUntil(sim.Now() + 1 * kMs);  // Flush the zero-latency frames.

  const auto acked = set.QuorumAckedNext();
  ASSERT_EQ(acked.size(), 3u);  // meta + 2 partition logs.
  for (const auto& [id, next] : acked) {
    EXPECT_GT(next, 0u) << id;
  }

  // Leader crash → promote → reopen the journal at the promoted root. The
  // replay must reconstruct the topic and every message.
  vfs.Crash();
  auto promoted = set.Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  vfs.Restart();

  pubsub::Broker recovered(&sim, &net, "b0r");
  auto journal2 =
      BrokerJournal::Open(&vfs, *promoted, BrokerJournalOptions{}, &metrics, &recovered);
  ASSERT_TRUE(journal2.ok()) << journal2.status().ToString();
  ASSERT_TRUE(recovered.HasTopic("t"));
  for (pubsub::PartitionId p = 0; p < 2; ++p) {
    EXPECT_EQ(recovered.EndOffset("t", p), ends[p]) << "partition " << p;
  }
  EXPECT_GE(metrics.counter("wal.repl.promotions").value(), 1);
}

TEST(ReplicaSetTest, PromoteWithNoLiveFollowerIsUnavailable) {
  sim::Simulator sim(9);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  common::MetricsRegistry metrics;
  FaultVfs vfs;

  pubsub::Broker broker(&sim, &net, "b0");
  auto journal = BrokerJournal::Open(&vfs, "shard-0", BrokerJournalOptions{}, &metrics, &broker);
  ASSERT_TRUE(journal.ok());

  ReplicationOptions ropts;
  ropts.replication_factor = 2;
  ReplicaSet set(&sim, &vfs, "shard-0", "repl-0", &metrics, ropts);
  set.AttachLeader(journal->get());
  for (CatchUpSyncer* f : set.followers()) {
    f->Crash();
  }
  auto promoted = set.Promote();
  EXPECT_FALSE(promoted.ok());
  EXPECT_EQ(promoted.status().code(), common::StatusCode::kUnavailable);
}

}  // namespace
}  // namespace replication
}  // namespace wal
