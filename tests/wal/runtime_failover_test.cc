// Runtime-level failover: ShardPool::FailoverShard promotes a shard's durable
// journal to its most caught-up WAL follower mid-traffic, rebuilds the
// shard's broker from the promoted tree, and re-points live subscriptions
// and publishers at the replacement. These tests drive that path through the
// public ConcurrentBroker facade.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "pubsub/types.h"
#include "runtime/concurrent_broker.h"
#include "runtime/shard_pool.h"
#include "runtime/subscription.h"
#include "wal/fault_vfs.h"

namespace wal {
namespace {

runtime::RuntimeOptions ReplicatedOptions(FaultVfs* vfs, std::size_t shards,
                                          std::size_t replication_factor) {
  runtime::RuntimeOptions options;
  options.shards = shards;
  options.event_driven = true;
  options.durable_vfs = vfs;
  options.replication_factor = replication_factor;
  return options;
}

TEST(RuntimeFailoverTest, FailoverRequiresAReplicatedDurableShard) {
  {
    runtime::ShardPool pool({.shards = 1});  // In-memory: nothing to promote.
    pool.Start();
    EXPECT_EQ(pool.FailoverShard(0).code(), common::StatusCode::kFailedPrecondition);
    pool.Stop();
  }
  {
    FaultVfs vfs;
    runtime::RuntimeOptions options;
    options.shards = 1;
    options.durable_vfs = &vfs;  // Durable but replication_factor 1.
    runtime::ShardPool pool(options);
    pool.Start();
    EXPECT_EQ(pool.FailoverShard(0).code(), common::StatusCode::kFailedPrecondition);
    pool.Stop();
  }
}

TEST(RuntimeFailoverTest, FailoverMidTrafficPreservesStreamsAndOrder) {
  constexpr pubsub::PartitionId kPartitions = 2;
  constexpr int kBefore = 100;
  constexpr int kAfter = 100;
  FaultVfs vfs;
  runtime::ShardPool pool(ReplicatedOptions(&vfs, 2, 2));
  runtime::ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = kPartitions}).ok());

  std::vector<std::unique_ptr<runtime::Subscription>> subs;
  for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
    subs.push_back(broker.Subscribe("t", p, 0));
    ASSERT_NE(subs.back(), nullptr);
  }
  for (int i = 0; i < kBefore; ++i) {
    ASSERT_TRUE(broker
                    .PublishSync("t", {"", "v" + std::to_string(i), 0},
                                 static_cast<pubsub::PartitionId>(i % kPartitions))
                    .ok());
  }

  // Both shards fail over while subscriptions hold parked waiters and the
  // consumer keeps draining afterwards. Every accepted record is in the
  // promoted WAL (the private replication transport runs inside the shard's
  // flush window), so the streams continue without a gap or duplicate.
  ASSERT_TRUE(pool.FailoverShard(0).ok()) << pool.durable_status().message();
  ASSERT_TRUE(pool.FailoverShard(1).ok()) << pool.durable_status().message();
  EXPECT_TRUE(pool.durable_status().ok());

  for (int i = kBefore; i < kBefore + kAfter; ++i) {
    ASSERT_TRUE(broker
                    .PublishSync("t", {"", "v" + std::to_string(i), 0},
                                 static_cast<pubsub::PartitionId>(i % kPartitions))
                    .ok());
  }

  for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
    constexpr std::size_t kPerPartition = (kBefore + kAfter) / kPartitions;
    std::vector<pubsub::StoredMessage> got;
    while (got.size() < kPerPartition) {
      if (subs[p]->PollBatch(&got, 64) == 0) {
        ASSERT_TRUE(subs[p]->Wait(/*timeout_us=*/10 * 1000 * 1000))
            << "partition " << p << " stalled at " << got.size();
      }
    }
    ASSERT_EQ(got.size(), kPerPartition);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].offset, static_cast<pubsub::Offset>(i)) << "partition " << p;
      EXPECT_EQ(got[i].message.value,
                "v" + std::to_string(i * kPartitions + static_cast<std::size_t>(p)));
    }
  }
  EXPECT_EQ(pool.metrics().counter("runtime.failovers").value(), 2);
  subs.clear();
  pool.Stop();
}

TEST(RuntimeFailoverTest, CommittedOffsetsAndTopicsSurviveFailover) {
  FaultVfs vfs;
  runtime::ShardPool pool(ReplicatedOptions(&vfs, 1, 2));
  runtime::ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  ASSERT_TRUE(broker.JoinGroup("g", "t", "m1").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(broker.PublishSync("t", {"", "v" + std::to_string(i), 0}, 0).ok());
  }
  broker.CommitOffset("g", 0, 20);
  pool.Quiesce();

  ASSERT_TRUE(pool.FailoverShard(0).ok()) << pool.durable_status().message();
  // The promoted journal replayed the topic, the log, and the commit.
  EXPECT_TRUE(broker.HasTopic("t"));
  EXPECT_EQ(broker.EndOffset("t", 0), 20u);
  EXPECT_EQ(broker.CommittedOffset("g", 0), 20u);

  // The failed-over shard keeps accepting traffic (offsets continue).
  auto r = broker.PublishSync("t", {"", "after", 0}, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->offset, 20u);
  pool.Stop();
}

TEST(RuntimeFailoverTest, SecondFailoverExhaustsFollowersLoudly) {
  // RF 2 has one follower: the first promotion retires it, the second must
  // fail loudly (kUnavailable from the replica set) instead of fabricating a
  // copy. The shard keeps serving from the current leader either way.
  FaultVfs vfs;
  runtime::ShardPool pool(ReplicatedOptions(&vfs, 1, 2));
  runtime::ConcurrentBroker broker(&pool);
  pool.Start();
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  ASSERT_TRUE(broker.PublishSync("t", {"", "v", 0}, 0).ok());
  pool.Quiesce();
  ASSERT_TRUE(pool.FailoverShard(0).ok());
  EXPECT_FALSE(pool.FailoverShard(0).ok());
  EXPECT_TRUE(pool.durable_status().ok());  // Failed promotion is not corruption.
  EXPECT_EQ(broker.EndOffset("t", 0), 1u);
  pool.Stop();
}

}  // namespace
}  // namespace wal
