// StoreJournal: MvccStore commits journal through the CDC observer hook and
// recovery replays them at their original versions, fast-forwarding the
// timestamp oracle so post-recovery commits never collide with history.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "storage/mvcc_store.h"
#include "wal/fault_vfs.h"
#include "wal/store_journal.h"

namespace wal {
namespace {

TEST(StoreJournalTest, CommitsRecoverAtOriginalVersions) {
  FaultVfs vfs;
  common::Version v_mixed = common::kNoVersion;
  common::Version v_latest = common::kNoVersion;
  {
    storage::MvccStore store;
    auto journal = StoreJournal::Open(&vfs, "store", LogOptions{}, nullptr, &store);
    ASSERT_TRUE(journal.ok());

    store.Apply("a", common::Mutation::Put("1"));
    store.Apply("b", common::Mutation::Put("2"));

    // A multi-key transaction: one commit record, several changes.
    storage::Transaction txn = store.Begin();
    txn.Put("a", "3");
    txn.Put("c", "4");
    txn.Delete("b");
    auto committed = store.Commit(std::move(txn));
    ASSERT_TRUE(committed.ok());
    v_mixed = *committed;

    v_latest = store.Apply("d", common::Mutation::Put("5"));
    ASSERT_TRUE((*journal)->status().ok());
  }

  storage::MvccStore recovered;
  auto journal = StoreJournal::Open(&vfs, "store", LogOptions{}, nullptr, &recovered);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ((*journal)->recovery_stats().records_replayed, 4u);

  EXPECT_EQ(recovered.LatestVersion(), v_latest);
  EXPECT_EQ(recovered.CommittedTxns(), 4u);
  EXPECT_EQ(*recovered.GetLatest("a"), "3");
  EXPECT_EQ(recovered.GetLatest("b").status().code(), common::StatusCode::kNotFound);
  EXPECT_EQ(*recovered.GetLatest("c"), "4");
  EXPECT_EQ(*recovered.GetLatest("d"), "5");

  // History recovered at the original versions: reading just below the mixed
  // commit still sees the pre-transaction state.
  EXPECT_EQ(*recovered.Get("a", v_mixed - 1), "1");
  EXPECT_EQ(*recovered.Get("b", v_mixed - 1), "2");
  EXPECT_EQ(recovered.Get("c", v_mixed - 1).status().code(), common::StatusCode::kNotFound);
  EXPECT_EQ(recovered.KeyVersion("a"), v_mixed);
}

TEST(StoreJournalTest, PostRecoveryCommitsAllocateFreshVersions) {
  FaultVfs vfs;
  common::Version last = common::kNoVersion;
  {
    storage::MvccStore store;
    auto journal = StoreJournal::Open(&vfs, "store", LogOptions{}, nullptr, &store);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 10; ++i) {
      last = store.Apply("k" + std::to_string(i), common::Mutation::Put("v"));
    }
  }
  storage::MvccStore recovered;
  auto journal = StoreJournal::Open(&vfs, "store", LogOptions{}, nullptr, &recovered);
  ASSERT_TRUE(journal.ok());
  // The oracle advanced past replayed history: a new commit's version is
  // strictly above everything recovered, and it journals like any other.
  const common::Version fresh = recovered.Apply("new", common::Mutation::Put("x"));
  EXPECT_GT(fresh, last);
  ASSERT_TRUE((*journal)->status().ok());

  journal->reset();
  storage::MvccStore again;
  auto journal2 = StoreJournal::Open(&vfs, "store", LogOptions{}, nullptr, &again);
  ASSERT_TRUE(journal2.ok());
  EXPECT_EQ(again.LatestVersion(), fresh);
  EXPECT_EQ(*again.GetLatest("new"), "x");
  EXPECT_EQ(again.CommittedTxns(), 11u);
}

TEST(StoreJournalTest, ReplayDoesNotNotifyObserversOrReJournal) {
  FaultVfs vfs;
  std::uint64_t wal_records = 0;
  {
    storage::MvccStore store;
    auto journal = StoreJournal::Open(&vfs, "store", LogOptions{}, nullptr, &store);
    ASSERT_TRUE(journal.ok());
    store.Apply("a", common::Mutation::Put("1"));
    store.Apply("b", common::Mutation::Put("2"));
    wal_records = (*journal)->wal_log().next_index();
  }
  storage::MvccStore recovered;
  std::vector<storage::CommitRecord> seen;
  recovered.AddCommitObserver([&](const storage::CommitRecord& r) { seen.push_back(r); });
  auto journal = StoreJournal::Open(&vfs, "store", LogOptions{}, nullptr, &recovered);
  ASSERT_TRUE(journal.ok());
  // Recovery is silent (downstreams replay their own journals) and must not
  // append replayed commits back into the wal.
  EXPECT_TRUE(seen.empty());
  EXPECT_EQ((*journal)->wal_log().next_index(), wal_records);

  // Live commits still reach both the observer and the journal.
  recovered.Apply("c", common::Mutation::Put("3"));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ((*journal)->wal_log().next_index(), wal_records + 1);
}

TEST(StoreJournalTest, DestroyedJournalStopsObservingWithoutDangling) {
  FaultVfs vfs;
  storage::MvccStore store;
  {
    auto journal = StoreJournal::Open(&vfs, "store", LogOptions{}, nullptr, &store);
    ASSERT_TRUE(journal.ok());
    store.Apply("a", common::Mutation::Put("1"));
  }
  // The journal is gone but its observer registration survives behind the
  // liveness flag: committing must not crash and must not journal.
  store.Apply("b", common::Mutation::Put("2"));

  storage::MvccStore recovered;
  auto journal = StoreJournal::Open(&vfs, "store", LogOptions{}, nullptr, &recovered);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(recovered.CommittedTxns(), 1u);  // Only "a" was journaled.
  EXPECT_EQ(recovered.GetLatest("b").status().code(), common::StatusCode::kNotFound);
}

TEST(StoreJournalTest, WriteFailureGoesSticky) {
  FaultVfs vfs;
  common::MetricsRegistry metrics;
  storage::MvccStore store;
  auto journal = StoreJournal::Open(&vfs, "store", LogOptions{}, &metrics, &store);
  ASSERT_TRUE(journal.ok());
  store.Apply("a", common::Mutation::Put("1"));
  ASSERT_TRUE((*journal)->status().ok());

  vfs.Crash();
  store.Apply("b", common::Mutation::Put("2"));
  EXPECT_FALSE((*journal)->status().ok());
  EXPECT_GE(metrics.counter("wal.journal.append_errors").value(), 1);
}

}  // namespace
}  // namespace wal
