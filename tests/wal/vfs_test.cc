// Vfs backends: PosixVfs smoke tests (real syscalls) and the FaultVfs fault
// model — torn writes at a scheduled append, failed fsyncs, short reads, and
// the durable-prefix semantics of crash/restart.
#include <gtest/gtest.h>

#include <string>

#include "wal/fault_vfs.h"
#include "wal/posix_vfs.h"
#include "wal/vfs.h"

namespace wal {
namespace {

std::string TempPath(const std::string& leaf) {
  return testing::TempDir() + "wal_vfs_test/" +
         testing::UnitTest::GetInstance()->current_test_info()->name() + "/" + leaf;
}

TEST(PosixVfsTest, AppendSyncReadRoundTrip) {
  PosixVfs vfs;
  const std::string dir = TempPath("d");
  ASSERT_TRUE(vfs.CreateDirs(dir).ok());
  const std::string path = dir + "/file";
  (void)vfs.Remove(path);  // TempDir persists across runs; start clean.

  auto file = vfs.OpenAppend(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());

  auto contents = ReadFileToString(vfs, path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello world");

  // Appending re-opens at the end.
  auto again = vfs.OpenAppend(path);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE((*again)->Append("!").ok());
  ASSERT_TRUE((*again)->Close().ok());
  EXPECT_EQ(*ReadFileToString(vfs, path), "hello world!");
}

TEST(PosixVfsTest, ListDirSortedRegularFilesOnly) {
  PosixVfs vfs;
  const std::string dir = TempPath("d");
  ASSERT_TRUE(vfs.CreateDirs(dir).ok());
  ASSERT_TRUE(vfs.CreateDirs(dir + "/subdir").ok());
  for (const char* name : {"b.wal", "a.wal", "c.wal"}) {
    auto f = vfs.OpenAppend(dir + "/" + name);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  auto names = vfs.ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a.wal", "b.wal", "c.wal"}));
}

TEST(PosixVfsTest, TruncateRemoveExists) {
  PosixVfs vfs;
  const std::string dir = TempPath("d");
  ASSERT_TRUE(vfs.CreateDirs(dir).ok());
  const std::string path = dir + "/file";
  auto f = vfs.OpenAppend(path);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("0123456789").ok());
  ASSERT_TRUE((*f)->Close().ok());

  EXPECT_TRUE(vfs.Exists(path));
  ASSERT_TRUE(vfs.Truncate(path, 4).ok());
  EXPECT_EQ(*ReadFileToString(vfs, path), "0123");
  ASSERT_TRUE(vfs.Remove(path).ok());
  EXPECT_FALSE(vfs.Exists(path));
  EXPECT_FALSE(vfs.OpenRead(path).ok());
}

TEST(FaultVfsTest, BehavesLikeAFilesystemWithoutFaults) {
  FaultVfs vfs;
  ASSERT_TRUE(vfs.CreateDirs("dir/nested").ok());
  auto f = vfs.OpenAppend("dir/nested/file");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("abc").ok());
  ASSERT_TRUE((*f)->Sync().ok());
  EXPECT_EQ(*ReadFileToString(vfs, "dir/nested/file"), "abc");

  // ListDir returns direct children only.
  auto g = vfs.OpenAppend("dir/top");
  ASSERT_TRUE(g.ok());
  auto names = vfs.ListDir("dir");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"top"}));
  EXPECT_EQ(*vfs.ListDir("dir/nested"), (std::vector<std::string>{"file"}));
}

TEST(FaultVfsTest, CrashAtAppendTearsTheWriteAndFailsEverythingUntilRestart) {
  FaultOptions options;
  options.seed = 7;
  options.crash_at_append = 2;  // Third append across all files.
  FaultVfs vfs(options);

  auto f = vfs.OpenAppend("f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("aaaa").ok());
  ASSERT_TRUE((*f)->Append("bbbb").ok());
  ASSERT_TRUE((*f)->Sync().ok());
  const auto torn = (*f)->Append("cccc");
  EXPECT_EQ(torn.code(), common::StatusCode::kUnavailable);
  EXPECT_TRUE(vfs.crashed());

  // Everything fails while crashed.
  EXPECT_EQ((*f)->Append("dddd").code(), common::StatusCode::kUnavailable);
  EXPECT_EQ((*f)->Sync().code(), common::StatusCode::kUnavailable);
  EXPECT_FALSE(vfs.OpenRead("f").ok());
  EXPECT_FALSE(vfs.OpenAppend("f").ok());

  vfs.Restart();
  EXPECT_FALSE(vfs.crashed());
  auto contents = ReadFileToString(vfs, "f");
  ASSERT_TRUE(contents.ok());
  // The torn append persisted a byte prefix of "cccc": 8..12 bytes total,
  // starting with the two intact appends.
  ASSERT_GE(contents->size(), 8u);
  ASSERT_LE(contents->size(), 12u);
  EXPECT_EQ(contents->substr(0, 8), "aaaabbbb");
  for (std::size_t i = 8; i < contents->size(); ++i) {
    EXPECT_EQ((*contents)[i], 'c');
  }
}

TEST(FaultVfsTest, CrashAtAppendIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    FaultOptions options;
    options.seed = seed;
    options.crash_at_append = 1;
    FaultVfs vfs(options);
    auto f = vfs.OpenAppend("f");
    EXPECT_TRUE((*f)->Append("first").ok());
    EXPECT_FALSE((*f)->Append("second-write").ok());
    vfs.Restart();
    return *ReadFileToString(vfs, "f");
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_EQ(run(42), run(42));
}

TEST(FaultVfsTest, LoseUnsyncedOnCrashKeepsDurablePrefix) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FaultOptions options;
    options.seed = seed;
    options.lose_unsynced_on_crash = true;
    FaultVfs vfs(options);
    auto f = vfs.OpenAppend("f");
    ASSERT_TRUE((*f)->Append("durable|").ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE((*f)->Append("maybe-lost").ok());
    vfs.Crash();
    vfs.Restart();
    auto contents = ReadFileToString(vfs, "f");
    ASSERT_TRUE(contents.ok());
    // The synced prefix always survives; the tail is a seeded prefix.
    ASSERT_GE(contents->size(), 8u) << "seed " << seed;
    EXPECT_EQ(contents->substr(0, 8), "durable|") << "seed " << seed;
    EXPECT_EQ(vfs.SyncedSize("f"), contents->size()) << "seed " << seed;
  }
}

TEST(FaultVfsTest, FailSyncProbabilityCountsFailures) {
  FaultOptions options;
  options.seed = 3;
  options.fail_sync_prob = 0.5;
  FaultVfs vfs(options);
  auto f = vfs.OpenAppend("f");
  int failed = 0;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE((*f)->Append("x").ok());
    if (!(*f)->Sync().ok()) {
      ++failed;
    }
  }
  EXPECT_GT(failed, 0);
  EXPECT_LT(failed, 64);
  EXPECT_EQ(vfs.failed_syncs(), static_cast<std::uint64_t>(failed));
  // A failed sync leaves the durable prefix where it was; a later successful
  // sync catches up.
  ASSERT_TRUE(ReadFileToString(vfs, "f").ok());
}

TEST(FaultVfsTest, ShortReadsNeverLoseBytesThroughTheReadLoop) {
  FaultOptions options;
  options.seed = 11;
  options.short_read_prob = 0.9;
  FaultVfs vfs(options);
  std::string payload;
  for (int i = 0; i < 1000; ++i) {
    payload += static_cast<char>('a' + i % 26);
  }
  auto f = vfs.OpenAppend("f");
  ASSERT_TRUE((*f)->Append(payload).ok());
  // The loop in ReadFileToString must reassemble the exact contents no
  // matter how reads fragment.
  auto contents = ReadFileToString(vfs, "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, payload);
}

TEST(FaultVfsTest, MutableContentsModelsOnDiskCorruption) {
  FaultVfs vfs;
  auto f = vfs.OpenAppend("f");
  ASSERT_TRUE((*f)->Append("0123456789").ok());
  ASSERT_TRUE((*f)->Sync().ok());
  std::string* raw = vfs.MutableContents("f");
  ASSERT_NE(raw, nullptr);
  (*raw)[3] = 'X';
  raw->resize(6);
  EXPECT_EQ(*ReadFileToString(vfs, "f"), "012X45");
  EXPECT_EQ(vfs.SyncedSize("f"), 6u);  // Durable prefix clamped to the new size.
  EXPECT_EQ(vfs.MutableContents("missing"), nullptr);
}

TEST(FaultVfsTest, RemoveAndTruncate) {
  FaultVfs vfs;
  auto f = vfs.OpenAppend("a/b");
  ASSERT_TRUE((*f)->Append("0123456789").ok());
  ASSERT_TRUE(vfs.Truncate("a/b", 4).ok());
  EXPECT_EQ(*ReadFileToString(vfs, "a/b"), "0123");
  ASSERT_TRUE(vfs.Remove("a/b").ok());
  EXPECT_FALSE(vfs.Exists("a/b"));
  EXPECT_EQ(vfs.Remove("a/b").code(), common::StatusCode::kNotFound);
  EXPECT_EQ(vfs.Truncate("a/b", 0).code(), common::StatusCode::kNotFound);
}

}  // namespace
}  // namespace wal
