#include "watch/knowledge.h"

#include <optional>

#include <gtest/gtest.h>

namespace watch {
namespace {

using common::KeyRange;
using common::Version;

// -- Window-set algebra ---------------------------------------------------------

TEST(WindowSetTest, UnionIntoEmpty) {
  WindowSet s = UnionWindow({}, {5, 10});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], (VersionWindow{5, 10}));
}

TEST(WindowSetTest, UnionDisjointKeepsSorted) {
  WindowSet s = UnionWindow({{10, 20}}, {30, 40});
  s = UnionWindow(s, {1, 3});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], (VersionWindow{1, 3}));
  EXPECT_EQ(s[1], (VersionWindow{10, 20}));
  EXPECT_EQ(s[2], (VersionWindow{30, 40}));
}

TEST(WindowSetTest, UnionMergesOverlap) {
  WindowSet s = UnionWindow({{10, 20}}, {15, 30});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], (VersionWindow{10, 30}));
}

TEST(WindowSetTest, UnionMergesAdjacent) {
  WindowSet s = UnionWindow({{10, 20}}, {21, 25});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], (VersionWindow{10, 25}));
}

TEST(WindowSetTest, UnionBridgesMultipleWindows) {
  WindowSet s = UnionWindow({{1, 3}, {10, 12}, {20, 22}}, {4, 19});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], (VersionWindow{1, 22}));
}

TEST(WindowSetTest, UnionEmptyWindowIsNoOp) {
  WindowSet s = UnionWindow({{1, 3}}, {10, 5});
  ASSERT_EQ(s.size(), 1u);
}

TEST(WindowSetTest, IntersectBasic) {
  WindowSet out = IntersectSets({{1, 10}, {20, 30}}, {{5, 25}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (VersionWindow{5, 10}));
  EXPECT_EQ(out[1], (VersionWindow{20, 25}));
}

TEST(WindowSetTest, IntersectDisjointIsEmpty) {
  EXPECT_TRUE(IntersectSets({{1, 5}}, {{6, 9}}).empty());
  EXPECT_TRUE(IntersectSets({}, {{1, 5}}).empty());
}

TEST(WindowSetTest, MaxOf) {
  EXPECT_EQ(MaxOf({{1, 5}, {7, 12}}), std::optional<Version>(12));
  EXPECT_EQ(MaxOf({}), std::nullopt);
}

// -- KnowledgeMap -----------------------------------------------------------------

TEST(KnowledgeMapTest, SnapshotCreatesPointWindow) {
  KnowledgeMap k;
  k.AddSnapshot(KeyRange{"a", "m"}, 10);
  EXPECT_TRUE(k.ServableAt(KeyRange{"a", "m"}, 10));
  EXPECT_FALSE(k.ServableAt(KeyRange{"a", "m"}, 9));
  EXPECT_FALSE(k.ServableAt(KeyRange{"a", "m"}, 11));
  EXPECT_FALSE(k.ServableAt(KeyRange{"a", "n"}, 10));  // Beyond known range.
}

TEST(KnowledgeMapTest, ProgressGrowsRectangle) {
  KnowledgeMap k;
  k.AddSnapshot(KeyRange{"a", "m"}, 10);
  k.ExtendTo(KeyRange{"a", "m"}, 15);
  for (Version v = 10; v <= 15; ++v) {
    EXPECT_TRUE(k.ServableAt(KeyRange{"a", "m"}, v)) << v;
  }
  EXPECT_EQ(k.MaxServableVersion(KeyRange{"a", "m"}), std::optional<Version>(15));
}

TEST(KnowledgeMapTest, ProgressWithoutSnapshotTeachesNothing) {
  KnowledgeMap k;
  k.ExtendTo(KeyRange{"a", "m"}, 15);
  EXPECT_FALSE(k.ServableAt(KeyRange{"a", "m"}, 15));
  EXPECT_EQ(k.MaxServableVersion(KeyRange{"a", "m"}), std::nullopt);
}

TEST(KnowledgeMapTest, ResyncCreatesSecondRectangle) {
  KnowledgeMap k;
  k.AddSnapshot(KeyRange{"a", "m"}, 10);
  k.ExtendTo(KeyRange{"a", "m"}, 12);
  // Gap (events 13..19 missed), then a new snapshot at 20.
  k.AddSnapshot(KeyRange{"a", "m"}, 20);
  k.ExtendTo(KeyRange{"a", "m"}, 25);
  // Old knowledge remains valid (immutability), the gap does not.
  EXPECT_TRUE(k.ServableAt(KeyRange{"a", "m"}, 11));
  EXPECT_FALSE(k.ServableAt(KeyRange{"a", "m"}, 15));
  EXPECT_TRUE(k.ServableAt(KeyRange{"a", "m"}, 22));
  auto windows = k.ServableWindows(KeyRange{"a", "m"});
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0], (VersionWindow{10, 12}));
  EXPECT_EQ(windows[1], (VersionWindow{20, 25}));
}

TEST(KnowledgeMapTest, DifferentRangesDifferentWindows) {
  KnowledgeMap k;
  k.AddSnapshot(KeyRange{"a", "g"}, 10);
  k.ExtendTo(KeyRange{"a", "g"}, 30);
  k.AddSnapshot(KeyRange{"g", "p"}, 20);
  k.ExtendTo(KeyRange{"g", "p"}, 25);
  // Individually servable at different windows...
  EXPECT_TRUE(k.ServableAt(KeyRange{"a", "g"}, 12));
  EXPECT_FALSE(k.ServableAt(KeyRange{"g", "p"}, 12));
  // ...the combined range only where the windows intersect: [20, 25].
  EXPECT_FALSE(k.ServableAt(KeyRange{"a", "p"}, 15));
  EXPECT_TRUE(k.ServableAt(KeyRange{"a", "p"}, 22));
  EXPECT_EQ(k.MaxServableVersion(KeyRange{"a", "p"}), std::optional<Version>(25));
}

TEST(KnowledgeMapTest, ForgetDropsRange) {
  KnowledgeMap k;
  k.AddSnapshot(KeyRange{"a", "z"}, 10);
  k.Forget(KeyRange{"g", "m"});
  EXPECT_TRUE(k.ServableAt(KeyRange{"a", "g"}, 10));
  EXPECT_FALSE(k.ServableAt(KeyRange{"g", "m"}, 10));
  EXPECT_FALSE(k.ServableAt(KeyRange{"a", "z"}, 10));
}

TEST(KnowledgeMapTest, RegionsIntrospection) {
  KnowledgeMap k;
  k.AddSnapshot(KeyRange{"a", "g"}, 5);
  k.AddSnapshot(KeyRange{"m", "t"}, 9);
  auto regions = k.Regions();
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].range, (KeyRange{"a", "g"}));
  EXPECT_EQ(regions[0].windows[0], (VersionWindow{5, 5}));
  EXPECT_EQ(regions[1].range, (KeyRange{"m", "t"}));
}

TEST(KnowledgeMapTest, PartialProgressSplitsKnowledge) {
  KnowledgeMap k;
  k.AddSnapshot(KeyRange{"a", "z"}, 10);
  k.ExtendTo(KeyRange{"a", "m"}, 20);  // Only the lower half advances.
  EXPECT_TRUE(k.ServableAt(KeyRange{"a", "m"}, 20));
  EXPECT_FALSE(k.ServableAt(KeyRange{"m", "z"}, 20));
  EXPECT_EQ(k.MaxServableVersion(KeyRange{"a", "z"}), std::optional<Version>(10));
}

// -- Stitching across watchers (Figure 5's green box at fleet scale) -----------------

TEST(KnowledgeStitchTest, StitchAcrossTwoWatchers) {
  KnowledgeMap w1;
  w1.AddSnapshot(KeyRange{"a", "m"}, 10);
  w1.ExtendTo(KeyRange{"a", "m"}, 30);
  KnowledgeMap w2;
  w2.AddSnapshot(KeyRange{"m", "z"}, 20);
  w2.ExtendTo(KeyRange{"m", "z"}, 40);

  // Neither watcher alone can serve [a, z)...
  EXPECT_EQ(w1.MaxServableVersion(KeyRange{"a", "z"}), std::nullopt);
  EXPECT_EQ(w2.MaxServableVersion(KeyRange{"a", "z"}), std::nullopt);
  // ...together they can, at any version in [20, 30].
  auto stitched = KnowledgeMap::StitchableWindows({&w1, &w2}, KeyRange{"a", "z"});
  ASSERT_EQ(stitched.size(), 1u);
  EXPECT_EQ(stitched[0], (VersionWindow{20, 30}));
  EXPECT_EQ(KnowledgeMap::MaxStitchableVersion({&w1, &w2}, KeyRange{"a", "z"}),
            std::optional<Version>(30));
}

TEST(KnowledgeStitchTest, OverlappingWatchersPoolWindows) {
  // Redundant coverage (the paper: "overlapping and redundant knowledge
  // regions for improved availability"): either watcher can cover the
  // overlap, so the union of their windows counts.
  KnowledgeMap w1;
  w1.AddSnapshot(KeyRange{"a", "p"}, 10);
  w1.ExtendTo(KeyRange{"a", "p"}, 20);
  KnowledgeMap w2;
  w2.AddSnapshot(KeyRange{"g", "z"}, 25);
  w2.ExtendTo(KeyRange{"g", "z"}, 35);

  // [g, p) is known over [10,20] (w1) and [25,35] (w2) — the union.
  auto stitched = KnowledgeMap::StitchableWindows({&w1, &w2}, KeyRange{"g", "p"});
  ASSERT_EQ(stitched.size(), 2u);
  // But the whole range [a, z) has no common version: w1 stops at 20, w2
  // starts at 25, and the ends only one of them covers pin each side.
  EXPECT_EQ(KnowledgeMap::MaxStitchableVersion({&w1, &w2}, KeyRange{"a", "z"}), std::nullopt);
}

TEST(KnowledgeStitchTest, GapInCoverageBlocksStitch) {
  KnowledgeMap w1;
  w1.AddSnapshot(KeyRange{"a", "g"}, 10);
  KnowledgeMap w2;
  w2.AddSnapshot(KeyRange{"m", "z"}, 10);
  // [g, m) is nobody's.
  EXPECT_EQ(KnowledgeMap::MaxStitchableVersion({&w1, &w2}, KeyRange{"a", "z"}), std::nullopt);
  EXPECT_EQ(KnowledgeMap::MaxStitchableVersion({&w1, &w2}, KeyRange{"a", "g"}),
            std::optional<Version>(10));
}

TEST(KnowledgeStitchTest, ThreeWatcherChain) {
  KnowledgeMap a;
  a.AddSnapshot(KeyRange{"", "f"}, 5);
  a.ExtendTo(KeyRange{"", "f"}, 50);
  KnowledgeMap b;
  b.AddSnapshot(KeyRange{"f", "q"}, 30);
  b.ExtendTo(KeyRange{"f", "q"}, 45);
  KnowledgeMap c;
  c.AddSnapshot(KeyRange{"q", ""}, 20);
  c.ExtendTo(KeyRange{"q", ""}, 60);
  EXPECT_EQ(KnowledgeMap::MaxStitchableVersion({&a, &b, &c}, KeyRange::All()),
            std::optional<Version>(45));
  EXPECT_FALSE(KnowledgeMap::StitchableWindows({&a, &b, &c}, KeyRange::All()).empty());
}

}  // namespace
}  // namespace watch
