#include "watch/materialized.h"

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "cdc/feeds.h"
#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/store_watch.h"
#include "watch/watch_system.h"

namespace watch {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
using common::KeyRange;
using common::Mutation;
using common::StatusCode;

// Stack: MvccStore --(built-in watch)--> MaterializedRange.
class MaterializedTest : public ::testing::Test {
 protected:
  MaterializedTest()
      : net_(&sim_, {.base = 0, .jitter = 0}),
        store_("primary"),
        store_watch_(&sim_, &net_, &store_, "store-watch",
                     {.delivery_latency = 1 * kMs, .progress_period = 10 * kMs}),
        source_(&store_) {}

  std::unique_ptr<MaterializedRange> MakeRange(KeyRange range,
                                               MaterializedOptions options = {}) {
    return std::make_unique<MaterializedRange>(&sim_, &store_watch_, &source_,
                                               std::move(range), options);
  }

  sim::Simulator sim_;
  sim::Network net_;
  storage::MvccStore store_;
  StoreWatch store_watch_;
  StoreSnapshotSource source_;
};

TEST_F(MaterializedTest, InitialSnapshotServed) {
  store_.Apply("a", Mutation::Put("1"));
  store_.Apply("b", Mutation::Put("2"));
  auto mr = MakeRange(KeyRange::All());
  mr->Start();
  EXPECT_FALSE(mr->ready());
  sim_.RunUntil(50 * kMs);
  ASSERT_TRUE(mr->ready());
  EXPECT_EQ(*mr->Get("a"), "1");
  EXPECT_EQ(*mr->Get("b"), "2");
  EXPECT_EQ(mr->Get("zz").status().code(), StatusCode::kNotFound);
}

TEST_F(MaterializedTest, LiveUpdatesApplied) {
  auto mr = MakeRange(KeyRange::All());
  mr->Start();
  sim_.RunUntil(50 * kMs);
  store_.Apply("k", Mutation::Put("fresh"));
  sim_.RunUntil(100 * kMs);
  EXPECT_EQ(*mr->Get("k"), "fresh");
  EXPECT_GE(mr->events_applied(), 1u);
}

TEST_F(MaterializedTest, DeletesApplied) {
  store_.Apply("k", Mutation::Put("v"));
  auto mr = MakeRange(KeyRange::All());
  mr->Start();
  sim_.RunUntil(50 * kMs);
  EXPECT_TRUE(mr->Get("k").ok());
  store_.Apply("k", Mutation::Delete());
  sim_.RunUntil(100 * kMs);
  EXPECT_EQ(mr->Get("k").status().code(), StatusCode::kNotFound);
}

TEST_F(MaterializedTest, RangeRestriction) {
  store_.Apply("apple", Mutation::Put("1"));
  store_.Apply("zebra", Mutation::Put("2"));
  auto mr = MakeRange(KeyRange{"a", "m"});
  mr->Start();
  sim_.RunUntil(50 * kMs);
  EXPECT_TRUE(mr->Get("apple").ok());
  EXPECT_EQ(mr->Get("zebra").status().code(), StatusCode::kNotFound);
  store_.Apply("banana", Mutation::Put("3"));
  store_.Apply("yak", Mutation::Put("4"));
  sim_.RunUntil(100 * kMs);
  EXPECT_TRUE(mr->Get("banana").ok());
  EXPECT_EQ(mr->Get("yak").status().code(), StatusCode::kNotFound);
}

TEST_F(MaterializedTest, KnowledgeGrowsWithProgress) {
  store_.Apply("a", Mutation::Put("1"));
  auto mr = MakeRange(KeyRange::All());
  mr->Start();
  sim_.RunUntil(50 * kMs);
  const common::Version v0 = mr->progress_frontier();
  store_.Apply("b", Mutation::Put("2"));
  const common::Version v1 = store_.LatestVersion();
  sim_.RunUntil(200 * kMs);
  EXPECT_GT(mr->progress_frontier(), v0);
  EXPECT_TRUE(mr->knowledge().ServableAt(KeyRange::All(), v1));
  EXPECT_GE(*mr->MaxServableVersion(KeyRange::All()), v1);
}

TEST_F(MaterializedTest, SnapshotGetAtHistoricalVersion) {
  store_.Apply("k", Mutation::Put("old"));
  auto mr = MakeRange(KeyRange::All());
  mr->Start();
  sim_.RunUntil(50 * kMs);
  const common::Version v_old = *mr->MaxServableVersion(KeyRange::All());
  store_.Apply("k", Mutation::Put("new"));
  sim_.RunUntil(200 * kMs);
  const common::Version v_new = *mr->MaxServableVersion(KeyRange::All());
  ASSERT_GT(v_new, v_old);
  // Both versions servable — the multi-version history inside the window.
  EXPECT_EQ(*mr->SnapshotGet("k", v_old), "old");
  EXPECT_EQ(*mr->SnapshotGet("k", v_new), "new");
  // Outside the knowledge window: refused, not silently wrong.
  EXPECT_EQ(mr->SnapshotGet("k", v_old - 1).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MaterializedTest, SnapshotScanMatchesStore) {
  for (int i = 0; i < 10; ++i) {
    store_.Apply(common::IndexKey(i), Mutation::Put("v" + std::to_string(i)));
  }
  auto mr = MakeRange(KeyRange::All());
  mr->Start();
  sim_.RunUntil(50 * kMs);
  store_.Apply(common::IndexKey(3), Mutation::Delete());
  store_.Apply(common::IndexKey(11), Mutation::Put("new"));
  sim_.RunUntil(200 * kMs);
  const common::Version v = *mr->MaxServableVersion(KeyRange::All());
  auto mine = mr->SnapshotScan(KeyRange::All(), v);
  ASSERT_TRUE(mine.ok());
  auto truth = store_.Scan(KeyRange::All(), v);
  ASSERT_TRUE(truth.ok());
  ASSERT_EQ(mine->size(), truth->size());
  for (std::size_t i = 0; i < truth->size(); ++i) {
    EXPECT_EQ((*mine)[i].key, (*truth)[i].key);
    EXPECT_EQ((*mine)[i].value, (*truth)[i].value);
  }
}

TEST_F(MaterializedTest, SoftStateCrashTriggersResyncAndRecovers) {
  store_.Apply("k", Mutation::Put("v1"));
  auto mr = MakeRange(KeyRange::All());
  mr->Start();
  sim_.RunUntil(50 * kMs);
  EXPECT_EQ(mr->resyncs(), 0u);

  store_watch_.system().CrashSoftState();
  store_.Apply("k", Mutation::Put("v2"));  // Committed around the crash.
  sim_.RunUntil(300 * kMs);
  EXPECT_GE(mr->resyncs(), 1u);
  EXPECT_EQ(*mr->Get("k"), "v2");  // Recovered from the store; nothing lost.
}

TEST_F(MaterializedTest, WatcherOutageRepairsBySessionResume) {
  auto mr = MakeRange(KeyRange::All(), {.node = "pod1"});
  net_.AddNode("pod1");
  mr->Start();
  sim_.RunUntil(50 * kMs);

  net_.SetUp("pod1", false);
  store_.Apply("k", Mutation::Put("missed"));
  sim_.RunUntil(300 * kMs);
  EXPECT_EQ(mr->Get("k").status().code(), StatusCode::kNotFound);

  net_.SetUp("pod1", true);
  sim_.RunUntil(600 * kMs);
  // The gap was replayed from the retained window (session resume), without
  // a full snapshot resync.
  EXPECT_EQ(*mr->Get("k"), "missed");
  EXPECT_GE(mr->session_repairs(), 1u);
  EXPECT_EQ(mr->resyncs(), 0u);
}

TEST_F(MaterializedTest, LongOutageFallsBackToResync) {
  // Tiny retained window: an outage longer than the window forces the full
  // snapshot path — loudly, via OnResync.
  StoreWatch small_watch(&sim_, &net_, &store_, "small-watch",
                         {.window = {.max_events = 2},
                          .delivery_latency = 1 * kMs,
                          .progress_period = 10 * kMs});
  MaterializedRange mr(&sim_, &small_watch, &source_, KeyRange::All(), {.node = "pod2"});
  net_.AddNode("pod2");
  mr.Start();
  sim_.RunUntil(50 * kMs);

  net_.SetUp("pod2", false);
  for (int i = 0; i < 10; ++i) {
    store_.Apply(common::IndexKey(i), Mutation::Put("x"));
  }
  sim_.RunUntil(300 * kMs);
  net_.SetUp("pod2", true);
  sim_.RunUntil(800 * kMs);
  EXPECT_GE(mr.resyncs(), 1u);
  // End state still correct.
  EXPECT_EQ(*mr.Get(common::IndexKey(9)), "x");
}

TEST_F(MaterializedTest, StopDropsState) {
  store_.Apply("k", Mutation::Put("v"));
  auto mr = MakeRange(KeyRange::All());
  mr->Start();
  sim_.RunUntil(50 * kMs);
  mr->Stop();
  EXPECT_FALSE(mr->ready());
  EXPECT_EQ(mr->Get("k").status().code(), StatusCode::kNotFound);
}

TEST_F(MaterializedTest, ApplyAndSnapshotHooksFire) {
  int snapshots = 0;
  int applies = 0;
  auto mr = MakeRange(KeyRange::All());
  mr->set_snapshot_hook([&snapshots](const Snapshot&) { ++snapshots; });
  mr->set_apply_hook([&applies](const ChangeEvent&) { ++applies; });
  store_.Apply("a", Mutation::Put("1"));
  mr->Start();
  sim_.RunUntil(50 * kMs);
  store_.Apply("b", Mutation::Put("2"));
  sim_.RunUntil(100 * kMs);
  EXPECT_EQ(snapshots, 1);
  EXPECT_EQ(applies, 1);
}

// End-to-end through the EXTERNAL path: MvccStore -> CdcIngesterFeed (4
// staggered shards, out-of-order across shards) -> WatchSystem ->
// MaterializedRange. After quiescence the materialization converges to the
// store, and knowledge reaches the store's version. This is the full
// unbundled architecture of Figure 4.
class ExternalPathPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExternalPathPropertyTest, ConvergesToStoreState) {
  sim::Simulator sim(GetParam());
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore store("primary");
  WatchSystem ws(&sim, &net, "snappy",
                 {.delivery_latency = 1 * kMs, .progress_period = 10 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &store, nullptr, &ws,
                            {.shards = cdc::UniformShards(100, 4, 2),
                             .base_latency = 1 * kMs,
                             .stagger = 3 * kMs,
                             .progress_period = 15 * kMs});
  StoreSnapshotSource source(&store);
  MaterializedRange mr(&sim, &ws, &source, KeyRange::All());
  mr.Start();
  sim.RunUntil(50 * kMs);

  common::Rng rng(GetParam() * 13 + 7);
  for (int step = 0; step < 200; ++step) {
    storage::Transaction txn = store.Begin();
    const int writes = 1 + static_cast<int>(rng.Below(4));
    for (int w = 0; w < writes; ++w) {
      const common::Key key = common::IndexKey(rng.Below(100), 2);
      if (rng.Bernoulli(0.15)) {
        txn.Delete(key);
      } else {
        txn.Put(key, "s" + std::to_string(step));
      }
    }
    ASSERT_TRUE(store.Commit(std::move(txn)).ok());
    if (rng.Bernoulli(0.1)) {
      sim.RunUntil(sim.Now() + 5 * kMs);
    }
  }
  sim.RunUntil(sim.Now() + 2000 * kMs);  // Quiesce.

  const common::Version latest = store.LatestVersion();
  ASSERT_TRUE(mr.knowledge().ServableAt(KeyRange::All(), latest));
  auto truth = store.Scan(KeyRange::All(), latest);
  ASSERT_TRUE(truth.ok());
  auto mine = mr.SnapshotScan(KeyRange::All(), latest);
  ASSERT_TRUE(mine.ok());
  ASSERT_EQ(mine->size(), truth->size());
  for (std::size_t i = 0; i < truth->size(); ++i) {
    EXPECT_EQ((*mine)[i].key, (*truth)[i].key);
    EXPECT_EQ((*mine)[i].value, (*truth)[i].value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExternalPathPropertyTest,
                         ::testing::Values(21, 42, 63, 84, 105, 126, 147, 168));

}  // namespace
}  // namespace watch
