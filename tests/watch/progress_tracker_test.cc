#include "watch/progress_tracker.h"

#include <vector>

#include <gtest/gtest.h>

namespace watch {
namespace {

using common::KeyRange;
using common::ProgressEvent;
using common::Version;

TEST(ProgressTrackerTest, InitialFrontierIsZero) {
  ProgressTracker t;
  EXPECT_EQ(t.FrontierFor(KeyRange::All()), common::kNoVersion);
}

TEST(ProgressTrackerTest, GlobalProgressAdvancesEverything) {
  ProgressTracker t;
  t.Apply(ProgressEvent{KeyRange::All(), 10});
  EXPECT_EQ(t.FrontierFor(KeyRange::All()), 10u);
  EXPECT_EQ(t.FrontierFor(KeyRange{"m", "n"}), 10u);
}

TEST(ProgressTrackerTest, RangeFrontierIsMinimumAcrossSubranges) {
  ProgressTracker t;
  t.Apply(ProgressEvent{KeyRange{"a", "m"}, 20});
  t.Apply(ProgressEvent{KeyRange{"m", ""}, 5});
  EXPECT_EQ(t.FrontierFor(KeyRange{"a", "m"}), 20u);
  EXPECT_EQ(t.FrontierFor(KeyRange{"m", "z"}), 5u);
  // A range spanning both is limited by the slower shard.
  EXPECT_EQ(t.FrontierFor(KeyRange{"a", "z"}), 5u);
  // The untouched space below "a" is still at zero.
  EXPECT_EQ(t.FrontierFor(KeyRange::All()), 0u);
}

TEST(ProgressTrackerTest, ProgressNeverRegresses) {
  ProgressTracker t;
  t.Apply(ProgressEvent{KeyRange{"a", "z"}, 30});
  t.Apply(ProgressEvent{KeyRange{"a", "z"}, 10});  // Stale redelivery.
  EXPECT_EQ(t.FrontierFor(KeyRange{"a", "z"}), 30u);
}

TEST(ProgressTrackerTest, PartialOverlapOnlyAdvancesOverlap) {
  ProgressTracker t;
  t.Apply(ProgressEvent{KeyRange{"a", "m"}, 10});
  t.Apply(ProgressEvent{KeyRange{"g", "t"}, 25});
  EXPECT_EQ(t.FrontierFor(KeyRange{"a", "g"}), 10u);
  EXPECT_EQ(t.FrontierFor(KeyRange{"g", "m"}), 25u);
  EXPECT_EQ(t.FrontierFor(KeyRange{"m", "t"}), 25u);
  EXPECT_EQ(t.FrontierFor(KeyRange{"a", "t"}), 10u);
}

TEST(ProgressTrackerTest, LayersCanUseDifferentPartitionBoundaries) {
  // The CDC layer reports in 2 shards; a watcher asks about a range aligned
  // with neither — the point of range-scoped progress (Section 4.2.2).
  ProgressTracker t;
  t.Apply(ProgressEvent{KeyRange{"", "h"}, 40});
  t.Apply(ProgressEvent{KeyRange{"h", ""}, 38});
  EXPECT_EQ(t.FrontierFor(KeyRange{"e", "k"}), 38u);
  EXPECT_EQ(t.FrontierFor(KeyRange{"a", "c"}), 40u);
}

TEST(ProgressTrackerTest, VisitSegmentsExposesFineStructure) {
  ProgressTracker t;
  t.Apply(ProgressEvent{KeyRange{"a", "m"}, 10});
  t.Apply(ProgressEvent{KeyRange{"m", "z"}, 20});
  std::vector<std::pair<KeyRange, Version>> segs;
  t.VisitSegments(KeyRange{"b", "y"}, [&segs](const KeyRange& r, Version v) {
    segs.emplace_back(r, v);
  });
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].first, (KeyRange{"b", "m"}));
  EXPECT_EQ(segs[0].second, 10u);
  EXPECT_EQ(segs[1].first, (KeyRange{"m", "y"}));
  EXPECT_EQ(segs[1].second, 20u);
}

TEST(ProgressTrackerTest, ClearResetsToZero) {
  ProgressTracker t;
  t.Apply(ProgressEvent{KeyRange::All(), 99});
  t.Clear();
  EXPECT_EQ(t.FrontierFor(KeyRange::All()), 0u);
}

}  // namespace
}  // namespace watch
