#include "watch/proxy.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cdc/feeds.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/materialized.h"
#include "watch/snapshot_source.h"
#include "watch/watch_system.h"

namespace watch {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
using common::KeyRange;
using common::Mutation;

class RecordingCallback : public WatchCallback {
 public:
  void OnEvent(const ChangeEvent& event) override { events.push_back(event); }
  void OnProgress(const ProgressEvent& event) override { progress.push_back(event); }
  void OnResync() override { ++resyncs; }

  std::vector<ChangeEvent> events;
  std::vector<ProgressEvent> progress;
  int resyncs = 0;
};

class WatchProxyTest : public ::testing::Test {
 protected:
  WatchProxyTest()
      : net_(&sim_, {.base = 0, .jitter = 0}),
        root_(&sim_, &net_, "root", {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs}),
        feed_(&sim_, &store_, nullptr, &root_, {.progress_period = 5 * kMs}) {}

  sim::Simulator sim_;
  sim::Network net_;
  storage::MvccStore store_;
  WatchSystem root_;
  cdc::CdcIngesterFeed feed_;
};

TEST_F(WatchProxyTest, EventsFlowThroughProxy) {
  WatchProxy proxy(&sim_, &net_, &root_, KeyRange::All(), "proxy-0",
                   {.system = {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs}});
  RecordingCallback cb;
  auto handle = proxy.Watch("", "", 0, &cb);
  store_.Apply("k", Mutation::Put("v1"));
  store_.Apply("k", Mutation::Put("v2"));
  sim_.RunUntil(100 * kMs);
  ASSERT_EQ(cb.events.size(), 2u);
  EXPECT_EQ(cb.events[0].mutation.value, "v1");
  EXPECT_EQ(cb.events[1].mutation.value, "v2");
}

TEST_F(WatchProxyTest, ProgressFlowsThroughProxy) {
  WatchProxy proxy(&sim_, &net_, &root_, KeyRange::All(), "proxy-0",
                   {.system = {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs}});
  RecordingCallback cb;
  auto handle = proxy.Watch("", "", 0, &cb);
  store_.Apply("k", Mutation::Put("v"));
  const common::Version v = store_.LatestVersion();
  sim_.RunUntil(200 * kMs);
  ASSERT_FALSE(cb.progress.empty());
  EXPECT_GE(cb.progress.back().version, v);
}

TEST_F(WatchProxyTest, ProxyServesItsRangeOnly) {
  WatchProxy proxy(&sim_, &net_, &root_, KeyRange{"a", "m"}, "proxy-0",
                   {.system = {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs}});
  RecordingCallback cb;
  auto handle = proxy.Watch("", "", 0, &cb);
  store_.Apply("banana", Mutation::Put("in"));
  store_.Apply("zebra", Mutation::Put("out"));
  sim_.RunUntil(100 * kMs);
  ASSERT_EQ(cb.events.size(), 1u);
  EXPECT_EQ(cb.events[0].key, "banana");
}

TEST_F(WatchProxyTest, OneUpstreamSessionManyDownstreamWatchers) {
  WatchProxy proxy(&sim_, &net_, &root_, KeyRange::All(), "proxy-0",
                   {.system = {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs}});
  std::vector<std::unique_ptr<RecordingCallback>> cbs;
  std::vector<std::unique_ptr<WatchHandle>> handles;
  for (int i = 0; i < 20; ++i) {
    cbs.push_back(std::make_unique<RecordingCallback>());
    handles.push_back(proxy.Watch("", "", 0, cbs.back().get()));
  }
  store_.Apply("k", Mutation::Put("v"));
  sim_.RunUntil(100 * kMs);
  for (const auto& cb : cbs) {
    EXPECT_EQ(cb->events.size(), 1u);
  }
  // The root saw exactly one session (the proxy), not 20.
  EXPECT_EQ(root_.active_sessions(), 1u);
  EXPECT_EQ(proxy.system().active_sessions(), 20u);
}

TEST_F(WatchProxyTest, ProxiesComposeIntoTrees) {
  WatchProxy mid(&sim_, &net_, &root_, KeyRange::All(), "proxy-mid",
                 {.system = {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs}});
  WatchProxy leaf(&sim_, &net_, &mid, KeyRange::All(), "proxy-leaf",
                  {.system = {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs}});
  RecordingCallback cb;
  auto handle = leaf.Watch("", "", 0, &cb);
  store_.Apply("k", Mutation::Put("deep"));
  sim_.RunUntil(200 * kMs);
  ASSERT_EQ(cb.events.size(), 1u);
  EXPECT_EQ(cb.events[0].mutation.value, "deep");
}

TEST_F(WatchProxyTest, UpstreamSoftStateCrashResyncsThroughProxy) {
  WatchProxy proxy(&sim_, &net_, &root_, KeyRange::All(), "proxy-0",
                   {.system = {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs}});
  RecordingCallback cb;
  auto handle = proxy.Watch("", "", 0, &cb);
  store_.Apply("k", Mutation::Put("v1"));
  sim_.RunUntil(100 * kMs);
  EXPECT_EQ(cb.events.size(), 1u);

  root_.CrashSoftState();
  sim_.RunUntil(500 * kMs);
  // The proxy was resynced upstream and honestly resynced its watchers.
  EXPECT_GE(proxy.upstream_resyncs(), 1u);
  EXPECT_EQ(cb.resyncs, 1);
}

TEST_F(WatchProxyTest, MaterializedRangeWorksThroughProxyAfterCrash) {
  // The full client protocol against a proxy tier: crash the ROOT's soft
  // state mid-run; the materialization recovers from the store and converges.
  WatchProxy proxy(&sim_, &net_, &root_, KeyRange::All(), "proxy-0",
                   {.system = {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs}});
  StoreSnapshotSource source(&store_);
  MaterializedRange mr(&sim_, &proxy, &source, KeyRange::All(),
                       {.resync_delay = 5 * kMs});
  mr.Start();
  sim_.RunUntil(100 * kMs);
  store_.Apply("a", Mutation::Put("1"));
  sim_.RunUntil(200 * kMs);
  EXPECT_EQ(*mr.Get("a"), "1");

  root_.CrashSoftState();
  store_.Apply("b", Mutation::Put("2"));
  sim_.RunUntil(1500 * kMs);
  EXPECT_EQ(*mr.Get("a"), "1");
  EXPECT_EQ(*mr.Get("b"), "2");  // Nothing lost end to end.
}

TEST_F(WatchProxyTest, ProxyNodeOutageRecovers) {
  WatchProxy proxy(&sim_, &net_, &root_, KeyRange::All(), "proxy-0",
                   {.system = {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs}});
  StoreSnapshotSource source(&store_);
  MaterializedRange mr(&sim_, &proxy, &source, KeyRange::All(),
                       {.resync_delay = 5 * kMs});
  mr.Start();
  sim_.RunUntil(100 * kMs);

  net_.SetUp("proxy-0", false);  // The proxy tier drops off the network.
  store_.Apply("k", Mutation::Put("during-outage"));
  sim_.RunUntil(400 * kMs);
  net_.SetUp("proxy-0", true);
  sim_.RunUntil(1500 * kMs);
  EXPECT_EQ(*mr.Get("k"), "during-outage");
  EXPECT_GE(proxy.upstream_reconnects(), 1u);
}

}  // namespace
}  // namespace watch
