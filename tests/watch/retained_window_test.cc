#include "watch/retained_window.h"

#include <gtest/gtest.h>

namespace watch {
namespace {

common::ChangeEvent Ev(const std::string& key, common::Version v) {
  return common::ChangeEvent{key, common::Mutation::Put("v" + std::to_string(v)), v, true};
}

TEST(RetainedWindowTest, EmptyWindowServesFromAnywhere) {
  RetainedWindow w;
  EXPECT_TRUE(w.CanServeFrom(0));
  EXPECT_TRUE(w.CanServeFrom(100));
  EXPECT_EQ(w.MinRetainedVersion(), 0u);
  EXPECT_TRUE(w.EventsAfter(common::KeyRange::All(), 0).empty());
}

TEST(RetainedWindowTest, EventsAfterFiltersVersionAndRange) {
  RetainedWindow w;
  w.Append(Ev("a", 1), 0);
  w.Append(Ev("b", 2), 0);
  w.Append(Ev("c", 3), 0);
  auto all = w.EventsAfter(common::KeyRange::All(), 1);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].key, "b");
  auto ranged = w.EventsAfter(common::KeyRange{"a", "b"}, 0);
  ASSERT_EQ(ranged.size(), 1u);
  EXPECT_EQ(ranged[0].key, "a");
}

TEST(RetainedWindowTest, CountTrimRaisesFloor) {
  RetainedWindow w(RetainedWindow::Options{.max_events = 3});
  for (common::Version v = 1; v <= 5; ++v) {
    w.Append(Ev("k", v), 0);
  }
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.MinRetainedVersion(), 3u);  // v1, v2 dropped.
  EXPECT_FALSE(w.CanServeFrom(1));        // Would miss v2.
  EXPECT_TRUE(w.CanServeFrom(2));         // v3..v5 all buffered.
  EXPECT_TRUE(w.CanServeFrom(5));
}

TEST(RetainedWindowTest, AgeTrim) {
  RetainedWindow w;
  w.Append(Ev("k", 1), /*now=*/100);
  w.Append(Ev("k", 2), /*now=*/200);
  w.Append(Ev("k", 3), /*now=*/300);
  w.TrimOlderThan(250);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.MinRetainedVersion(), 3u);
}

TEST(RetainedWindowTest, ClearLosesEverythingLoudly) {
  RetainedWindow w;
  w.Append(Ev("k", 7), 0);
  w.Append(Ev("k", 9), 0);
  w.Clear();
  EXPECT_EQ(w.size(), 0u);
  // After a soft-state wipe, positions below the pre-crash frontier are not
  // servable (events 8..9 may have been missed)...
  EXPECT_FALSE(w.CanServeFrom(7));
  EXPECT_FALSE(w.CanServeFrom(8));
  // ...but a watcher already at the frontier has missed nothing.
  EXPECT_TRUE(w.CanServeFrom(9));
  EXPECT_TRUE(w.CanServeFrom(10));
}

TEST(RetainedWindowTest, CanServeFromExactFloorBoundary) {
  RetainedWindow w(RetainedWindow::Options{.max_events = 1});
  w.Append(Ev("k", 10), 0);
  w.Append(Ev("k", 20), 0);  // Drops v10; floor = 11.
  EXPECT_EQ(w.MinRetainedVersion(), 11u);
  EXPECT_TRUE(w.CanServeFrom(10));   // All events > 10 (just v20) retained.
  EXPECT_FALSE(w.CanServeFrom(9));   // v10 is gone.
}

TEST(RetainedWindowTest, MaxVersionTracksHighestSeen) {
  RetainedWindow w;
  EXPECT_EQ(w.MaxVersion(), 0u);
  w.Append(Ev("k", 5), 0);
  w.Append(Ev("j", 3), 0);  // Lower version on a different key.
  EXPECT_EQ(w.MaxVersion(), 5u);
}

// Regression: Options::max_age used to be accepted but never enforced — only
// explicit TrimOlderThan calls aged events out, so a window configured with an
// age bound silently retained (and replayed) arbitrarily old history.
TEST(RetainedWindowTest, AppendEnforcesMaxAge) {
  RetainedWindow w(RetainedWindow::Options{.max_age = 100});
  w.Append(Ev("k", 1), /*now=*/0);
  w.Append(Ev("k", 2), /*now=*/50);
  EXPECT_EQ(w.size(), 2u);  // Both within the age bound at t=50.
  w.Append(Ev("k", 3), /*now=*/130);  // v1 is now 130us old: aged out.
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w.MinRetainedVersion(), 2u);
  EXPECT_FALSE(w.CanServeFrom(0));  // v1 is gone — resync, not stale replay.
  EXPECT_TRUE(w.CanServeFrom(1));
}

TEST(RetainedWindowTest, AppendKeepsEventExactlyAtAgeBound) {
  RetainedWindow w(RetainedWindow::Options{.max_age = 100});
  w.Append(Ev("k", 1), /*now=*/0);
  w.Append(Ev("k", 2), /*now=*/100);  // v1 is exactly max_age old: retained.
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w.MinRetainedVersion(), 0u);
}

// Clear followed by ingest at a version below the pre-clear maximum (e.g. a
// rebuilt feed replaying from an older snapshot) must not lower the floor:
// positions between the new event and the pre-clear frontier still have gaps.
TEST(RetainedWindowTest, ClearThenAppendAtLowerVersionKeepsFloor) {
  RetainedWindow w;
  w.Append(Ev("k", 10), 0);
  w.Clear();
  EXPECT_EQ(w.MinRetainedVersion(), 11u);
  w.Append(Ev("j", 5), 0);
  EXPECT_EQ(w.MinRetainedVersion(), 11u);  // Floor never regresses.
  EXPECT_EQ(w.MaxVersion(), 10u);          // Frontier never regresses either.
  EXPECT_FALSE(w.CanServeFrom(7));         // Events 8..10 were wiped.
  EXPECT_TRUE(w.CanServeFrom(10));         // The pre-clear frontier is safe.
}

}  // namespace
}  // namespace watch
