// Property: a WatchRouter over N partitions is observationally equivalent to
// a single WatchSystem for any watcher that follows the watch contract —
// same final materialized state, same knowledge guarantees. (Event ORDER
// differs across partitions; the contract never promised cross-key order,
// only per-key order plus range progress.)
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cdc/feeds.h"
#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/materialized.h"
#include "watch/router.h"
#include "watch/snapshot_source.h"
#include "watch/watch_system.h"

namespace watch {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;

class RouterEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterEquivalenceTest, SameFinalStateAsSingleSystem) {
  // Two parallel universes with identical seeds and workloads: one routes
  // through 4 partitions, the other uses a single system.
  struct Universe {
    explicit Universe(std::uint64_t seed, bool routed)
        : sim(seed), net(&sim, {.base = 0, .jitter = 0}), store("src") {
      if (routed) {
        router = std::make_unique<WatchRouter>(
            &sim, &net, "router", cdc::UniformShards(100, 4, 2),
            WatchSystemOptions{.delivery_latency = 1 * kMs, .progress_period = 5 * kMs});
        target = router.get();
      } else {
        single = std::make_unique<WatchSystem>(
            &sim, &net, "single",
            WatchSystemOptions{.delivery_latency = 1 * kMs, .progress_period = 5 * kMs});
        target = single.get();
      }
      feed = std::make_unique<cdc::CdcIngesterFeed>(
          &sim, &store, nullptr, static_cast<Ingester*>(
              routed ? static_cast<Ingester*>(router.get()) : single.get()),
          cdc::IngesterFeedOptions{.progress_period = 5 * kMs});
      source = std::make_unique<StoreSnapshotSource>(&store);
      mr = std::make_unique<MaterializedRange>(&sim, target, source.get(),
                                               common::KeyRange::All(),
                                               MaterializedOptions{.resync_delay = 5 * kMs});
      mr->Start();
      sim.RunUntil(50 * kMs);
    }

    void Drive(std::uint64_t seed) {
      common::Rng rng(seed);
      for (int i = 0; i < 300; ++i) {
        const common::Key key = common::IndexKey(rng.Below(100), 2);
        if (rng.Bernoulli(0.2)) {
          store.Apply(key, common::Mutation::Delete());
        } else {
          store.Apply(key, common::Mutation::Put("i" + std::to_string(i)));
        }
        if (i % 25 == 0) {
          sim.RunUntil(sim.Now() + 3 * kMs);
        }
      }
      sim.RunUntil(sim.Now() + 2000 * kMs);
    }

    sim::Simulator sim;
    sim::Network net;
    storage::MvccStore store;
    std::unique_ptr<WatchRouter> router;
    std::unique_ptr<WatchSystem> single;
    NodeAwareWatchable* target = nullptr;
    std::unique_ptr<cdc::CdcIngesterFeed> feed;
    std::unique_ptr<StoreSnapshotSource> source;
    std::unique_ptr<MaterializedRange> mr;
  };

  Universe routed(GetParam(), true);
  Universe direct(GetParam(), false);
  routed.Drive(GetParam() * 77 + 1);
  direct.Drive(GetParam() * 77 + 1);

  // Both stores saw the identical workload...
  ASSERT_EQ(routed.store.LatestVersion(), direct.store.LatestVersion());
  // ...and both materializations converged to it.
  auto routed_state = routed.mr->LatestScan(common::KeyRange::All());
  auto direct_state = direct.mr->LatestScan(common::KeyRange::All());
  ASSERT_EQ(routed_state.size(), direct_state.size());
  for (std::size_t i = 0; i < routed_state.size(); ++i) {
    EXPECT_EQ(routed_state[i].key, direct_state[i].key);
    EXPECT_EQ(routed_state[i].value, direct_state[i].value);
  }
  // Knowledge reaches the full frontier in both.
  EXPECT_TRUE(routed.mr->knowledge().ServableAt(common::KeyRange::All(),
                                                routed.store.LatestVersion()));
  EXPECT_TRUE(direct.mr->knowledge().ServableAt(common::KeyRange::All(),
                                                direct.store.LatestVersion()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterEquivalenceTest, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace watch
