#include "watch/router.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cdc/feeds.h"
#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/materialized.h"
#include "watch/snapshot_source.h"

namespace watch {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
using common::KeyRange;
using common::Mutation;

class Recorder : public WatchCallback {
 public:
  void OnEvent(const ChangeEvent& event) override { events.push_back(event); }
  void OnProgress(const ProgressEvent& event) override { progress.push_back(event); }
  void OnResync() override { ++resyncs; }

  std::vector<ChangeEvent> events;
  std::vector<ProgressEvent> progress;
  int resyncs = 0;
};

class WatchRouterTest : public ::testing::Test {
 protected:
  WatchRouterTest()
      : net_(&sim_, {.base = 0, .jitter = 0}),
        router_(&sim_, &net_, "router", {{"", "h"}, {"h", "p"}, {"p", ""}},
                {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs}) {}

  sim::Simulator sim_;
  sim::Network net_;
  WatchRouter router_;
};

TEST_F(WatchRouterTest, AppendsRouteToOwningPartition) {
  router_.Append({"apple", Mutation::Put("1"), 1, true});
  router_.Append({"kiwi", Mutation::Put("2"), 2, true});
  router_.Append({"zebra", Mutation::Put("3"), 3, true});
  EXPECT_EQ(router_.partition(0).retained_events(), 1u);
  EXPECT_EQ(router_.partition(1).retained_events(), 1u);
  EXPECT_EQ(router_.partition(2).retained_events(), 1u);
}

TEST_F(WatchRouterTest, SinglePartitionWatchBehavesNormally) {
  Recorder cb;
  auto handle = router_.Watch("a", "c", 0, &cb);
  router_.Append({"banana", Mutation::Put("v"), 1, true});
  router_.Append({"kiwi", Mutation::Put("v"), 2, true});  // Other partition.
  sim_.RunUntil(20 * kMs);
  ASSERT_EQ(cb.events.size(), 1u);
  EXPECT_EQ(cb.events[0].key, "banana");
  EXPECT_TRUE(handle->active());
}

TEST_F(WatchRouterTest, SpanningWatchReceivesFromAllPartitions) {
  Recorder cb;
  auto handle = router_.Watch("", "", 0, &cb);
  router_.Append({"apple", Mutation::Put("1"), 1, true});
  router_.Append({"kiwi", Mutation::Put("2"), 2, true});
  router_.Append({"zebra", Mutation::Put("3"), 3, true});
  sim_.RunUntil(20 * kMs);
  EXPECT_EQ(cb.events.size(), 3u);
}

TEST_F(WatchRouterTest, CompositeProgressIsMinAcrossPartitions) {
  Recorder cb;
  auto handle = router_.Watch("", "", 0, &cb);
  router_.Progress({KeyRange{"", "h"}, 30});
  router_.Progress({KeyRange{"h", "p"}, 10});
  router_.Progress({KeyRange{"p", ""}, 20});
  sim_.RunUntil(50 * kMs);
  ASSERT_FALSE(cb.progress.empty());
  EXPECT_EQ(cb.progress.back().version, 10u);  // Slowest partition bounds it.
  // Advance the laggard: the composite frontier rises to the new minimum.
  router_.Progress({KeyRange{"h", "p"}, 25});
  sim_.RunUntil(100 * kMs);
  EXPECT_EQ(cb.progress.back().version, 20u);
}

TEST_F(WatchRouterTest, ProgressReportsTheWatchedRange) {
  Recorder cb;
  auto handle = router_.Watch("b", "k", 0, &cb);  // Spans partitions 0 and 1.
  router_.Progress({KeyRange::All(), 7});
  sim_.RunUntil(50 * kMs);
  ASSERT_FALSE(cb.progress.empty());
  EXPECT_EQ(cb.progress.back().range, (KeyRange{"b", "k"}));
  EXPECT_EQ(cb.progress.back().version, 7u);
}

TEST_F(WatchRouterTest, AnyPartitionResyncResyncsTheWholeWatch) {
  Recorder cb;
  auto handle = router_.Watch("", "", 0, &cb);
  sim_.RunUntil(5 * kMs);
  router_.partition(1).CrashSoftState();  // Only one partition dies.
  sim_.RunUntil(50 * kMs);
  EXPECT_EQ(cb.resyncs, 1);  // Exactly one loud signal.
  EXPECT_FALSE(handle->active());
}

TEST_F(WatchRouterTest, CancelStopsAllLegs) {
  Recorder cb;
  auto handle = router_.Watch("", "", 0, &cb);
  handle->Cancel();
  router_.Append({"apple", Mutation::Put("1"), 1, true});
  router_.Append({"zebra", Mutation::Put("2"), 2, true});
  sim_.RunUntil(20 * kMs);
  EXPECT_TRUE(cb.events.empty());
  EXPECT_FALSE(handle->active());
}

TEST_F(WatchRouterTest, WatchBelowRetentionResyncsOnce) {
  WatchRouter tiny(&sim_, &net_, "tiny", {{"", "m"}, {"m", ""}},
                   {.window = {.max_events = 1}, .delivery_latency = 1 * kMs});
  for (common::Version v = 1; v <= 6; ++v) {
    tiny.Append({v % 2 == 0 ? "a" : "z", Mutation::Put("v"), v, true});
  }
  Recorder cb;
  auto handle = tiny.Watch("", "", 1, &cb);  // Both partitions must resync.
  sim_.RunUntil(20 * kMs);
  EXPECT_EQ(cb.resyncs, 1);  // Deduplicated to one signal.
}

// The full client protocol against a router: MaterializedRange converges and
// survives a partition's soft-state crash, exactly as with a single system.
TEST_F(WatchRouterTest, MaterializedRangeConvergesThroughRouter) {
  storage::MvccStore store;
  cdc::CdcIngesterFeed feed(&sim_, &store, nullptr, &router_,
                            {.shards = {{"", "h"}, {"h", "p"}, {"p", ""}},
                             .base_latency = 1 * kMs,
                             .stagger = 2 * kMs,
                             .progress_period = 5 * kMs});
  StoreSnapshotSource source(&store);
  MaterializedRange mr(&sim_, &router_, &source, KeyRange::All(),
                       {.resync_delay = 5 * kMs});
  mr.Start();
  sim_.RunUntil(50 * kMs);

  common::Rng rng(3);
  const char* prefixes[] = {"a", "j", "t"};
  for (int i = 0; i < 150; ++i) {
    store.Apply(std::string(prefixes[rng.Below(3)]) + std::to_string(rng.Below(30)),
                Mutation::Put("v" + std::to_string(i)));
    if (i == 75) {
      router_.partition(rng.Below(3)).CrashSoftState();
    }
    if (i % 10 == 0) {
      sim_.RunUntil(sim_.Now() + 5 * kMs);
    }
  }
  sim_.RunUntil(sim_.Now() + 3000 * kMs);

  auto truth = store.Scan(KeyRange::All(), store.LatestVersion());
  ASSERT_TRUE(truth.ok());
  auto mine = mr.LatestScan(KeyRange::All());
  ASSERT_EQ(mine.size(), truth->size());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    EXPECT_EQ(mine[i].key, (*truth)[i].key);
    EXPECT_EQ(mine[i].value, (*truth)[i].value);
  }
}

}  // namespace
}  // namespace watch
