#include "watch/store_watch.h"

#include <gtest/gtest.h>

#include "cdc/feeds.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/ingest_store.h"
#include "storage/mvcc_store.h"
#include "storage/view.h"
#include "watch/materialized.h"
#include "watch/snapshot_source.h"
#include "watch/watch_system.h"

namespace watch {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
using common::KeyRange;
using common::Mutation;

class Recorder : public WatchCallback {
 public:
  void OnEvent(const ChangeEvent& event) override { events.push_back(event); }
  void OnProgress(const ProgressEvent& event) override { progress.push_back(event); }
  void OnResync() override { ++resyncs; }

  std::vector<ChangeEvent> events;
  std::vector<ProgressEvent> progress;
  int resyncs = 0;
};

TEST(StoreWatchTest, CommitsBecomeEventsImmediately) {
  sim::Simulator sim;
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore store;
  StoreWatch sw(&sim, &net, &store, "sw", {.delivery_latency = 1 * kMs});
  Recorder cb;
  auto handle = sw.Watch("", "", 0, &cb);
  storage::Transaction txn = store.Begin();
  txn.Put("a", "1");
  txn.Put("b", "2");
  ASSERT_TRUE(store.Commit(std::move(txn)).ok());
  sim.RunUntil(10 * kMs);
  ASSERT_EQ(cb.events.size(), 2u);
  EXPECT_EQ(cb.events[0].key, "a");
  EXPECT_FALSE(cb.events[0].txn_last);
  EXPECT_TRUE(cb.events[1].txn_last);
  EXPECT_EQ(cb.events[0].version, cb.events[1].version);
}

TEST(StoreWatchTest, ProgressIsTheCommitFrontier) {
  sim::Simulator sim;
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore store;
  StoreWatch sw(&sim, &net, &store, "sw",
                {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs});
  Recorder cb;
  auto handle = sw.Watch("", "", 0, &cb);
  store.Apply("k", Mutation::Put("v"));
  const common::Version v = store.LatestVersion();
  sim.RunUntil(50 * kMs);
  ASSERT_FALSE(cb.progress.empty());
  EXPECT_EQ(cb.progress.back().version, v);
}

TEST(StoreWatchTest, IngestStoreWatchDeliversAppends) {
  sim::Simulator sim;
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::IngestStore store;
  IngestStoreWatch sw(&sim, &net, &store, "isw", {.delivery_latency = 1 * kMs});
  Recorder cb;
  auto handle = sw.Watch("", "", 0, &cb);
  store.Append("sensor-1", "23.4C", 0);
  sim.RunUntil(10 * kMs);
  ASSERT_EQ(cb.events.size(), 1u);
  EXPECT_EQ(cb.events[0].key, "sensor-1");
  EXPECT_EQ(cb.events[0].mutation.value, "23.4C");
}

// Section 4.1 end-to-end: a consumer watching through a FilteredView never
// observes hidden rows or unprojected values, across BOTH the live path and
// the resync/snapshot path.
TEST(ViewSecurityTest, WatcherNeverSeesHiddenState) {
  sim::Simulator sim;
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore store;
  // Expose only contacts/, and only the part of the value before '|'.
  storage::FilteredView view(
      &store, KeyRange{"contacts/", "contacts0"},
      [](const common::Key&, const common::Value& v) -> std::optional<common::Value> {
        const auto bar = v.find('|');
        if (bar == common::Value::npos) {
          return std::nullopt;
        }
        return v.substr(0, bar);
      });
  WatchSystem ws(&sim, &net, "ws",
                 {.window = {.max_events = 4},  // Tiny: force the resync path too.
                  .delivery_latency = 1 * kMs,
                  .progress_period = 5 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &store, &view, &ws, {.progress_period = 5 * kMs});
  ViewSnapshotSource source(&view);
  MaterializedRange consumer(&sim, &ws, &source, KeyRange::All(),
                             {.resync_delay = 5 * kMs});

  // Pre-populate (these flow through the snapshot path), including secrets.
  store.Apply("contacts/alice", Mutation::Put("alice@x.com|555-0001"));
  store.Apply("secrets/root-password", Mutation::Put("hunter2"));
  consumer.Start();
  sim.RunUntil(50 * kMs);

  // Live path, incl. a burst that overflows the window (forcing resync).
  for (int i = 0; i < 20; ++i) {
    store.Apply("contacts/bob", Mutation::Put("bob" + std::to_string(i) + "@x.com|555"));
    store.Apply("secrets/api-key", Mutation::Put("sk-" + std::to_string(i)));
  }
  sim.RunUntil(500 * kMs);

  // The consumer converged on the exposed data...
  EXPECT_EQ(*consumer.Get("contacts/alice"), "alice@x.com");
  EXPECT_EQ(*consumer.Get("contacts/bob"), "bob19@x.com");
  // ...and holds nothing outside the view: no secret keys, no phone numbers.
  for (const storage::Entry& e : consumer.LatestScan(KeyRange::All())) {
    EXPECT_TRUE(e.key.rfind("contacts/", 0) == 0) << e.key;
    EXPECT_EQ(e.value.find('|'), std::string::npos) << e.value;
    EXPECT_EQ(e.value.find("hunter2"), std::string::npos);
    EXPECT_EQ(e.value.find("sk-"), std::string::npos);
  }
}

}  // namespace
}  // namespace watch
