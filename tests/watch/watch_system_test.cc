#include "watch/watch_system.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace watch {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;

common::ChangeEvent Put(const std::string& key, common::Version v) {
  return common::ChangeEvent{key, common::Mutation::Put("v" + std::to_string(v)), v, true};
}

// Records everything delivered on a watch stream.
class RecordingCallback : public WatchCallback {
 public:
  void OnEvent(const ChangeEvent& event) override { events.push_back(event); }
  void OnProgress(const ProgressEvent& event) override { progress.push_back(event); }
  void OnResync() override { ++resyncs; }

  std::vector<ChangeEvent> events;
  std::vector<ProgressEvent> progress;
  int resyncs = 0;
};

class WatchSystemTest : public ::testing::Test {
 protected:
  WatchSystemTest() : net_(&sim_, {.base = 0, .jitter = 0}) {}

  std::unique_ptr<WatchSystem> Make(WatchSystemOptions options = {}) {
    return std::make_unique<WatchSystem>(&sim_, &net_, "watch", options);
  }

  sim::Simulator sim_;
  sim::Network net_;
};

TEST_F(WatchSystemTest, LiveEventsDeliveredToMatchingSession) {
  auto ws = Make();
  RecordingCallback cb;
  auto handle = ws->Watch("a", "m", 0, &cb);
  ws->Append(Put("b", 1));
  ws->Append(Put("z", 2));  // Outside range.
  ws->Append(Put("c", 3));
  sim_.RunUntil(10 * kMs);
  ASSERT_EQ(cb.events.size(), 2u);
  EXPECT_EQ(cb.events[0].key, "b");
  EXPECT_EQ(cb.events[1].key, "c");
  EXPECT_EQ(ws->events_delivered(), 2u);
}

TEST_F(WatchSystemTest, EventsAtOrBelowWatchVersionNotDelivered) {
  auto ws = Make();
  ws->Append(Put("a", 1));
  ws->Append(Put("a", 2));
  RecordingCallback cb;
  auto handle = ws->Watch("", "", 2, &cb);
  ws->Append(Put("a", 3));
  sim_.RunUntil(10 * kMs);
  ASSERT_EQ(cb.events.size(), 1u);
  EXPECT_EQ(cb.events[0].version, 3u);
}

TEST_F(WatchSystemTest, BufferedEventsReplayedOnWatch) {
  auto ws = Make();
  ws->Append(Put("a", 1));
  ws->Append(Put("b", 2));
  ws->Append(Put("c", 3));
  RecordingCallback cb;
  auto handle = ws->Watch("", "", 1, &cb);
  sim_.RunUntil(10 * kMs);
  ASSERT_EQ(cb.events.size(), 2u);
  EXPECT_EQ(cb.events[0].version, 2u);
  EXPECT_EQ(cb.events[1].version, 3u);
}

TEST_F(WatchSystemTest, ReplayThenLiveIsContinuousAndOrdered) {
  auto ws = Make();
  ws->Append(Put("a", 1));
  ws->Append(Put("a", 2));
  RecordingCallback cb;
  auto handle = ws->Watch("", "", 0, &cb);
  ws->Append(Put("a", 3));  // Arrives while replay is in flight.
  sim_.RunUntil(10 * kMs);
  ASSERT_EQ(cb.events.size(), 3u);
  for (std::size_t i = 0; i < cb.events.size(); ++i) {
    EXPECT_EQ(cb.events[i].version, i + 1);
  }
}

TEST_F(WatchSystemTest, WatchBelowRetainedWindowResyncs) {
  auto ws = Make({.window = {.max_events = 2}});
  for (common::Version v = 1; v <= 10; ++v) {
    ws->Append(Put("a", v));
  }
  RecordingCallback cb;
  auto handle = ws->Watch("", "", 3, &cb);  // Events 4..8 already trimmed.
  sim_.RunUntil(10 * kMs);
  EXPECT_EQ(cb.resyncs, 1);
  EXPECT_TRUE(cb.events.empty());  // Never a partial, silently-gapped stream.
  EXPECT_EQ(ws->resyncs_sent(), 1u);
  EXPECT_FALSE(handle->active());
}

TEST_F(WatchSystemTest, WatchAtRetainedBoundarySucceeds) {
  auto ws = Make({.window = {.max_events = 3}});
  for (common::Version v = 1; v <= 5; ++v) {
    ws->Append(Put("a", v));
  }
  // Window holds 3..5; MinRetained = 3, so watching from 2 works.
  RecordingCallback cb;
  auto handle = ws->Watch("", "", 2, &cb);
  sim_.RunUntil(10 * kMs);
  EXPECT_EQ(cb.resyncs, 0);
  ASSERT_EQ(cb.events.size(), 3u);
  EXPECT_EQ(cb.events[0].version, 3u);
}

TEST_F(WatchSystemTest, BacklogOverflowForcesResync) {
  auto ws = Make({.delivery_latency = 100 * kMs, .max_session_backlog = 5});
  RecordingCallback cb;
  auto handle = ws->Watch("", "", 0, &cb);
  // Burst far above the backlog cap while deliveries are slow.
  for (common::Version v = 1; v <= 50; ++v) {
    ws->Append(Put("a", v));
  }
  sim_.RunUntil(1000 * kMs);
  EXPECT_EQ(cb.resyncs, 1);
  // The lagging watcher got told, not silently truncated.
  EXPECT_LT(cb.events.size(), 50u);
  EXPECT_FALSE(handle->active());
}

TEST_F(WatchSystemTest, CancelStopsDelivery) {
  auto ws = Make();
  RecordingCallback cb;
  auto handle = ws->Watch("", "", 0, &cb);
  ws->Append(Put("a", 1));
  sim_.RunUntil(10 * kMs);
  handle->Cancel();
  ws->Append(Put("a", 2));
  sim_.RunUntil(20 * kMs);
  EXPECT_EQ(cb.events.size(), 1u);
  EXPECT_FALSE(handle->active());
}

TEST_F(WatchSystemTest, CancelWithInFlightDeliveriesIsSafe) {
  auto ws = Make({.delivery_latency = 50 * kMs});
  RecordingCallback cb;
  auto handle = ws->Watch("", "", 0, &cb);
  ws->Append(Put("a", 1));
  handle->Cancel();  // Before the delivery fires.
  sim_.RunUntil(200 * kMs);
  EXPECT_TRUE(cb.events.empty());
}

TEST_F(WatchSystemTest, ProgressPumpedPeriodically) {
  auto ws = Make({.progress_period = 50 * kMs});
  RecordingCallback cb;
  auto handle = ws->Watch("a", "m", 0, &cb);
  ws->Append(Put("b", 7));
  ws->Progress(ProgressEvent{common::KeyRange::All(), 7});
  sim_.RunUntil(200 * kMs);
  ASSERT_FALSE(cb.progress.empty());
  EXPECT_EQ(cb.progress.back().version, 7u);
  EXPECT_EQ(cb.progress.back().range, (common::KeyRange{"a", "m"}));
  // No duplicate notifications for an unchanged frontier.
  EXPECT_EQ(cb.progress.size(), 1u);
}

TEST_F(WatchSystemTest, ProgressLimitedBySlowestShard) {
  auto ws = Make({.progress_period = 50 * kMs});
  RecordingCallback cb;
  auto handle = ws->Watch("", "", 0, &cb);
  ws->Progress(ProgressEvent{common::KeyRange{"", "m"}, 20});
  ws->Progress(ProgressEvent{common::KeyRange{"m", ""}, 10});
  sim_.RunUntil(100 * kMs);
  ASSERT_FALSE(cb.progress.empty());
  EXPECT_EQ(cb.progress.back().version, 10u);
}

TEST_F(WatchSystemTest, SoftStateCrashResyncsEveryone) {
  auto ws = Make();
  RecordingCallback cb1;
  RecordingCallback cb2;
  auto h1 = ws->Watch("", "m", 0, &cb1);
  auto h2 = ws->Watch("m", "", 0, &cb2);
  ws->Append(Put("a", 1));
  sim_.RunUntil(10 * kMs);
  ws->CrashSoftState();
  sim_.RunUntil(20 * kMs);
  EXPECT_EQ(cb1.resyncs, 1);
  EXPECT_EQ(cb2.resyncs, 1);
  EXPECT_EQ(ws->active_sessions(), 0u);
  EXPECT_EQ(ws->retained_events(), 0u);
  // Watching from a pre-crash version forces resync; from the post-crash
  // frontier it succeeds — no data is lost end-to-end, only staleness.
  RecordingCallback cb3;
  auto h3 = ws->Watch("", "", 0, &cb3);
  sim_.RunUntil(30 * kMs);
  EXPECT_EQ(cb3.resyncs, 1);
  RecordingCallback cb4;
  auto h4 = ws->Watch("", "", ws->MaxIngestedVersion(), &cb4);
  ws->Append(Put("a", 99));
  sim_.RunUntil(40 * kMs);
  EXPECT_EQ(cb4.resyncs, 0);
  ASSERT_EQ(cb4.events.size(), 1u);
}

TEST_F(WatchSystemTest, UnreachableWatcherBreaksSession) {
  auto ws = Make();
  net_.AddNode("pod1");
  RecordingCallback cb;
  auto handle = ws->WatchFrom("", "", 0, &cb, "pod1");
  ws->Append(Put("a", 1));
  sim_.RunUntil(10 * kMs);
  EXPECT_EQ(cb.events.size(), 1u);

  net_.SetUp("pod1", false);
  ws->Append(Put("a", 2));
  sim_.RunUntil(20 * kMs);
  EXPECT_EQ(cb.events.size(), 1u);  // Nothing delivered into the void.
  EXPECT_EQ(ws->sessions_broken(), 1u);
  EXPECT_FALSE(handle->active());

  // Recovery: re-watch from the last applied version replays the gap.
  net_.SetUp("pod1", true);
  RecordingCallback cb2;
  auto handle2 = ws->WatchFrom("", "", 1, &cb2, "pod1");
  sim_.RunUntil(30 * kMs);
  ASSERT_EQ(cb2.events.size(), 1u);
  EXPECT_EQ(cb2.events[0].version, 2u);
}

TEST_F(WatchSystemTest, ActiveSessionsCountsLiveOnly) {
  auto ws = Make();
  RecordingCallback cb1;
  RecordingCallback cb2;
  auto h1 = ws->Watch("", "", 0, &cb1);
  auto h2 = ws->Watch("", "", 0, &cb2);
  EXPECT_EQ(ws->active_sessions(), 2u);
  h1->Cancel();
  EXPECT_EQ(ws->active_sessions(), 1u);
}

// Property: for random workloads, a watcher either receives EXACTLY the
// events in its range after its version, in order (no gaps, no duplicates) —
// or it receives a resync. Never a silent gap.
class WatchNoGapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WatchNoGapPropertyTest, NoSilentGaps) {
  sim::Simulator sim(GetParam());
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  common::Rng rng(GetParam() * 977 + 5);

  const std::size_t window_cap = 20 + rng.Below(60);
  WatchSystem ws(&sim, &net, "watch",
                 {.window = {.max_events = window_cap}, .delivery_latency = 1 * kMs});

  std::vector<common::ChangeEvent> ingested;
  common::Version next_version = 1;
  auto ingest_some = [&](int n) {
    for (int i = 0; i < n; ++i) {
      auto ev = Put(common::IndexKey(rng.Below(50), 2), next_version++);
      ingested.push_back(ev);
      ws.Append(ev);
    }
  };

  ingest_some(static_cast<int>(rng.Below(100)));

  const common::Key low = common::IndexKey(rng.Below(25), 2);
  const common::Key high = common::IndexKey(25 + rng.Below(25), 2);
  const common::KeyRange range{low, high};
  const common::Version start = rng.Below(next_version);

  RecordingCallback cb;
  auto handle = ws.Watch(low, high, start, &cb);
  ingest_some(static_cast<int>(rng.Below(100)));
  sim.RunUntil(sim.Now() + 1000 * kMs);

  if (cb.resyncs > 0) {
    // Loud fallback: acceptable. (The start version predated the window.)
    EXPECT_TRUE(cb.events.empty());
    return;
  }
  // Otherwise: exact, ordered, gap-free delivery.
  std::vector<common::ChangeEvent> expected;
  for (const auto& ev : ingested) {
    if (ev.version > start && range.Contains(ev.key)) {
      expected.push_back(ev);
    }
  }
  ASSERT_EQ(cb.events.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(cb.events[i], expected[i]) << "at index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WatchNoGapPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 25));

// -- In-flight accounting regressions -----------------------------------------
//
// The in-flight counter must be exact: incremented per scheduled delivery,
// decremented per arrival, and reset the moment a session leaves kLive. The
// old code decremented unconditionally on arrival, so deliveries still in the
// pipe when a resync/cancel reset the session underflowed the counter.

TEST_F(WatchSystemTest, CancelWithDeliveriesInFlightResetsCounter) {
  auto ws = Make({.delivery_latency = 50 * kMs});
  RecordingCallback cb;
  auto handle = ws->Watch("", "", 0, &cb);
  ws->Append(Put("a", 1));
  ws->Append(Put("a", 2));  // Two deliveries now in flight.
  handle->Cancel();
  ws->VisitSessions([](const WatchSystem::SessionInfo& info) {
    EXPECT_FALSE(info.live);
    EXPECT_EQ(info.in_flight, 0u);
  });
  // The in-flight deliveries arrive, find the session cancelled, and drop
  // without touching (underflowing) the counter.
  sim_.RunUntil(500 * kMs);
  EXPECT_TRUE(cb.events.empty());
  ws->VisitSessions([](const WatchSystem::SessionInfo& info) {
    EXPECT_EQ(info.in_flight, 0u);
  });
}

TEST_F(WatchSystemTest, BacklogResyncWithDeliveriesInFlightResetsCounter) {
  auto ws = Make({.delivery_latency = 50 * kMs, .max_session_backlog = 3});
  RecordingCallback cb;
  auto handle = ws->Watch("", "", 0, &cb);
  for (common::Version v = 1; v <= 10; ++v) {
    ws->Append(Put("a", v));  // Overflows the backlog mid-burst.
  }
  // The session left kLive with deliveries still in the pipe; the counter is
  // reset immediately, not when the stragglers arrive.
  ws->VisitSessions([](const WatchSystem::SessionInfo& info) {
    EXPECT_FALSE(info.live);
    EXPECT_EQ(info.in_flight, 0u);
  });
  sim_.RunUntil(2000 * kMs);
  EXPECT_EQ(cb.resyncs, 1);
  EXPECT_TRUE(cb.events.empty());
  ws->VisitSessions([](const WatchSystem::SessionInfo& info) {
    EXPECT_EQ(info.in_flight, 0u);
  });
}

TEST_F(WatchSystemTest, BrokenSessionResetsInFlight) {
  auto ws = Make({.delivery_latency = 50 * kMs});
  net_.AddNode("pod1");
  RecordingCallback cb;
  auto handle = ws->WatchFrom("", "", 0, &cb, "pod1");
  ws->Append(Put("a", 1));
  ws->Append(Put("a", 2));
  net_.SetUp("pod1", false);  // Node dies with two deliveries in flight.
  sim_.RunUntil(500 * kMs);
  EXPECT_EQ(ws->sessions_broken(), 1u);
  ws->VisitSessions([](const WatchSystem::SessionInfo& info) {
    EXPECT_FALSE(info.live);
    EXPECT_EQ(info.in_flight, 0u);
  });
  EXPECT_TRUE(cb.events.empty());
}

TEST_F(WatchSystemTest, InFlightCounterStaysExactAcrossChurn) {
  auto ws = Make({.delivery_latency = 20 * kMs, .max_session_backlog = 4});
  RecordingCallback cb1;
  RecordingCallback cb2;
  auto h1 = ws->Watch("", "m", 0, &cb1);
  auto h2 = ws->Watch("m", "", 0, &cb2);
  for (common::Version v = 1; v <= 30; ++v) {
    ws->Append(Put(v % 2 == 0 ? "a" : "z", v));
    if (v == 12) ws->CrashSoftState();  // Forces both sessions to resync.
    // Invariant at every step: only live sessions carry in-flight deliveries.
    ws->VisitSessions([](const WatchSystem::SessionInfo& info) {
      if (!info.live) EXPECT_EQ(info.in_flight, 0u);
    });
    sim_.RunUntil(sim_.Now() + 5 * kMs);
  }
  sim_.RunUntil(sim_.Now() + 1000 * kMs);
  ws->VisitSessions([](const WatchSystem::SessionInfo& info) {
    EXPECT_EQ(info.in_flight, 0u);
  });
  EXPECT_GE(cb1.resyncs + cb2.resyncs, 2);
}

// -- Window age-bound regressions ----------------------------------------------
//
// WatchSystemOptions::window.max_age used to be accepted but never enforced:
// no code called the age trim, so a watcher joining at an old version was
// silently replayed arbitrarily stale history instead of resyncing.

TEST_F(WatchSystemTest, AgedOutJoinOnQuiescentWindowResyncs) {
  auto ws = Make({.window = {.max_age = 100 * kMs}});
  ws->Append(Put("a", 1));
  ws->Append(Put("a", 2));
  // Nothing else is ingested: Append-time trimming never runs, so only the
  // join-time trim can age these events out.
  sim_.RunUntil(500 * kMs);
  RecordingCallback cb;
  auto handle = ws->Watch("", "", 0, &cb);
  sim_.RunUntil(510 * kMs);
  EXPECT_EQ(cb.resyncs, 1);
  EXPECT_TRUE(cb.events.empty());  // Stale history is never replayed.
  EXPECT_FALSE(handle->active());
}

TEST_F(WatchSystemTest, AppendAgesOutOldEventsAndRaisesFloor) {
  auto ws = Make({.window = {.max_age = 100 * kMs}});
  ws->Append(Put("a", 1));  // t = 0.
  sim_.RunUntil(200 * kMs);
  ws->Append(Put("a", 2));  // Trims v1 (200ms old, bound is 100ms).
  EXPECT_EQ(ws->retained_events(), 1u);
  EXPECT_EQ(ws->MinRetainedVersion(), 2u);
  RecordingCallback cb;
  auto handle = ws->Watch("", "", 0, &cb);  // Would need the aged-out v1.
  sim_.RunUntil(250 * kMs);
  EXPECT_EQ(cb.resyncs, 1);
  EXPECT_TRUE(cb.events.empty());
}

TEST_F(WatchSystemTest, FreshJoinWithinAgeBoundReplaysNormally) {
  auto ws = Make({.window = {.max_age = 100 * kMs}});
  ws->Append(Put("a", 1));
  sim_.RunUntil(50 * kMs);  // Still inside the age bound.
  RecordingCallback cb;
  auto handle = ws->Watch("", "", 0, &cb);
  sim_.RunUntil(60 * kMs);
  EXPECT_EQ(cb.resyncs, 0);
  ASSERT_EQ(cb.events.size(), 1u);
  EXPECT_EQ(cb.events[0].version, 1u);
}

// -- Live-edge joins across soft-state loss --------------------------------------

TEST_F(WatchSystemTest, LiveEdgeJoinAfterCrashNoReplayNoSpuriousResync) {
  auto ws = Make();
  ws->Append(Put("a", 1));
  ws->Append(Put("a", 2));
  ws->CrashSoftState();
  sim_.RunUntil(10 * kMs);
  // A live-edge join (kMaxVersion) has no snapshot to be stale relative to:
  // it must come up live even though the window was just wiped.
  RecordingCallback cb;
  auto handle = ws->Watch("", "", common::kMaxVersion, &cb);
  sim_.RunUntil(20 * kMs);
  EXPECT_EQ(cb.resyncs, 0);
  EXPECT_TRUE(cb.events.empty());  // No pre-crash replay.
  EXPECT_TRUE(handle->active());
  ws->Append(Put("a", 3));
  sim_.RunUntil(30 * kMs);
  ASSERT_EQ(cb.events.size(), 1u);
  EXPECT_EQ(cb.events[0].version, 3u);
}

TEST_F(WatchSystemTest, LiveEdgeJoinOnAgedOutWindowComesUpLive) {
  auto ws = Make({.window = {.max_age = 100 * kMs}});
  ws->Append(Put("a", 1));
  sim_.RunUntil(500 * kMs);  // Everything in the window is aged out.
  RecordingCallback cb;
  auto handle = ws->Watch("", "", common::kMaxVersion, &cb);
  sim_.RunUntil(510 * kMs);
  // The age trim raises the floor but never moves the frontier, so a
  // live-edge join sits exactly at the floor: live, no resync, no replay.
  EXPECT_EQ(cb.resyncs, 0);
  EXPECT_TRUE(cb.events.empty());
  EXPECT_TRUE(handle->active());
  ws->Append(Put("a", 2));
  sim_.RunUntil(520 * kMs);
  ASSERT_EQ(cb.events.size(), 1u);
}

}  // namespace
}  // namespace watch
