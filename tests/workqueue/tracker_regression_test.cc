// Regression tests for workqueue::ConvergenceTracker counter semantics:
//
//  * an actual-state put with no pending desired entry used to be silently
//    ignored — now counted as unmatched_actuals();
//  * an undecodable desired value used to be conflated with staleness in
//    stale_executions() — now counted as decode_failures();
//  * a commit carrying both desired and actual for one entity used to depend
//    on the record's change order (std::map order puts ".../actual" before
//    ".../desired", so the actual was dropped and the entity looked stuck) —
//    now handled deterministically via a desired-first pass.
#include "workqueue/tracker.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "workqueue/types.h"

namespace workqueue {
namespace {

using common::Mutation;

class TrackerRegressionTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  storage::MvccStore store_;
};

TEST_F(TrackerRegressionTest, ActualBeforeDesiredIsCountedNotSilentlyIgnored) {
  ConvergenceTracker tracker(&sim_, &store_);
  // Execution output observed before any desired put for the entity (e.g. a
  // tracker attached mid-run).
  store_.Apply(ActualKey(1), Mutation::Put("cfg"));
  EXPECT_EQ(tracker.unmatched_actuals(), 1u);
  EXPECT_EQ(tracker.stale_executions(), 0u);
  EXPECT_EQ(tracker.decode_failures(), 0u);
  EXPECT_EQ(tracker.converged(), 0u);
}

TEST_F(TrackerRegressionTest, UndecodableDesiredIsADecodeFailureNotStaleness) {
  ConvergenceTracker tracker(&sim_, &store_);
  store_.Apply(DesiredKey(2), Mutation::Put("not-a-desired-encoding"));
  store_.Apply(ActualKey(2), Mutation::Put("whatever"));
  EXPECT_EQ(tracker.decode_failures(), 1u);
  EXPECT_EQ(tracker.stale_executions(), 0u);
  EXPECT_EQ(tracker.converged(), 0u);
}

TEST_F(TrackerRegressionTest, StaleExecutionStillCountsAsStale) {
  ConvergenceTracker tracker(&sim_, &store_);
  store_.Apply(DesiredKey(3), Mutation::Put(EncodeDesired(0, "new")));
  store_.Apply(ActualKey(3), Mutation::Put("old"));  // Mismatch: stale.
  EXPECT_EQ(tracker.stale_executions(), 1u);
  EXPECT_EQ(tracker.decode_failures(), 0u);
  EXPECT_EQ(tracker.unmatched_actuals(), 0u);
}

TEST_F(TrackerRegressionTest, SameCommitDesiredAndActualConvergesDeterministically) {
  ConvergenceTracker tracker(&sim_, &store_);
  // One transaction writes both rows. Transaction buffers writes in key
  // order, so ".../actual" precedes ".../desired" in the commit record — the
  // ordering that used to drop the actual and leave the entity "stuck".
  storage::Transaction txn = store_.Begin();
  txn.Put(DesiredKey(4), EncodeDesired(1, "cfg-x"));
  txn.Put(ActualKey(4), "cfg-x");
  ASSERT_TRUE(store_.Commit(std::move(txn)).ok());
  EXPECT_EQ(tracker.converged(), 1u);
  EXPECT_EQ(tracker.StuckEntities(), 0u);
  EXPECT_EQ(tracker.unmatched_actuals(), 0u);
  EXPECT_EQ(tracker.stale_executions(), 0u);
}

}  // namespace
}  // namespace workqueue
