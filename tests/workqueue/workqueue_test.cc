#include <string>

#include <gtest/gtest.h>

#include "cdc/feeds.h"
#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/watch_system.h"
#include "workqueue/pubsub_queue.h"
#include "workqueue/tracker.h"
#include "workqueue/types.h"
#include "workqueue/watch_queue.h"

namespace workqueue {
namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;
using common::Mutation;

TEST(WorkqueueTypesTest, KeyHelpers) {
  EXPECT_EQ(DesiredKey(7), "ent/k00000007/desired");
  EXPECT_EQ(ActualKey(7), "ent/k00000007/actual");
  EXPECT_EQ(EntityIdOf(DesiredKey(42)), std::optional<std::uint64_t>(42));
  EXPECT_EQ(EntityIdOf(ActualKey(42)), std::optional<std::uint64_t>(42));
  EXPECT_EQ(EntityIdOf("other/key"), std::nullopt);
  EXPECT_TRUE(IsDesiredKey(DesiredKey(1)));
  EXPECT_FALSE(IsDesiredKey(ActualKey(1)));
  EXPECT_TRUE(IsActualKey(ActualKey(1)));
  EXPECT_TRUE(EntityRange(0, 10).Contains(DesiredKey(5)));
  EXPECT_FALSE(EntityRange(0, 10).Contains(DesiredKey(10)));
}

TEST(WorkqueueTypesTest, DesiredCodec) {
  auto d = DecodeDesired(EncodeDesired(3, "vm=4"));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->priority, 3u);
  EXPECT_EQ(d->config, "vm=4");
  EXPECT_EQ(DecodeDesired("garbage"), std::nullopt);
}

class PubsubQueueTest : public ::testing::Test {
 protected:
  PubsubQueueTest() : net_(&sim_, {.base = 0, .jitter = 0}), broker_(&sim_, &net_) {
    EXPECT_TRUE(broker_.CreateTopic("tasks", {.partitions = 8}).ok());
  }

  std::unique_ptr<PubsubWorkQueue> MakeQueue(PubsubQueueOptions options = {}) {
    options.consumer.poll_period = 2 * kMs;
    return std::make_unique<PubsubWorkQueue>(&sim_, &net_, &broker_, "tasks", "workers",
                                             &store_, options);
  }

  sim::Simulator sim_;
  sim::Network net_;
  pubsub::Broker broker_;
  storage::MvccStore store_;
};

TEST_F(PubsubQueueTest, DesiredChangeConverges) {
  ConvergenceTracker tracker(&sim_, &store_);
  auto queue = MakeQueue();
  sim_.RunUntil(50 * kMs);
  store_.Apply(DesiredKey(1), Mutation::Put(EncodeDesired(0, "cfg-a")));
  sim_.RunUntil(1 * kSec);
  EXPECT_EQ(queue->tasks_completed(), 1u);
  EXPECT_EQ(tracker.StuckEntities(), 0u);
  EXPECT_EQ(*store_.GetLatest(ActualKey(1)), "cfg-a");
}

TEST_F(PubsubQueueTest, ManyEntitiesConvergeAcrossWorkers) {
  ConvergenceTracker tracker(&sim_, &store_);
  auto queue = MakeQueue({.workers = 4});
  sim_.RunUntil(50 * kMs);
  for (std::uint64_t i = 0; i < 40; ++i) {
    store_.Apply(DesiredKey(i), Mutation::Put(EncodeDesired(0, "cfg")));
  }
  sim_.RunUntil(5 * kSec);
  EXPECT_EQ(queue->tasks_completed(), 40u);
  EXPECT_EQ(tracker.StuckEntities(), 0u);
}

TEST_F(PubsubQueueTest, StaleTaskExecutesOldConfig) {
  ConvergenceTracker tracker(&sim_, &store_);
  // One slow worker so the backlog builds while desired state keeps moving.
  auto queue = MakeQueue({.workers = 1, .costs = {.warm = 40 * kMs, .cold = 40 * kMs}});
  sim_.RunUntil(50 * kMs);
  store_.Apply(DesiredKey(1), Mutation::Put(EncodeDesired(0, "old")));
  sim_.RunUntil(60 * kMs);
  store_.Apply(DesiredKey(1), Mutation::Put(EncodeDesired(0, "new")));
  sim_.RunUntil(5 * kSec);
  // Both tasks ran; the first applied a config that was already obsolete.
  EXPECT_EQ(queue->tasks_completed(), 2u);
  EXPECT_GE(tracker.stale_executions(), 1u);
  EXPECT_EQ(*store_.GetLatest(ActualKey(1)), "new");  // Per-entity order saves the final.
}

TEST_F(PubsubQueueTest, TaskLossFromRetentionLeavesEntityStuck) {
  // Tiny retention + a dead worker pool: tasks are GC'd before anyone runs
  // them, and nothing ever reconciles the entity.
  pubsub::Broker broker2(&sim_, &net_, "broker2", 100 * kMs);
  ASSERT_TRUE(broker2.CreateTopic("tasks2",
                                  {.partitions = 2,
                                   .retention = {.retention = 300 * kMs}}).ok());
  ConvergenceTracker tracker(&sim_, &store_);
  PubsubQueueOptions options;
  options.workers = 1;
  options.consumer.poll_period = 2 * kMs;
  PubsubWorkQueue queue(&sim_, &net_, &broker2, "tasks2", "workers2", &store_, options);
  sim_.RunUntil(50 * kMs);
  // Worker crashes before the task arrives.
  net_.SetUp(queue.WorkerNodes()[0], false);
  store_.Apply(DesiredKey(9), Mutation::Put(EncodeDesired(0, "cfg")));
  sim_.RunUntil(2 * kSec);  // Retention GC destroys the unprocessed task.
  net_.SetUp(queue.WorkerNodes()[0], true);
  sim_.RunUntil(6 * kSec);
  EXPECT_GT(broker2.TotalGced("tasks2"), 0u);
  EXPECT_EQ(tracker.StuckEntities(), 1u);  // Permanently unreconciled.
  EXPECT_EQ(store_.GetLatest(ActualKey(9)).status().code(), common::StatusCode::kNotFound);
}

class WatchQueueTest : public ::testing::Test {
 protected:
  WatchQueueTest()
      : net_(&sim_, {.base = 0, .jitter = 0}),
        sharder_(&sim_, &net_, {.rebalance_period = 500 * kMs}),
        ws_(&sim_, &net_, "snappy", {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs}),
        feed_(&sim_, &store_, nullptr, &ws_, {.progress_period = 5 * kMs}),
        source_(&store_) {}

  std::unique_ptr<WatchWorkQueue> MakeQueue(WatchQueueOptions options = {}) {
    return std::make_unique<WatchWorkQueue>(&sim_, &net_, &sharder_, &ws_, &source_, &store_,
                                            options);
  }

  sim::Simulator sim_;
  sim::Network net_;
  storage::MvccStore store_;
  sharding::AutoSharder sharder_;
  watch::WatchSystem ws_;
  cdc::CdcIngesterFeed feed_;
  watch::StoreSnapshotSource source_;
};

TEST_F(WatchQueueTest, ReconcilesDesiredChanges) {
  ConvergenceTracker tracker(&sim_, &store_);
  auto queue = MakeQueue();
  sim_.RunUntil(100 * kMs);
  store_.Apply(DesiredKey(1), Mutation::Put(EncodeDesired(0, "cfg-a")));
  sim_.RunUntil(2 * kSec);
  EXPECT_GE(queue->tasks_completed(), 1u);
  EXPECT_EQ(tracker.StuckEntities(), 0u);
  EXPECT_EQ(*store_.GetLatest(ActualKey(1)), "cfg-a");
}

TEST_F(WatchQueueTest, NeverExecutesStaleConfig) {
  ConvergenceTracker tracker(&sim_, &store_);
  auto queue = MakeQueue({.workers = 1, .costs = {.warm = 40 * kMs, .cold = 40 * kMs}});
  sim_.RunUntil(100 * kMs);
  store_.Apply(DesiredKey(1), Mutation::Put(EncodeDesired(0, "old")));
  sim_.RunUntil(110 * kMs);
  store_.Apply(DesiredKey(1), Mutation::Put(EncodeDesired(0, "new")));
  sim_.RunUntil(5 * kSec);
  // Level-triggered reconciliation reads CURRENT desired state: it may have
  // written "old" only if it read before the change, but it keeps going until
  // actual == desired. No stale terminal state, and typically less work.
  EXPECT_EQ(*store_.GetLatest(ActualKey(1)), "new");
  EXPECT_EQ(tracker.StuckEntities(), 0u);
}

TEST_F(WatchQueueTest, WorkerCrashDoesNotStrandEntities) {
  ConvergenceTracker tracker(&sim_, &store_);
  auto queue = MakeQueue({.workers = 2});
  sim_.RunUntil(200 * kMs);
  // Crash one worker, then change desired state for entities it owned.
  const sim::NodeId victim = queue->WorkerNodes()[0];
  net_.SetUp(victim, false);
  sharder_.RemoveWorker(victim);
  for (std::uint64_t i = 0; i < 20; ++i) {
    store_.Apply(DesiredKey(i), Mutation::Put(EncodeDesired(0, "cfg")));
  }
  sim_.RunUntil(10 * kSec);  // Sharder reassigns; survivor reconciles all.
  EXPECT_EQ(tracker.StuckEntities(), 0u);
}

TEST_F(WatchQueueTest, PriorityBeatsHeadOfLineBlocking) {
  ConvergenceTracker tracker(&sim_, &store_);
  auto queue = MakeQueue({.workers = 1, .costs = {.warm = 10 * kMs, .cold = 10 * kMs}});
  sim_.RunUntil(200 * kMs);
  // A pile of low-priority work, then one urgent entity.
  for (std::uint64_t i = 0; i < 30; ++i) {
    store_.Apply(DesiredKey(i), Mutation::Put(EncodeDesired(0, "bulk")));
  }
  sim_.RunUntil(sim_.Now() + 30 * kMs);
  store_.Apply(DesiredKey(99), Mutation::Put(EncodeDesired(9, "urgent")));
  sim_.RunUntil(sim_.Now() + 15 * kSec);
  ASSERT_EQ(tracker.StuckEntities(), 0u);
  const auto& by_priority = tracker.latency_by_priority();
  ASSERT_TRUE(by_priority.count(9) > 0);
  ASSERT_TRUE(by_priority.count(0) > 0);
  // The urgent entity converged far faster than the bulk average.
  EXPECT_LT(by_priority.at(9).Mean(), by_priority.at(0).Mean());
}

TEST_F(WatchQueueTest, AffinityStaysWarmForRepeatedEntities) {
  auto queue = MakeQueue({.workers = 2});
  sim_.RunUntil(200 * kMs);
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t i = 0; i < 5; ++i) {
      store_.Apply(DesiredKey(i), Mutation::Put(EncodeDesired(0, "r" + std::to_string(round))));
    }
    sim_.RunUntil(sim_.Now() + 500 * kMs);
  }
  // First touch per entity is cold; the rest hit the warm range cache.
  EXPECT_LE(queue->cold_misses(), 5u + 2u);  // Allow a couple from shard moves.
  EXPECT_GT(queue->warm_hits(), queue->cold_misses());
}

}  // namespace
}  // namespace workqueue
